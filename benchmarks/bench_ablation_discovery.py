"""A2 — ablation: key-collision vs nearest-neighbour discovery.

DESIGN.md's claim: key collision is cheap and high-precision;
nearest-neighbour is expensive and higher-recall on typos.  Measured on
the misspelling-heavy slice of the mess, per method, cost vs recall.
"""

from __future__ import annotations

import pytest

from repro.archive import (
    VOCABULARY,
    truth_index,
    uniform_mess_spec,
)
from repro.experiments import messy_archive_of_size, raw_catalog_from
from repro.refine import DiscoverySession, make_canonical_chooser

from .conftest import BENCH_SEED, write_result


def _misspelling_fixture():
    """An archive where misspellings dominate the mess."""
    from repro.archive import MessSpec

    mess = MessSpec(
        clean=0.4, misspelling=0.6, synonym=0.0, abbreviation=0.0,
        ambiguous=0.0, context=0.0, multilevel=0.0, unit_mess_rate=0.0,
        excessive_rate=0.0, phantom_rate=0.0, seed=BENCH_SEED,
    )
    return messy_archive_of_size(60, seed=BENCH_SEED, mess_spec=mess)


def _session(method: str, radius: float = 2.0) -> DiscoverySession:
    return DiscoverySession(
        method=method,
        radius=radius,
        seed_values={name: 1 for name in VOCABULARY},
        chooser=make_canonical_chooser(
            set(VOCABULARY), fallback_to_most_common=False
        ),
    )


def _misspelling_recall(mapping, archive) -> float:
    misspelled = {
        written: vt.canonical
        for (__, written), vt in truth_index(archive).items()
        if vt.category == "misspelling"
    }
    if not misspelled:
        return 1.0
    found = sum(
        1
        for written, canonical in misspelled.items()
        if mapping.get(written) == canonical
    )
    return found / len(misspelled)


METHODS = ("fingerprint", "ngram-fingerprint", "metaphone",
           "nn-levenshtein", "nn-jaro-winkler")


class TestDiscoveryAblation:
    @pytest.mark.parametrize("method", METHODS)
    def test_method_cost(self, benchmark, method):
        fs, __, archive = _misspelling_fixture()
        catalog = raw_catalog_from(fs)
        session = _session(
            method, radius=0.15 if method == "nn-jaro-winkler" else 2.0
        )
        rules = benchmark(session.discover_from_catalog, catalog)
        assert rules is not None

    def test_nn_recall_beats_key_collision(self, benchmark):
        fs, __, archive = _misspelling_fixture()
        catalog = raw_catalog_from(fs)
        recalls = {}
        for method in METHODS:
            session = _session(
                method, radius=0.15 if method == "nn-jaro-winkler" else 2.0
            )
            mapping = session.discover_from_catalog(
                catalog
            ).rename_mapping()
            recalls[method] = _misspelling_recall(mapping, archive)
        lines = ["A2 — discovery ablation: misspelling recall by method"]
        lines += [
            f"{method:20s} recall={recall:6.3f}"
            for method, recall in recalls.items()
        ]
        write_result("a2_discovery_ablation.txt", "\n".join(lines))
        assert recalls["nn-levenshtein"] >= recalls["fingerprint"]
        assert recalls["nn-levenshtein"] > 0.5
        benchmark(
            _session("fingerprint").discover_from_catalog, catalog
        )

    @pytest.mark.parametrize("radius", [1.0, 2.0, 3.0])
    def test_nn_radius_sweep(self, benchmark, radius):
        fs, __, archive = _misspelling_fixture()
        catalog = raw_catalog_from(fs)
        session = _session("nn-levenshtein", radius=radius)
        rules = benchmark(session.discover_from_catalog, catalog)
        recall = _misspelling_recall(rules.rename_mapping(), archive)
        assert 0.0 <= recall <= 1.0

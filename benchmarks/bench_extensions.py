"""E1 — extension features beyond the poster's figures.

Not paper artifacts, but production features the reproduction adds and
must keep fast: search-by-example ("more like this"), the semi-curated
review queue, the textual query parser and catalog JSON interchange.
"""

from __future__ import annotations

from repro.catalog import MemoryCatalog, dump_catalog, load_catalog
from repro.core.qparser import parse_query
from repro.core.similar import similar_datasets
from repro.semantics import TermResolver, queue_from_catalog

from .conftest import write_result


class TestSimilarDatasets:
    def test_similar_throughput(self, benchmark, bench_system):
        catalog = bench_system.engine.catalog
        seed = catalog.dataset_ids()[0]
        results = benchmark(
            similar_datasets, catalog, seed, 5,
            bench_system.state.hierarchy,
        )
        assert len(results) == 5

    def test_similar_quality_report(self, benchmark, bench_system):
        """Neighbours share the seed's platform/footprint more often than
        random datasets do — the feature finds *related* data."""
        catalog = bench_system.engine.catalog
        hierarchy = bench_system.state.hierarchy

        def neighbour_platform_match_rate() -> float:
            matches = total = 0
            for seed_id in catalog.dataset_ids()[:15]:
                seed = catalog.get(seed_id)
                for neighbour in similar_datasets(
                    catalog, seed_id, limit=3, hierarchy=hierarchy
                ):
                    total += 1
                    if neighbour.feature.platform == seed.platform:
                        matches += 1
            return matches / total

        rate = benchmark(neighbour_platform_match_rate)
        platforms = {f.platform for f in catalog}
        chance = 1.0 / len(platforms)
        write_result(
            "e1_similar_datasets.txt",
            "E1 — search by example\n"
            f"neighbour platform-match rate: {rate:.3f} "
            f"(chance ~{chance:.3f})\n",
        )
        assert rate > chance


class TestReviewQueue:
    def test_queue_build_cost(self, benchmark, bench_raw_catalog):
        queue = benchmark(
            queue_from_catalog, bench_raw_catalog, TermResolver()
        )
        assert len(queue) > 0

    def test_bulk_approval_cost(self, benchmark, bench_raw_catalog):
        resolver = TermResolver()

        def build_and_approve() -> int:
            queue = queue_from_catalog(bench_raw_catalog, resolver)
            from repro.semantics import SynonymTable

            return queue.approve_all(synonyms=SynonymTable())

        assert benchmark(build_and_approve) > 0


class TestQueryParser:
    def test_parse_cost(self, benchmark):
        text = ("near 45.5, -124.4 within 25 km in mid-2010 with "
                "temperature between 5 and 10, salinity, turbidity below 20")
        query = benchmark(parse_query, text)
        assert len(query.variables) == 3


class TestCatalogInterchange:
    def test_dump_load_cycle(self, benchmark, bench_raw_catalog):
        def cycle() -> int:
            text = dump_catalog(bench_raw_catalog)
            return load_catalog(text, MemoryCatalog())

        assert benchmark(cycle) == len(bench_raw_catalog)

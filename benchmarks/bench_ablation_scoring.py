"""A1 — ablation: drop each term of the distance-based ranking.

The ranking is a weighted mean of location, time and variable
similarities.  Dropping any term must hurt retrieval quality on the
three-term workload, which validates that every term of the design
carries weight.
"""

from __future__ import annotations

import pytest

from repro.core import ScoringConfig, SearchEngine
from repro.experiments import evaluate_engine

from .conftest import write_result

CONFIGS = {
    "full": ScoringConfig(),
    "no-location": ScoringConfig(use_location=False),
    "no-time": ScoringConfig(use_time=False),
    "no-variables": ScoringConfig(use_variables=False),
}


def _engine(bench_system, config: ScoringConfig) -> SearchEngine:
    return SearchEngine(
        bench_system.engine.catalog,
        hierarchy=bench_system.state.hierarchy,
        config=config,
    )


class TestScoringAblation:
    @pytest.mark.parametrize("label", list(CONFIGS))
    def test_each_config_cost(self, benchmark, bench_system,
                              bench_workload, label):
        engine = _engine(bench_system, CONFIGS[label])
        summary = benchmark(
            evaluate_engine, engine, bench_workload, 10, label
        )
        assert 0.0 <= summary.ndcg <= 1.0

    def test_full_beats_every_ablation(self, benchmark, bench_system,
                                       bench_workload):
        summaries = {
            label: evaluate_engine(
                _engine(bench_system, config), bench_workload, label=label
            )
            for label, config in CONFIGS.items()
        }
        lines = ["A1 — scoring-term ablation"]
        lines += [s.row() for s in summaries.values()]
        write_result("a1_scoring_ablation.txt", "\n".join(lines))
        full = summaries["full"].ndcg
        for label, summary in summaries.items():
            if label != "full":
                assert full >= summary.ndcg - 1e-9, label
        # At least one term must matter strictly (otherwise the ranking
        # would be vacuous on this workload).
        assert any(
            full > summaries[label].ndcg + 0.01
            for label in ("no-location", "no-time", "no-variables")
        )
        benchmark(
            evaluate_engine,
            _engine(bench_system, CONFIGS["full"]),
            bench_workload,
        )

    @pytest.mark.parametrize("decay_km", [25.0, 100.0, 400.0])
    def test_location_decay_sweep(self, benchmark, bench_system,
                                  bench_workload, decay_km):
        config = ScoringConfig(location_decay_km=decay_km)
        summary = benchmark(
            evaluate_engine,
            _engine(bench_system, config),
            bench_workload,
            10,
            f"decay={decay_km}",
        )
        assert summary.ndcg > 0.5

    @pytest.mark.parametrize("shape", ["exponential", "reciprocal",
                                       "linear"])
    def test_decay_shape_sweep(self, benchmark, bench_system,
                               bench_workload, shape):
        """All three decay shapes rank usefully; the report records the
        quality spread for DESIGN.md's decay-shape design choice."""
        config = ScoringConfig(decay_shape=shape)
        summary = benchmark(
            evaluate_engine,
            _engine(bench_system, config),
            bench_workload,
            10,
            f"shape={shape}",
        )
        assert summary.ndcg > 0.5
        write_result(
            f"a1_decay_shape_{shape}.txt", summary.row()
        )

"""F5 — Figure "Discovering Transformations with Google Refine".

The full round-trip: extract catalog entries -> cluster the ``field``
column -> confirm merges -> export ``core/mass-edit`` JSON -> replay
against the working catalog.  Includes the poster's verbatim JSON rule.
Measured: discovery cost and rename quality per clustering method, JSON
round-trip fidelity, and replay throughput.
"""

from __future__ import annotations

import pytest

from repro.archive import VOCABULARY, truth_index
from repro.experiments import raw_catalog_from
from repro.refine import (
    DiscoverySession,
    RuleSet,
    apply_rules_to_catalog,
    catalog_to_table,
    make_canonical_chooser,
)

from .conftest import write_result

POSTER_JSON = """
 {   "op": "core/mass-edit",
    "description": "Mass edit cells in column field",
    "engineConfig": { "facets": [],
      "mode": "row-based" },
    "columnName": "field",
    "expression": "value",
    "edits": [   {
        "fromBlank": false,
        "fromError": false,
        "from": [ "ATastn" ],
        "to": "sea surface temperature"  } ]  }
"""

METHODS = ("fingerprint", "ngram-fingerprint", "metaphone",
           "nn-levenshtein")


def _session(method: str) -> DiscoverySession:
    return DiscoverySession(
        method=method,
        radius=2.0,
        seed_values={name: 1 for name in VOCABULARY},
        chooser=make_canonical_chooser(
            set(VOCABULARY), fallback_to_most_common=False
        ),
    )


def _rename_quality(mapping, archive) -> tuple[int, int]:
    """(correct, wrong) of a discovered mapping vs ground truth."""
    truth_by_written: dict[str, set[str | None]] = {}
    for (__, written), vt in truth_index(archive).items():
        truth_by_written.setdefault(written, set()).add(vt.canonical)
    correct = wrong = 0
    for old, new in mapping.items():
        expected = truth_by_written.get(old)
        if expected is None:
            continue  # seed value, not a harvested name
        if new in expected:
            correct += 1
        else:
            wrong += 1
    return correct, wrong


class TestPosterRule:
    def test_poster_json_parses_and_replays(self, benchmark, bench_fixture):
        fs, __, ___ = bench_fixture
        catalog = raw_catalog_from(fs)
        # Plant the poster's exact messy value so the rule has a target.
        feature = catalog.get(catalog.dataset_ids()[0])
        feature.variables[0].name = "ATastn"
        catalog.upsert(feature)
        rules = RuleSet.loads(POSTER_JSON)

        def replay():
            table = catalog_to_table(catalog)
            return rules.apply(table)

        changed = benchmark(replay)
        assert changed >= 1


class TestDiscoveryMethods:
    @pytest.mark.parametrize("method", METHODS)
    def test_method_cost_and_quality(self, benchmark, bench_fixture,
                                     method):
        fs, __, archive = bench_fixture
        catalog = raw_catalog_from(fs)
        session = _session(method)

        rules = benchmark(session.discover_from_catalog, catalog)
        mapping = rules.rename_mapping()
        correct, wrong = _rename_quality(mapping, archive)
        # Precision must stay usefully high for every method.  Key
        # collision is near-perfect; nearest-neighbour trades a little
        # precision for typo recall (e.g. 'pres' lands within edit
        # distance 2 of 'par') — exactly the tradeoff A2 quantifies.
        if correct + wrong > 0:
            assert correct / (correct + wrong) >= 0.8

    def test_method_comparison_report(self, benchmark, bench_fixture):
        fs, __, archive = bench_fixture
        catalog = raw_catalog_from(fs)
        lines = ["F5 — discovery methods on the raw catalog",
                 f"{'method':20s} {'renames':>8s} {'correct':>8s} "
                 f"{'wrong':>6s}"]
        for method in METHODS:
            rules = _session(method).discover_from_catalog(catalog)
            mapping = rules.rename_mapping()
            correct, wrong = _rename_quality(mapping, archive)
            lines.append(
                f"{method:20s} {len(mapping):8d} {correct:8d} {wrong:6d}"
            )
        write_result("fig5_discovery_methods.txt", "\n".join(lines))
        benchmark(_session("fingerprint").discover_from_catalog, catalog)


class TestRoundTrip:
    def test_json_roundtrip_and_replay(self, benchmark, bench_fixture):
        """Export rules as JSON, parse them back, replay on the catalog —
        the figure's full cycle."""
        fs, __, ___ = bench_fixture

        def cycle() -> int:
            catalog = raw_catalog_from(fs)
            rules = _session("nn-levenshtein").discover_from_catalog(
                catalog
            )
            text = rules.dumps()
            reloaded = RuleSet.loads(text)
            return apply_rules_to_catalog(reloaded, catalog)

        renamed = benchmark(cycle)
        assert renamed > 0

"""F2 — Figure "Data Near Here Search Interface": ranked search over
location, time and variables.

Runs the poster's example query verbatim, evaluates retrieval quality
(nDCG/P/R against clean-archive ground truth) for ranked-vs-boolean and
raw-vs-wrangled catalogs, and measures query latency vs catalog size
with and without candidate-pruning indexes.

Expected shape: ranked search strictly dominates the boolean baseline on
nDCG (the baseline's recall collapses when no dataset matches every
term); wrangling improves both; indexes win and their advantage grows
with catalog size.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro import GeoPoint, Query, TimeInterval, VariableTerm
from repro.core import BooleanSearchEngine, SearchEngine
from repro.experiments import (
    evaluate_engine,
    generate_workload,
    clean_archive_of_size,
    messy_archive_of_size,
    wrangled_system,
)
from repro.hierarchy import vocabulary_hierarchy
from repro.ui import render_search_text

from .conftest import BENCH_SEED, write_result


def poster_query() -> Query:
    """'observations collected near [lat=45.5, lon=-124.4] in mid-2010,
    with temperature between 5-10C'."""
    return Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval.from_datetimes(
            datetime(2010, 5, 1), datetime(2010, 8, 31)
        ),
        variables=(VariableTerm("temperature", low=5.0, high=10.0),),
    )


class TestPosterQuery:
    def test_example_query_page(self, benchmark, bench_system):
        results = benchmark(bench_system.search, poster_query(), 10)
        assert results
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        write_result(
            "fig2_poster_query.txt",
            render_search_text(poster_query(), results),
        )


class TestQuality:
    def test_four_way_quality(self, benchmark, bench_fixture,
                              bench_workload, bench_raw_catalog,
                              bench_system):
        hierarchy = vocabulary_hierarchy()
        engines = {
            "ranked+wrangled": bench_system.engine,
            "ranked+raw": SearchEngine(
                bench_raw_catalog, hierarchy=hierarchy
            ),
            "boolean+wrangled": bench_system.baseline_engine(),
            "boolean+raw": BooleanSearchEngine(
                bench_raw_catalog, hierarchy=hierarchy
            ),
        }
        summaries = {
            label: evaluate_engine(engine, bench_workload, label=label)
            for label, engine in engines.items()
        }
        # Time the headline engine's evaluation.
        benchmark(
            evaluate_engine, engines["ranked+wrangled"], bench_workload
        )
        report = ["F2 — search quality (25 ground-truthed queries)"]
        report += [s.row() for s in summaries.values()]
        write_result("fig2_search_quality.txt", "\n".join(report))
        # Shape: ranked dominates boolean; wrangled >= raw.
        assert (
            summaries["ranked+wrangled"].ndcg
            > summaries["boolean+wrangled"].ndcg
        )
        assert (
            summaries["ranked+raw"].ndcg > summaries["boolean+raw"].ndcg
        )
        assert (
            summaries["ranked+wrangled"].ndcg
            >= summaries["ranked+raw"].ndcg
        )
        assert (
            summaries["boolean+wrangled"].recall
            >= summaries["boolean+raw"].recall
        )


class TestLatencyScaling:
    @pytest.mark.parametrize("n_datasets", [30, 120, 480])
    @pytest.mark.parametrize("indexed", [False, True],
                             ids=["fullscan", "indexed"])
    def test_query_latency(self, benchmark, n_datasets, indexed):
        fs, __, ___ = messy_archive_of_size(n_datasets, seed=BENCH_SEED)
        system = wrangled_system(fs)
        engine = system.engine
        if not indexed:
            engine = SearchEngine(
                engine.catalog,
                hierarchy=system.state.hierarchy,
                config=engine.config,
            )
        clean = clean_archive_of_size(n_datasets, seed=BENCH_SEED)
        queries = [
            spec.query
            for spec in generate_workload(clean, n_queries=5, seed=31)
        ]

        def run_queries():
            return [engine.search(q, limit=10) for q in queries]

        results = benchmark(run_queries)
        assert all(r for r in results)

    def test_indexed_equals_fullscan_results(self, bench_system,
                                             bench_workload, benchmark):
        engine = bench_system.engine
        plain = SearchEngine(
            engine.catalog,
            hierarchy=bench_system.state.hierarchy,
            config=engine.config,
        )

        def compare():
            mismatches = 0
            for spec in bench_workload[:10]:
                a = [r.dataset_id for r in engine.search(spec.query, 10)]
                b = [r.dataset_id for r in plain.search(spec.query, 10)]
                if a != b:
                    mismatches += 1
            return mismatches

        assert benchmark(compare) == 0

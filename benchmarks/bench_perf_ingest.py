"""Perf benchmark: the ingest fast path vs the seed serial path.

Builds a large synthetic archive, then measures the scan→publish half of
the system along the axes the ingest fast path optimizes:

* **seed serial** — the pre-fast-path cost model, reproduced here the
  way ``benchmarks/bench_perf_search.py`` reproduces naive search: hash,
  parse and feature-extract one file at a time, upsert per item (one
  SQLite transaction per dataset, seed journal pragmas), publish with a
  fresh 2N digest diff per run,
* **cold fast** — chunked parallel scan, batched ``upsert_many``
  publish, WAL + synchronous=NORMAL on file-backed SQLite,
* **unchanged re-wrangle** — the same archive again: content hashes
  memoized, digest cache version-matched, so the run must compute ZERO
  feature digests and issue ZERO store writes,
* **small-edit re-wrangle** — a handful of files edited, so cost should
  track the edit count, not the archive size.

The equality gate is asserted inside the run: the fast path (serial and
parallel) must produce a catalog observably identical to the seed serial
path; a mismatch exits non-zero, which is what CI's ``--quick`` smoke
invocation gates on.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_ingest.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_ingest.py --quick  # CI

The full run writes ``BENCH_ingest.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.wrangling.publish as publish_mod
from repro.archive.filesystem import VirtualArchive
from repro.archive.formats import FormatError, parse_file
from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.catalog.io import feature_to_dict
from repro.core.features import extract_feature
from repro.wrangling import WranglingState
from repro.wrangling.chain import ProcessChain
from repro.wrangling.publish import Publish
from repro.wrangling.scan import ScanArchive

SECONDS_PER_DAY = 86_400.0
EPOCH_2008 = 1_199_145_600.0  # 2008-01-01T00:00:00Z

VARIABLE_POOL = [
    ("water_temperature", "degC"), ("water_temp", "degC"),
    ("air_temperature", "degC"), ("salinity", "psu"),
    ("salinity_psu", "psu"), ("dissolved_oxygen", "mg/l"),
    ("chlorophyll", "ug/l"), ("turbidity", "ntu"),
    ("ph", ""), ("conductivity", "S/m"), ("pressure", "dbar"),
    ("wind_speed", "m/s"), ("wave_height", "m"), ("depth", "m"),
    ("nitrate", "umol"), ("current_speed", "m/s"),
]


def make_csv(index: int, rng: random.Random, rows: int) -> str:
    """One synthetic station file in the archive's CSV dialect."""
    lat = rng.uniform(42.0, 49.0)
    lon = rng.uniform(-127.0, -121.0)
    start = EPOCH_2008 + rng.uniform(0.0, 5 * 365) * SECONDS_PER_DAY
    variables = rng.sample(VARIABLE_POOL, rng.randint(3, 6))
    lines = [
        f"# title: Synthetic station {index}",
        "# platform: station",
    ]
    header = ["time [s]", "latitude [degrees]", "longitude [degrees]"]
    header.extend(
        f"{name} [{unit}]" if unit else name for name, unit in variables
    )
    lines.append(",".join(header))
    for row in range(rows):
        cells = [
            repr(start + row * 3600.0),
            repr(lat + rng.uniform(0.0, 0.05)),
            repr(lon + rng.uniform(0.0, 0.05)),
        ]
        cells.extend(repr(rng.uniform(0.0, 30.0)) for __ in variables)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def build_archive(n_datasets: int, rows: int, seed: int) -> VirtualArchive:
    rng = random.Random(seed)
    fs = VirtualArchive()
    for i in range(n_datasets):
        fs.put(
            f"stations/st{i % 97:02d}/station_{i:05d}.csv",
            make_csv(i, rng, rows),
        )
    return fs


# --------------------------------------------------------------------------
# the seed serial path, reproduced as the baseline cost model
# --------------------------------------------------------------------------

def seed_scan(fs, working, scanned_hashes) -> None:
    """Pre-PR ScanArchive.run: hash/parse/extract/upsert one at a time."""
    for record in sorted(
        (r for r in fs if r.extension in ("csv", "cdl")),
        key=lambda r: r.path,
    ):
        content_hash = hashlib.sha256(
            record.content.encode("utf-8")
        ).hexdigest()  # seed recomputed this fresh on every scan
        if scanned_hashes.get(record.path) == content_hash:
            continue
        try:
            dataset = parse_file(record.content, record.path)
        except FormatError:
            continue
        working.upsert(extract_feature(dataset, content_hash=content_hash))
        scanned_hashes[record.path] = content_hash


def seed_publish(working, published) -> None:
    """Pre-PR Publish.run: a fresh 2N digest diff, upsert per dataset."""
    published_ids = set(published.dataset_ids())
    working_ids = set(working.dataset_ids())
    for dataset_id in sorted(working_ids):
        feature = working.get(dataset_id)
        digest = publish_mod.feature_digest(feature)
        if dataset_id in published_ids:
            if publish_mod.feature_digest(published.get(dataset_id)) == digest:
                continue
        published.upsert(feature.copy())
    for dataset_id in sorted(published_ids - working_ids):
        published.remove(dataset_id)


def seed_pragmas(catalog: SqliteCatalog) -> None:
    """Reset a file-backed catalog to the seed's journal behaviour.

    The store now opens file databases with WAL + synchronous=NORMAL;
    the seed ran on sqlite's defaults (rollback journal, full fsync per
    commit), which is part of the serial path being measured.
    """
    catalog._conn.execute("PRAGMA journal_mode = DELETE")
    catalog._conn.execute("PRAGMA synchronous = FULL")


# --------------------------------------------------------------------------
# harness
# --------------------------------------------------------------------------

def observable(store) -> dict:
    """Everything search can see of a catalog, for equality gating."""
    return {f.dataset_id: feature_to_dict(f) for f in store.features()}


def fast_state(fs, published) -> tuple[WranglingState, ProcessChain]:
    state = WranglingState(fs=fs, published=published)
    chain = ProcessChain(components=[ScanArchive(), Publish()])
    return state, chain


def counted_digests(fn):
    """Run ``fn()`` counting feature_digest calls; returns (result, n)."""
    calls = {"n": 0}
    original = publish_mod.feature_digest

    def counting(feature):
        calls["n"] += 1
        return original(feature)

    publish_mod.feature_digest = counting
    try:
        result = fn()
    finally:
        publish_mod.feature_digest = original
    return result, calls["n"]


def timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def median_time(fn, repeats: int) -> float:
    return statistics.median(timed(fn) for __ in range(repeats))


def edit_files(
    fs: VirtualArchive, n_edits: int, stamp: int, rows: int
) -> list[str]:
    """Rewrite ``n_edits`` random files with fresh content.

    ``stamp`` must be unique per call: it seeds the regenerated content,
    so every edited file is guaranteed to parse to a different feature.
    """
    rng = random.Random(stamp)
    paths = sorted(r.path for r in fs if r.extension == "csv")
    chosen = rng.sample(paths, min(n_edits, len(paths)))
    for i, path in enumerate(chosen):
        fs.put(path, make_csv(stamp, random.Random(stamp * 7919 + i), rows))
    return chosen


#: Unique, never-repeating stamps for edit passes across all backends.
_EDIT_STAMPS = iter(range(10_000, 1_000_000))


def bench_backend(
    backend: str,
    fs: VirtualArchive,
    tmpdir: str,
    repeats: int,
    n_edits: int,
    rows: int,
) -> dict:
    def make_store(tag: str):
        if backend == "memory":
            return MemoryCatalog()
        return SqliteCatalog(os.path.join(tmpdir, f"{backend}_{tag}.db"))

    # -- seed serial cold ---------------------------------------------------
    seed_published = make_store("seed")
    if backend == "sqlite_file":
        seed_pragmas(seed_published)
    seed_working = MemoryCatalog()
    seed_hashes: dict[str, str] = {}

    def run_seed():
        seed_scan(fs, seed_working, seed_hashes)
        seed_publish(seed_working, seed_published)

    cold_seed_s = timed(run_seed)

    # -- fast cold ----------------------------------------------------------
    fast_published = make_store("fast")
    state, chain = fast_state(fs, fast_published)
    cold_fast_s = timed(lambda: chain.run(state))

    exact = observable(fast_published) == observable(seed_published)

    # -- unchanged re-wrangle ----------------------------------------------
    working_before = state.working.version
    published_before = state.published.version
    __, unchanged_digests = counted_digests(lambda: chain.run(state))
    unchanged_writes = (
        state.working.version - working_before
        + state.published.version - published_before
    )
    unchanged_s = median_time(lambda: chain.run(state), repeats)
    __, seed_unchanged_digests = counted_digests(run_seed)
    unchanged_seed_s = median_time(run_seed, repeats)

    # -- small-edit re-wrangle ---------------------------------------------
    def run_edit():
        edit_files(fs, n_edits, next(_EDIT_STAMPS), rows)
        chain.run(state)

    small_edit_s = median_time(run_edit, repeats)
    delta = state.published_delta
    edit_delta_ok = delta is not None and len(delta.upserted) == n_edits

    result = {
        "cold_seed_s": cold_seed_s,
        "cold_fast_s": cold_fast_s,
        "cold_speedup": (
            cold_seed_s / cold_fast_s if cold_fast_s else float("inf")
        ),
        "unchanged_s": unchanged_s,
        "unchanged_seed_s": unchanged_seed_s,
        "unchanged_digests": unchanged_digests,
        "unchanged_seed_digests": seed_unchanged_digests,
        "unchanged_store_writes": unchanged_writes,
        "small_edit_s": small_edit_s,
        "small_edit_files": n_edits,
        "small_edit_delta_ok": edit_delta_ok,
        "exactness_ok": exact,
    }
    for store in (seed_published, fast_published):
        if isinstance(store, SqliteCatalog):
            store.close()
    return result


def measure_telemetry_overhead(fs: VirtualArchive, repeats: int) -> dict:
    """Serial cold wrangles with telemetry off vs on, interleaved.

    The observability contract: full instrumentation (spans on every
    stage, per-file latency observations, counters) must cost at most a
    few percent of the serial ingest path.  Runs are interleaved so
    machine noise hits both sides equally; the medians are compared.
    """
    from repro.obs import Telemetry, use_telemetry

    def cold_run(telemetry) -> float:
        state = WranglingState(fs=fs)
        chain = ProcessChain(
            components=[ScanArchive(workers=1), Publish()]
        )
        if telemetry is None:
            return timed(lambda: chain.run(state))
        with use_telemetry(telemetry):
            return timed(lambda: chain.run(state))

    base: list[float] = []
    instrumented: list[float] = []
    for __ in range(max(3, repeats + 1)):
        base.append(cold_run(None))
        instrumented.append(cold_run(Telemetry()))
    base_s = statistics.median(base)
    on_s = statistics.median(instrumented)
    return {
        "telemetry_base_s": base_s,
        "telemetry_on_s": on_s,
        "telemetry_overhead": (
            (on_s - base_s) / base_s if base_s else 0.0
        ),
    }


def run(n_datasets: int, rows: int, repeats: int, n_edits: int) -> dict:
    print(f"building a {n_datasets}-dataset synthetic archive ...")
    fs = build_archive(n_datasets, rows=rows, seed=7)

    # -- serial/parallel equality gate --------------------------------------
    # workers=4 forces a real process pool even on single-CPU hosts
    # (where the workers=None default resolves to the serial path).
    print("checking serial == parallel catalog equality ...")
    serial_state = WranglingState(fs=fs)
    ProcessChain(
        components=[ScanArchive(workers=1), Publish()]
    ).run(serial_state)
    parallel_state = WranglingState(fs=fs)
    ProcessChain(
        components=[ScanArchive(workers=4), Publish()]
    ).run(parallel_state)
    parallel_ok = observable(serial_state.published) == observable(
        parallel_state.published
    )
    if not parallel_ok:
        print("exactness FAILED: parallel scan diverged from serial")
        return {"exactness_ok": False}

    result = {
        "datasets": n_datasets,
        "rows_per_dataset": rows,
        "repeats": repeats,
        "workers": os.cpu_count(),
        "backends": {},
    }
    with tempfile.TemporaryDirectory() as tmpdir:
        for backend in ("memory", "sqlite_file"):
            print(f"timing backend {backend} ...")
            result["backends"][backend] = bench_backend(
                backend, fs, tmpdir, repeats, n_edits, rows
            )
    print("measuring telemetry overhead on the serial path ...")
    result.update(measure_telemetry_overhead(fs, repeats))
    sqlite = result["backends"]["sqlite_file"]
    result["exactness_ok"] = parallel_ok and all(
        b["exactness_ok"] for b in result["backends"].values()
    )
    result["cold_speedup_sqlite_file"] = sqlite["cold_speedup"]
    result["unchanged_digests"] = max(
        b["unchanged_digests"] for b in result["backends"].values()
    )
    result["unchanged_store_writes"] = max(
        b["unchanged_store_writes"] for b in result["backends"].values()
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small archive, equality-focused smoke run (CI)",
    )
    parser.add_argument("--datasets", type=int, default=None)
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--edits", type=int, default=25)
    parser.add_argument(
        "--output", default=None,
        help="result JSON path (default: BENCH_ingest.json at the repo "
        "root for full runs, BENCH_ingest_quick.json for --quick)",
    )
    args = parser.parse_args(argv)

    n_datasets = args.datasets or (400 if args.quick else 5000)
    repeats = args.repeats or (2 if args.quick else 3)
    n_edits = min(args.edits, max(1, n_datasets // 10))

    result = run(n_datasets, args.rows, repeats, n_edits)
    result["quick"] = args.quick

    output = args.output or str(
        REPO_ROOT
        / ("BENCH_ingest_quick.json" if args.quick else "BENCH_ingest.json")
    )
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {output}")

    if not result["exactness_ok"]:
        return 1
    for backend, b in result["backends"].items():
        print(
            f"{backend:12s} cold seed {b['cold_seed_s']:7.3f}s  "
            f"fast {b['cold_fast_s']:7.3f}s  "
            f"({b['cold_speedup']:.1f}x)  "
            f"unchanged {b['unchanged_s'] * 1000.0:7.1f}ms "
            f"({b['unchanged_digests']} digests, "
            f"{b['unchanged_store_writes']} writes; seed "
            f"{b['unchanged_seed_digests']} digests)  "
            f"edit({b['small_edit_files']}) "
            f"{b['small_edit_s'] * 1000.0:7.1f}ms"
        )
    print(
        f"telemetry    base {result['telemetry_base_s']:7.3f}s  "
        f"instrumented {result['telemetry_on_s']:7.3f}s  "
        f"(overhead {result['telemetry_overhead'] * 100.0:+.1f}%)"
    )
    failures = []
    if result["telemetry_overhead"] > 0.05:
        failures.append("telemetry overhead above 5% on the serial path")
    if result["unchanged_digests"] != 0:
        failures.append("unchanged re-wrangle computed digests")
    if result["unchanged_store_writes"] != 0:
        failures.append("unchanged re-wrangle wrote to a store")
    if not all(
        b["small_edit_delta_ok"] for b in result["backends"].values()
    ):
        failures.append("small-edit publish delta != edited file count")
    if not args.quick:
        # The acceptance floor for the perf trajectory; quick CI runs on
        # tiny archives are too noisy to gate on speedups.
        if result["cold_speedup_sqlite_file"] < 3.0:
            failures.append(
                "file-backed SQLite cold speedup below the 3x floor"
            )
    for failure in failures:
        print(f"FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

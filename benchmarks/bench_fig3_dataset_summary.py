"""F3 — Figure "Example Dataset Summary Page".

The summary page "displays dataset & variable information from metadata
catalog"; excluded variables appear in the detail view only.  Measured:
summary assembly + render throughput, and completeness (every catalog
field the figure shows is present for every dataset).
"""

from __future__ import annotations

from repro.core import summarize
from repro.ui import render_summary_html, render_summary_text

from .conftest import write_result


def _render_all(system) -> list[str]:
    catalog = system.engine.catalog
    return [
        render_summary_text(
            summarize(
                catalog.get(dataset_id),
                taxonomy_links=system.state.taxonomy_links,
            )
        )
        for dataset_id in catalog.dataset_ids()
    ]


class TestSummaryPages:
    def test_render_all_text(self, benchmark, bench_system):
        pages = benchmark(_render_all, bench_system)
        assert len(pages) == len(bench_system.engine.catalog)
        write_result("fig3_example_summary.txt", pages[0])

    def test_render_single_html(self, benchmark, bench_system):
        catalog = bench_system.engine.catalog
        dataset_id = catalog.dataset_ids()[0]
        summary = summarize(
            catalog.get(dataset_id),
            taxonomy_links=bench_system.state.taxonomy_links,
        )
        page = benchmark(render_summary_html, summary)
        assert "<h1>" in page

    def test_completeness(self, benchmark, bench_system):
        """Every summary carries the figure's information content."""
        catalog = bench_system.engine.catalog

        def check_all() -> int:
            complete = 0
            for dataset_id in catalog.dataset_ids():
                summary = summarize(
                    catalog.get(dataset_id),
                    taxonomy_links=bench_system.state.taxonomy_links,
                )
                assert summary.title
                assert summary.location_text
                assert summary.time_text
                assert summary.row_count > 0
                assert summary.variable_count > 0
                for variable in summary.searchable + summary.detail_only:
                    assert variable.name
                    assert variable.count >= 0
                complete += 1
            return complete

        assert benchmark(check_all) == len(catalog)

    def test_excluded_shown_in_detail_only(self, benchmark, bench_system):
        """The Table row 4 contract on real wrangled output."""
        catalog = bench_system.engine.catalog

        def count_detail_only() -> int:
            total = 0
            for dataset_id in catalog.dataset_ids():
                summary = summarize(catalog.get(dataset_id))
                for variable in summary.detail_only:
                    assert variable.excluded
                searchable_names = {v.name for v in summary.searchable}
                assert "qa_level" not in searchable_names
                assert "qc_flag" not in searchable_names
                total += len(summary.detail_only)
            return total

        detail_only = benchmark(count_detail_only)
        assert detail_only > 0  # the mess injector added QA columns

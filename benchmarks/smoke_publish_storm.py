"""CI smoke: a publish storm over HTTP must be invisible to clients.

An in-process :class:`~repro.serve.http.SearchHTTPServer` serves socket
clients while a publisher thread hammers the catalog with stamped-delta
publishes (the wrangler pattern: one atomic batch, one version bump,
one ``service.refresh(delta=...)``).  The storm runs in-process because
only an in-process publisher can hand the service the
:class:`~repro.wrangling.state.PublishDelta` that drives the O(changed)
refresh path — an external writer would fall back to full rebuilds.

Gates:

* zero HTTP 5xx and zero client errors on the wire,
* served staleness <= 1 (live version sampled before each request) and
  zero version regressions within any client,
* the delta path really engaged: ``repro_refresh_delta_applied_total``
  present and positive in a ``/metrics`` scrape,
* the access log validates against the obs schema.

Usage::

    PYTHONPATH=src python benchmarks/smoke_publish_storm.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_perf_search import synthetic_catalog
from bench_perf_serve import publish_round, synthetic_query_texts

from repro.hierarchy import vocabulary_hierarchy
from repro.obs import (
    AccessLogWriter,
    parse_prometheus_text,
    sample_value,
)
from repro.obs.sink import validate_trace_file
from repro.serve import (
    SearchHTTPServer,
    SearchService,
    ServeConfig,
    run_load_http,
)


def main() -> int:
    catalog = synthetic_catalog(200, seed=11)
    texts = synthetic_query_texts(6, seed=17)
    hierarchy = vocabulary_hierarchy()
    ids = catalog.dataset_ids()[:12]
    stop = threading.Event()
    publishes = [0]

    service = SearchService(
        catalog,
        hierarchy=hierarchy,
        config=ServeConfig(max_concurrency=8, queue_depth=32),
    )
    access_path = tempfile.mktemp(
        suffix=".jsonl", prefix="storm_access_"
    )
    access_log = AccessLogWriter(access_path)
    with SearchHTTPServer(
        service, port=0, access_log=access_log
    ).start() as server:

        def publisher() -> None:
            round_number = 0
            while not stop.is_set():
                round_number += 1
                delta = publish_round(catalog, ids, round_number)
                service.refresh(delta=delta)
                publishes[0] += 1
                time.sleep(0.002)

        thread = threading.Thread(target=publisher, daemon=True)
        thread.start()
        try:
            report = run_load_http(
                server.url,
                texts,
                clients=4,
                requests_per_client=15,
                think_seconds=0.002,
                limit=10,
                seed=23,
                live_version=lambda: catalog.version,
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        with urllib.request.urlopen(server.url + "/metrics") as fh:
            metrics_text = fh.read().decode("utf-8")
    access_log.close()

    print(
        f"storm: {publishes[0]} publishes, {report.completed} requests, "
        f"statuses {report.status_counts}, "
        f"max staleness {report.max_staleness}, "
        f"regressions {report.version_regressions}"
    )
    failures = []
    http_5xx = sum(
        count
        for status, count in report.status_counts.items()
        if status.startswith("5")
    )
    if publishes[0] < 5:
        failures.append(f"storm too small: {publishes[0]} publishes")
    if http_5xx:
        failures.append(f"{http_5xx} HTTP 5xx responses")
    if report.errors:
        failures.append(f"{report.errors} client errors")
    if report.max_staleness > 1:
        failures.append(
            f"staleness {report.max_staleness} exceeds the <= 1 bound"
        )
    if report.version_regressions:
        failures.append(
            f"{report.version_regressions} version regressions"
        )

    families = parse_prometheus_text(metrics_text)
    delta_applied = sample_value(
        families, "repro_refresh_delta_applied_total"
    )
    if not delta_applied or delta_applied < 1:
        failures.append(
            "repro_refresh_delta_applied_total missing from /metrics — "
            "the storm never took the delta refresh path"
        )
    else:
        print(f"delta refreshes applied: {delta_applied:.0f}")

    problems = validate_trace_file(access_path)
    if problems:
        failures.append(
            f"access log invalid: {problems[:3]}"
        )
    else:
        print(f"access log ok: {access_path}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Perf benchmark: the query-serving fast path vs the naive full scan.

Generates a large synthetic metadata catalog, then measures ranked-search
latency along the axes the fast path optimizes:

* **naive** — score every dataset with :func:`score_feature`, sort the
  full result list (the pre-fast-path cost model: per-feature term
  expansion, no memoization, no pruning, no heap, no cache),
* **cold**  — the fast path (columnar scan over the frozen facet
  columns, indexes built) with an empty query cache,
* **object-cold** — the same fast path with the columnar scan disabled
  (per-feature object traversal); cold / object-cold isolates the
  columnar win,
* **warm**  — the same query repeated (version-keyed cache hit),
* **post-edit** — one dataset mutated, indexes refreshed incrementally,
  the query re-issued (cache miss + index maintenance + one columnar
  re-freeze).

The pruned-exactness contract is asserted inside the run: fast-path
results — columnar AND object — must be identical (ids, scores, order)
to the naive scan for every benchmark query; a mismatch exits non-zero,
which is what CI's ``--quick`` smoke invocation gates on.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_search.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_search.py --quick  # CI

The full run writes ``BENCH_search.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog import DatasetFeature, MemoryCatalog, VariableEntry
from repro.core import Query, SearchEngine, VariableTerm, score_feature
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.hierarchy import vocabulary_hierarchy

SECONDS_PER_DAY = 86_400.0
EPOCH_2008 = 1_199_145_600.0  # 2008-01-01T00:00:00Z

#: Realistic-ish variable-name pool: canonical names plus the suffixed,
#: abbreviated and misspelled variants archives accumulate — repeats
#: across datasets are what the per-query name-similarity memo exploits.
VARIABLE_POOL = [
    "water_temperature", "water_temp", "watertemperature",
    "air_temperature", "air_temp", "air_temperatrue",
    "salinity", "salinity_psu", "salnity",
    "dissolved_oxygen", "oxygen", "do_mg_l",
    "chlorophyll", "chlorophyll_a", "chl_a",
    "fluorescence", "fluorescence_375nm", "fluores375",
    "turbidity", "turbidity_ntu",
    "ph", "ph_total",
    "conductivity", "specific_conductivity",
    "pressure", "water_pressure",
    "wind_speed", "wind_gust",
    "wave_height", "significant_wave_height",
    "depth", "sensor_depth",
    "nitrate", "nitrate_umol",
    "current_speed", "current_direction",
]


def synthetic_catalog(n_datasets: int, seed: int) -> MemoryCatalog:
    """A catalog of ``n_datasets`` stations along a synthetic coast."""
    rng = random.Random(seed)
    catalog = MemoryCatalog()
    for i in range(n_datasets):
        lat = rng.uniform(42.0, 49.0)
        lon = rng.uniform(-127.0, -121.0)
        d_lat = rng.uniform(0.0, 0.3)
        d_lon = rng.uniform(0.0, 0.3)
        start = EPOCH_2008 + rng.uniform(0.0, 5 * 365) * SECONDS_PER_DAY
        length = rng.uniform(5.0, 400.0) * SECONDS_PER_DAY
        variables = []
        for name in rng.sample(VARIABLE_POOL, rng.randint(4, 8)):
            lo = rng.uniform(-5.0, 20.0)
            hi = lo + rng.uniform(0.5, 25.0)
            variables.append(
                VariableEntry.from_written(
                    name, "unit", rng.randint(50, 5000),
                    lo, hi, (lo + hi) / 2.0, (hi - lo) / 4.0,
                )
            )
        catalog.upsert(
            DatasetFeature(
                dataset_id=f"station_{i:05d}",
                title=f"Synthetic station {i}",
                platform="station",
                file_format="csv",
                bbox=BoundingBox(lat, lon, lat + d_lat, lon + d_lon),
                interval=TimeInterval(start, start + length),
                row_count=rng.randint(100, 10_000),
                source_directory=f"stations/{i:05d}",
                variables=variables,
            )
        )
    return catalog


def synthetic_queries(n_queries: int, seed: int) -> list[Query]:
    """Refinement-session-shaped queries: location + time + variables."""
    rng = random.Random(seed)
    queries = []
    for __ in range(n_queries):
        start = EPOCH_2008 + rng.uniform(0.0, 4 * 365) * SECONDS_PER_DAY
        terms = [VariableTerm(rng.choice(VARIABLE_POOL))]
        if rng.random() < 0.5:
            lo = rng.uniform(0.0, 10.0)
            terms.append(
                VariableTerm(
                    rng.choice(VARIABLE_POOL), low=lo, high=lo + 8.0
                )
            )
        queries.append(
            Query(
                location=GeoPoint(
                    rng.uniform(43.0, 48.0), rng.uniform(-126.0, -122.0)
                ),
                interval=TimeInterval(
                    start, start + rng.uniform(30.0, 120.0) * SECONDS_PER_DAY
                ),
                variables=tuple(terms),
            )
        )
    return queries


def naive_search(catalog, query, hierarchy, config, limit):
    """The pre-fast-path reference: score all, sort all, truncate."""
    results = []
    for feature in catalog:
        breakdown = score_feature(
            query, feature, hierarchy=hierarchy, config=config
        )
        if breakdown.total <= 0.0 and not query.is_empty:
            continue
        results.append((breakdown.total, feature.dataset_id))
    results.sort(key=lambda r: (-r[0], r[1]))
    return results[:limit]


def median_time(fn, repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` calls."""
    samples = []
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def run(n_datasets: int, n_queries: int, repeats: int, limit: int) -> dict:
    hierarchy = vocabulary_hierarchy()
    print(f"generating {n_datasets} synthetic datasets ...")
    catalog = synthetic_catalog(n_datasets, seed=7)
    queries = synthetic_queries(n_queries, seed=31)

    engine = SearchEngine(catalog, hierarchy=hierarchy)
    engine.build_indexes()
    object_engine = SearchEngine(catalog, hierarchy=hierarchy, columnar=False)
    object_engine.build_indexes()
    config = engine.config

    # -- exactness gate ----------------------------------------------------
    print("checking pruned-exactness against the naive scan ...")
    mismatches = 0
    for query in queries:
        fast = [
            (r.score, r.dataset_id)
            for r in engine.search(query, limit=limit)
        ]
        via_objects = [
            (r.score, r.dataset_id)
            for r in object_engine.search(query, limit=limit)
        ]
        naive = naive_search(catalog, query, hierarchy, config, limit)
        if fast != naive or via_objects != naive:
            mismatches += 1
            print(f"  MISMATCH for {query.describe()!r}")
            print(f"    columnar: {fast[:3]} ...")
            print(f"    object  : {via_objects[:3]} ...")
            print(f"    naive   : {naive[:3]} ...")
    if mismatches:
        print(f"exactness FAILED on {mismatches}/{len(queries)} queries")
        return {"exactness_ok": False, "mismatches": mismatches}

    # -- latency -----------------------------------------------------------
    def bench_naive():
        for query in queries:
            naive_search(catalog, query, hierarchy, config, limit)

    def bench_cold():
        engine.cache.clear()
        for query in queries:
            engine.search(query, limit=limit)

    def bench_object_cold():
        object_engine.cache.clear()
        for query in queries:
            object_engine.search(query, limit=limit)

    def bench_warm():
        for query in queries:
            engine.search(query, limit=limit)

    print("timing naive / cold / object-cold / warm ...")
    naive_s = median_time(bench_naive, repeats)
    cold_s = median_time(bench_cold, repeats)
    object_cold_s = median_time(bench_object_cold, repeats)
    bench_warm()  # populate the cache
    warm_s = median_time(bench_warm, repeats)

    # -- post-edit re-search ----------------------------------------------
    def edit_one(offset: int) -> None:
        feature = catalog.get("station_00000")
        feature.bbox = BoundingBox(
            44.0 + 0.001 * offset, -124.0, 44.2 + 0.001 * offset, -123.8
        )
        catalog.upsert(feature)
        engine.refresh_indexes(updated=[catalog.get("station_00000")])

    edits = [0]

    def bench_post_edit():
        edit_one(edits[0])
        edits[0] += 1
        for query in queries:
            engine.search(query, limit=limit)

    def bench_post_edit_naive():
        edit_one(edits[0])
        edits[0] += 1
        for query in queries:
            naive_search(catalog, query, hierarchy, config, limit)

    print("timing post-edit re-search ...")
    post_edit_s = median_time(bench_post_edit, repeats)
    post_edit_naive_s = median_time(bench_post_edit_naive, repeats)

    per_query = 1000.0 / len(queries)
    result = {
        "datasets": n_datasets,
        "queries": len(queries),
        "limit": limit,
        "repeats": repeats,
        "exactness_ok": True,
        "naive_ms_per_query": naive_s * per_query,
        "cold_ms_per_query": cold_s * per_query,
        "object_cold_ms_per_query": object_cold_s * per_query,
        "warm_ms_per_query": warm_s * per_query,
        "post_edit_ms_per_query": post_edit_s * per_query,
        "post_edit_naive_ms_per_query": post_edit_naive_s * per_query,
        "cold_speedup": naive_s / cold_s if cold_s else float("inf"),
        "columnar_speedup": (
            object_cold_s / cold_s if cold_s else float("inf")
        ),
        "warm_speedup": naive_s / warm_s if warm_s else float("inf"),
        "post_edit_speedup": (
            post_edit_naive_s / post_edit_s if post_edit_s else float("inf")
        ),
        "cache": engine.cache.stats(),
    }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small catalog, exactness-focused smoke run (CI)",
    )
    parser.add_argument("--datasets", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument(
        "--output", default=None,
        help="result JSON path (default: BENCH_search.json at the repo "
        "root for full runs, BENCH_search_quick.json for --quick)",
    )
    args = parser.parse_args(argv)

    n_datasets = args.datasets or (600 if args.quick else 5000)
    n_queries = args.queries or (6 if args.quick else 8)
    repeats = args.repeats or (2 if args.quick else 3)

    result = run(n_datasets, n_queries, repeats, args.limit)
    result["quick"] = args.quick

    output = args.output or str(
        REPO_ROOT
        / ("BENCH_search_quick.json" if args.quick else "BENCH_search.json")
    )
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {output}")

    if not result["exactness_ok"]:
        return 1
    print(
        f"naive     {result['naive_ms_per_query']:9.2f} ms/query\n"
        f"cold      {result['cold_ms_per_query']:9.2f} ms/query "
        f"({result['cold_speedup']:.1f}x naive, "
        f"{result['columnar_speedup']:.1f}x vs object scan)\n"
        f"obj-cold  {result['object_cold_ms_per_query']:9.2f} ms/query\n"
        f"warm      {result['warm_ms_per_query']:9.2f} ms/query "
        f"({result['warm_speedup']:.1f}x)\n"
        f"post-edit {result['post_edit_ms_per_query']:9.2f} ms/query "
        f"({result['post_edit_speedup']:.1f}x vs naive re-search)"
    )
    if not args.quick:
        # The acceptance floor for the perf trajectory; quick CI runs on
        # tiny catalogs are too noisy to gate on speedups.
        if result["warm_speedup"] < 10.0 or result["cold_speedup"] < 1.5:
            print("speedup below acceptance floor (warm 10x, cold 1.5x)")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

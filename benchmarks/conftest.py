"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the poster's artifacts (table/figure) and
measures the performance claim behind it.  Report text goes to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    clean_archive_of_size,
    generate_workload,
    messy_archive_of_size,
    raw_catalog_from,
    wrangled_system,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_ARCHIVE_DATASETS = 60
BENCH_SEED = 7


def write_result(name: str, text: str) -> str:
    """Persist a bench report; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_fixture():
    """(fs, truth, messy_archive) at the default bench size."""
    return messy_archive_of_size(BENCH_ARCHIVE_DATASETS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_clean_archive():
    """The clean twin of ``bench_fixture``."""
    return clean_archive_of_size(BENCH_ARCHIVE_DATASETS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_workload(bench_clean_archive):
    """25 ground-truthed queries over the bench archive."""
    return generate_workload(bench_clean_archive, n_queries=25, seed=23)


@pytest.fixture(scope="session")
def bench_raw_catalog(bench_fixture):
    """The no-wrangling catalog of the bench archive."""
    fs, __, __ = bench_fixture
    return raw_catalog_from(fs)


@pytest.fixture(scope="session")
def bench_system(bench_fixture):
    """A wrangled, search-ready system over the bench archive."""
    fs, __, __ = bench_fixture
    return wrangled_system(fs)

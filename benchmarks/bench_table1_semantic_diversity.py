"""T1 — the poster's Table: "Categories of Semantic Diversity, and
Possible Approaches".

Regenerates the table (verbatim rows from ``repro.semantics.categories``)
and attaches measured per-category resolution accuracy for four
configurations (none / tables / discovery / full), plus a mess-rate
sweep.  Expected shape: each category's dedicated approach beats the
no-wrangling baseline; tables alone miss misspellings; discovery alone
cannot invent abbreviations or multilevel forms; the full pipeline wins
everywhere.
"""

from __future__ import annotations

import pytest

from repro.archive import uniform_mess_spec
from repro.experiments import (
    accuracy_table,
    messy_archive_of_size,
    resolution_accuracy,
)
from repro.semantics import TABLE_ROWS

from .conftest import BENCH_SEED, write_result


def _full_report(archive) -> str:
    lines = ["Table 1 — Categories of Semantic Diversity (regenerated)", ""]
    for row in TABLE_ROWS:
        lines.append(f"* {row.title}")
        lines.append(f"    example:  {row.example}")
        lines.append(f"    desired:  {row.desired_result}")
        lines.append(f"    approach: {row.approach}")
    lines.append("")
    lines.append("Measured resolution accuracy by configuration:")
    lines.append(accuracy_table(archive))
    return "\n".join(lines)


class TestTable1:
    def test_full_pipeline_accuracy(self, benchmark, bench_fixture):
        """Benchmarks the full resolver; writes the regenerated table and
        asserts the expected accuracy shape."""
        __, ___, archive = bench_fixture
        full = benchmark(resolution_accuracy, archive, "full")
        write_result("table1_semantic_diversity.txt", _full_report(archive))
        none = resolution_accuracy(archive, "none")
        for category in ("misspelling", "synonym", "abbreviation",
                         "context", "multilevel"):
            if category in full:
                assert full[category].accuracy >= 0.9
                assert full[category].accuracy > none[category].accuracy

    def test_tables_only_accuracy(self, benchmark, bench_fixture):
        """Known transformations alone: great on curated categories, poor
        on misspellings."""
        __, ___, archive = bench_fixture
        tables = benchmark(resolution_accuracy, archive, "tables")
        assert tables["synonym"].accuracy >= 0.9
        assert tables["abbreviation"].accuracy >= 0.9
        assert tables["misspelling"].accuracy < 0.5

    def test_discovery_only_accuracy(self, benchmark, bench_fixture):
        """Discovery alone: great on misspellings, cannot invent
        abbreviation expansions."""
        __, ___, archive = bench_fixture
        discovery = benchmark(resolution_accuracy, archive, "discovery")
        assert discovery["misspelling"].accuracy >= 0.9
        assert discovery["abbreviation"].accuracy < 0.5

    @pytest.mark.parametrize("rate", [0.1, 0.25, 0.4])
    def test_rate_sweep(self, benchmark, rate):
        """Full-pipeline accuracy holds as the mess rate grows."""
        __, ___, archive = messy_archive_of_size(
            30, seed=BENCH_SEED, mess_spec=uniform_mess_spec(rate, seed=11)
        )
        full = benchmark(resolution_accuracy, archive, "full")
        overall_correct = sum(b.correct for b in full.values())
        overall_total = sum(b.total for b in full.values())
        assert overall_correct / overall_total >= 0.9
        write_result(
            f"table1_rate_{int(rate * 100):02d}.txt",
            accuracy_table(archive),
        )

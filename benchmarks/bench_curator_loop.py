"""C1 — "Major curatorial activities" as a closed loop.

Simulated curator iterates run -> validate -> improve (ambiguity
decisions, synonym additions).  The poster's implied claim: the process
converges — validation failures fall monotonically and search quality
rises toward the clean-catalog ceiling.
"""

from __future__ import annotations

import pytest

from repro.archive import truth_index
from repro.core import SearchEngine
from repro.curator import (
    CuratorSession,
    SimulatedCurator,
    run_curator_loop,
)
from repro.experiments import (
    evaluate_engine,
    generate_workload,
    clean_archive_of_size,
    messy_archive_of_size,
)

from .conftest import BENCH_SEED, write_result

LOOP_DATASETS = 30


def _fixture():
    fs, __, archive = messy_archive_of_size(LOOP_DATASETS, seed=BENCH_SEED)
    oracle = {
        written: vt.canonical
        for (__, written), vt in truth_index(archive).items()
    }
    return fs, oracle


class TestCuratorLoop:
    def test_loop_converges(self, benchmark):
        def loop():
            fs, oracle = _fixture()
            session = CuratorSession(fs)
            curator = SimulatedCurator(
                actions_per_iteration=25, oracle=oracle
            )
            return run_curator_loop(session, curator, max_iterations=12)

        result = benchmark(loop)
        assert result.converged
        for before, after in zip(
            result.failure_counts, result.failure_counts[1:]
        ):
            assert after <= before

    @pytest.mark.parametrize("actions", [5, 15, 40])
    def test_actions_per_turn_tradeoff(self, benchmark, actions):
        def loop():
            fs, oracle = _fixture()
            session = CuratorSession(fs)
            curator = SimulatedCurator(
                actions_per_iteration=actions, oracle=oracle
            )
            return run_curator_loop(session, curator, max_iterations=40)

        result = benchmark(loop)
        assert result.failure_counts[-1] <= result.failure_counts[0]

    def test_convergence_and_quality_report(self, benchmark):
        fs, oracle = _fixture()
        session = CuratorSession(fs)
        curator = SimulatedCurator(actions_per_iteration=15, oracle=oracle)
        clean = clean_archive_of_size(LOOP_DATASETS, seed=BENCH_SEED)
        workload = generate_workload(clean, n_queries=15, seed=29)
        ndcg_per_iteration = []
        failure_per_iteration = []
        for __ in range(10):
            record = session.run()
            failure_per_iteration.append(record.failure_count)
            engine = SearchEngine(
                session.state.published,
                hierarchy=session.state.hierarchy,
            )
            summary = evaluate_engine(engine, workload, label="loop")
            ndcg_per_iteration.append(summary.ndcg)
            if record.validation.ok:
                break
            actions = curator.propose(session)
            if not actions:
                break
            session.improve(actions)
        lines = ["C1 — curator loop: failures and search quality by "
                 "iteration",
                 f"{'iter':>4s} {'failures':>9s} {'nDCG@10':>8s}"]
        for i, (failures, ndcg) in enumerate(
            zip(failure_per_iteration, ndcg_per_iteration), start=1
        ):
            lines.append(f"{i:4d} {failures:9d} {ndcg:8.3f}")
        write_result("c1_curator_loop.txt", "\n".join(lines))
        assert failure_per_iteration[-1] < failure_per_iteration[0]
        assert ndcg_per_iteration[-1] >= ndcg_per_iteration[0] - 0.02
        # Benchmark one full iteration (run + validate).
        benchmark(session.run)

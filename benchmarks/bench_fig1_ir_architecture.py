"""F1 — Figure "IR Architecture Adapted to Scientific Data Search".

The architecture's core promises: datasets are scanned *once* and
summarized into features; the catalog is a compact representation of the
archive; similarity search runs over the catalog, never the raw data.
Measured here: feature-extraction/scan throughput vs archive size, the
catalog-size:raw-size compression ratio, and store upsert/get costs for
both backends.
"""

from __future__ import annotations

import json

import pytest

from repro.archive import parse_file
from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.core import extract_feature
from repro.experiments import messy_archive_of_size
from repro.wrangling import ScanArchive, WranglingState

from .conftest import BENCH_SEED, write_result


def _catalog_size_bytes(catalog) -> int:
    total = 0
    for feature in catalog:
        total += len(feature.dataset_id) + len(feature.title) + 64
        total += len(json.dumps(feature.attributes))
        total += 88 * len(feature.variables)  # flat numeric fields
    return total


def _scan(fs):
    state = WranglingState(fs=fs)
    ScanArchive().execute(state)
    return state.working


class TestScanOnce:
    @pytest.mark.parametrize("n_datasets", [15, 60, 240])
    def test_scan_throughput_vs_size(self, benchmark, n_datasets):
        fs, __, ___ = messy_archive_of_size(n_datasets, seed=BENCH_SEED)
        catalog = benchmark(_scan, fs)
        assert len(catalog) >= n_datasets * 0.9

    def test_catalog_much_smaller_than_archive(self, benchmark,
                                               bench_fixture):
        fs, __, ___ = bench_fixture
        catalog = benchmark(_scan, fs)
        raw_bytes = sum(len(record.content) for record in fs)
        catalog_bytes = _catalog_size_bytes(catalog)
        ratio = raw_bytes / catalog_bytes
        write_result(
            "fig1_catalog_compression.txt",
            "F1 — catalog vs raw archive size\n"
            f"raw archive:  {raw_bytes:12,d} bytes\n"
            f"catalog est:  {catalog_bytes:12,d} bytes\n"
            f"compression:  {ratio:12.1f}x\n",
        )
        assert ratio > 5.0  # features are summaries, not copies

    def test_feature_extraction_single_dataset(self, benchmark,
                                               bench_fixture):
        fs, __, archive = bench_fixture
        record = fs.get(archive.datasets[0].path)
        dataset = parse_file(record.content, record.path)
        feature = benchmark(extract_feature, dataset)
        assert feature.row_count == dataset.table.row_count


class TestCatalogStores:
    def test_memory_upsert(self, benchmark, bench_raw_catalog):
        features = [f for f in bench_raw_catalog]

        def load():
            catalog = MemoryCatalog()
            for feature in features:
                catalog.upsert(feature)
            return catalog

        catalog = benchmark(load)
        assert len(catalog) == len(features)

    def test_sqlite_upsert(self, benchmark, bench_raw_catalog):
        features = [f for f in bench_raw_catalog]

        def load():
            catalog = SqliteCatalog()
            for feature in features:
                catalog.upsert(feature)
            return len(catalog)

        count = benchmark(load)
        assert count == len(features)

    def test_sqlite_get(self, benchmark, bench_raw_catalog):
        catalog = SqliteCatalog()
        for feature in bench_raw_catalog:
            catalog.upsert(feature)
        dataset_id = catalog.dataset_ids()[0]
        feature = benchmark(catalog.get, dataset_id)
        assert feature.dataset_id == dataset_id

"""F4 — Figure "The Metadata Wrangling Process" (both variants).

The composable chain: scan -> known transforms -> external metadata ->
discover -> perform discovered -> generate hierarchies -> publish.
Measured: cold-run vs re-run cost (the poster's "running & re-running
process" made cheap by content-hash skipping), per-component cost
breakdown, incremental cost of one changed file, and how much "mess is
left" after each stage.
"""

from __future__ import annotations

import pytest

from repro.archive import VOCABULARY, messy_archive_fixture
from repro.experiments import messy_archive_of_size, spec_for_size
from repro.wrangling import (
    PerformDiscoveredTransformations,
    PerformKnownTransformations,
    ScanArchive,
    DiscoverTransformations,
    WranglingState,
    default_chain,
)

from .conftest import BENCH_SEED, write_result


def _fresh_state(n_datasets: int = 60):
    fs, __, ___ = messy_archive_of_size(n_datasets, seed=BENCH_SEED)
    return WranglingState(fs=fs)


def _unresolved_fraction(state) -> float:
    total = resolved = 0
    for __, entry in state.working.iter_variables():
        total += 1
        if entry.name in VOCABULARY or entry.excluded:
            resolved += 1
    return 1.0 - resolved / total if total else 0.0


class TestColdVsRerun:
    def test_cold_run(self, benchmark):
        def cold():
            state = _fresh_state()
            chain = default_chain()
            chain.run(state)
            return state

        state = benchmark(cold)
        assert len(state.published) > 0

    def test_rerun_unchanged(self, benchmark):
        state = _fresh_state()
        chain = default_chain()
        chain.run(state)

        def rerun():
            return chain.run(state)

        report = benchmark(rerun)
        assert report.report_for("scan-archive").changes == 0

    def test_rerun_after_one_file_change(self, benchmark):
        state = _fresh_state()
        chain = default_chain()
        chain.run(state)
        victim = state.working.dataset_ids()[0]

        def touch_and_rerun():
            record = state.fs.get(victim)
            state.fs.put(victim, record.content + "\n")
            return chain.run(state)

        report = benchmark(touch_and_rerun)
        scan = report.report_for("scan-archive")
        assert scan.changes <= 2  # only the touched file re-parsed
        assert scan.items_skipped >= len(state.working) - 2

    def test_speedup_report(self, bench_fixture, benchmark):
        fs, __, ___ = bench_fixture
        state = WranglingState(fs=fs)
        chain = default_chain()
        cold = chain.run(state)
        warm = benchmark(chain.run, state)
        lines = [
            "F4 — wrangling process: cold run vs re-run",
            f"cold run: {cold.duration_seconds:8.3f}s "
            f"({cold.total_changes} changes)",
            f"re-run:   {warm.duration_seconds:8.3f}s "
            f"({warm.total_changes} changes)",
            "",
            "per-component (cold):",
            cold.summary(),
            "",
            "per-component (warm):",
            warm.summary(),
        ]
        write_result("fig4_cold_vs_rerun.txt", "\n".join(lines))
        assert warm.duration_seconds < cold.duration_seconds


class TestMessLeft:
    def test_mess_shrinks_through_stages(self, benchmark):
        """'The mess that's left' decreases monotonically through the
        chain's transformation stages.

        Known transformations run with *tables only* (no fuzzy matching),
        matching the figure's story: the translation table handles what
        it knows, and discovery attacks the misspellings that are left.
        """
        from repro.semantics import TermResolver

        def staged() -> list[tuple[str, float]]:
            state = _fresh_state(30)
            state.resolver = TermResolver(use_fuzzy=False)
            stages = []
            ScanArchive().execute(state)
            stages.append(("after-scan", _unresolved_fraction(state)))
            PerformKnownTransformations().execute(state)
            stages.append(("after-known", _unresolved_fraction(state)))
            DiscoverTransformations().execute(state)
            PerformDiscoveredTransformations().execute(state)
            stages.append(("after-discovered", _unresolved_fraction(state)))
            return stages

        stages = benchmark(staged)
        fractions = [fraction for __, fraction in stages]
        assert fractions[0] > fractions[1] > fractions[2]
        report = ["F4 — 'the mess that's left' by stage "
                  "(tables-only known transforms)"]
        report += [f"{name:18s} {fraction:6.3f}" for name, fraction in stages]
        write_result("fig4_mess_left.txt", "\n".join(report))


class TestComponentScaling:
    @pytest.mark.parametrize("n_datasets", [30, 120])
    def test_chain_cost_vs_size(self, benchmark, n_datasets):
        def cold():
            state = _fresh_state(n_datasets)
            return default_chain().run(state)

        report = benchmark(cold)
        assert report.total_changes > 0

"""Perf benchmark: concurrent query serving under closed-loop load.

Exercises the serving stack end to end on a large synthetic catalog:

* **exactness** — the service's pages (snapshot + shared cache +
  optional sharded scoring) must be identical (ids, scores, order) to a
  serial single-threaded engine over the same catalog, for every
  benchmark query,
* **scaling** — closed-loop client threads with think time replay a
  Zipf-weighted workload at increasing concurrency; the report captures
  QPS and p50/p95/p99 latency per client count,
* **churn** — the same load while a background writer keeps publishing
  atomic catalog batches and refreshing the service's snapshot;
  requests must keep completing (zero errors) and staleness stays
  bounded.

Interpretation note: this repository runs single-process under the GIL,
so the scaling phase measures the *closed-loop* model — each client
thinks between requests (``think_ms``), so added clients overlap their
think time and throughput rises until execution slots saturate.  That
is the latency-hiding concurrency a portal front door actually
provides; it is not a claim of parallel CPU speedup.

The scaling gate (full runs): QPS at 8 clients must exceed 2x QPS at 1
client.  Quick runs gate on exactness and zero dropped requests only.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_serve.py --quick  # CI

The full run writes ``BENCH_serve.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_perf_search import synthetic_catalog, synthetic_queries

from repro.core import SearchEngine
from repro.hierarchy import vocabulary_hierarchy
from repro.serve import SearchService, ServeConfig, run_load


def page(results):
    return [(r.dataset_id, r.score) for r in results]


def check_exactness(catalog, queries, hierarchy, limit, shard_workers):
    """Serial engine vs sharded engine vs the service: same pages."""
    serial = SearchEngine(catalog, hierarchy=hierarchy, cache=False)
    serial.build_indexes()
    expected = [page(serial.search(q, limit=limit)) for q in queries]

    mismatches = 0
    sharded = SearchEngine(
        catalog, hierarchy=hierarchy, cache=False,
        shard_workers=shard_workers, shard_threshold=1,
    )
    sharded.build_indexes()
    try:
        for query, want in zip(queries, expected):
            if page(sharded.search(query, limit=limit)) != want:
                mismatches += 1
                print(f"  SHARDED MISMATCH for {query.describe()!r}")
    finally:
        sharded.close()

    config = ServeConfig(
        max_concurrency=4, queue_depth=16,
        shard_workers=shard_workers, shard_threshold=1,
    )
    with SearchService(
        catalog, hierarchy=hierarchy, config=config
    ) as service:
        for query, want in zip(queries, expected):
            # Twice: a cache miss and then a cache hit must both agree.
            for _ in range(2):
                got = page(service.search(query, limit=limit).results)
                if got != want:
                    mismatches += 1
                    print(f"  SERVICE MISMATCH for {query.describe()!r}")
    return mismatches


def scaling_phase(catalog, queries, hierarchy, client_counts,
                  requests_per_client, think_seconds, limit, seed):
    """Closed-loop load at each client count; fresh service per run."""
    rows = {}
    for clients in client_counts:
        config = ServeConfig(
            max_concurrency=max(8, clients), queue_depth=4 * clients
        )
        with SearchService(
            catalog, hierarchy=hierarchy, config=config
        ) as service:
            report = run_load(
                service,
                queries,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed,
            )
        rows[str(clients)] = {
            "qps": report.qps,
            "completed": report.completed,
            "rejected": report.rejected,
            "errors": report.errors,
            "latency_p50_ms": report.latency_p50 * 1000.0,
            "latency_p95_ms": report.latency_p95 * 1000.0,
            "latency_p99_ms": report.latency_p99 * 1000.0,
            "latency_mean_ms": report.latency_mean * 1000.0,
        }
        print(
            f"  {clients:2d} clients: {report.qps:8.1f} qps  "
            f"p50 {report.latency_p50 * 1000:6.2f} ms  "
            f"p99 {report.latency_p99 * 1000:6.2f} ms  "
            f"rejected {report.rejected}"
        )
    return rows


def churn_phase(catalog, queries, hierarchy, clients, requests_per_client,
                think_seconds, limit, seed):
    """Serve under concurrent re-publishing: atomic batches + refresh."""
    config = ServeConfig(max_concurrency=max(8, clients),
                         queue_depth=4 * clients)
    ids = catalog.dataset_ids()[:16]
    stop = threading.Event()
    publishes = [0]

    with SearchService(
        catalog, hierarchy=hierarchy, config=config
    ) as service:

        def writer() -> None:
            # A wrangler in a loop: each round rewrites a batch of
            # datasets as ONE apply_batch (one version bump), then
            # tells the service to pick the new snapshot up.
            round_number = 0
            while not stop.is_set():
                round_number += 1
                batch = []
                for dataset_id in ids:
                    feature = catalog.get(dataset_id)
                    feature.row_count = 100 + round_number
                    batch.append(feature)
                catalog.apply_batch(batch, ())
                service.refresh()
                publishes[0] += 1
                time.sleep(0.005)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            report = run_load(
                service,
                queries,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed + 1,
                live_version=lambda: catalog.version,
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        refreshes = service.telemetry.counter("serve.snapshot_refreshes")

    return {
        "publishes": publishes[0],
        "completed": report.completed,
        "rejected": report.rejected,
        "errors": report.errors,
        "qps": report.qps,
        "latency_p99_ms": report.latency_p99 * 1000.0,
        "snapshot_versions_served": len(report.snapshot_versions),
        "max_staleness": report.max_staleness,
        "snapshot_refreshes": refreshes,
    }


def run(n_datasets, n_queries, client_counts, requests_per_client,
        think_ms, limit, shard_workers, seed) -> dict:
    hierarchy = vocabulary_hierarchy()
    print(f"generating {n_datasets} synthetic datasets ...")
    catalog = synthetic_catalog(n_datasets, seed=7)
    queries = synthetic_queries(n_queries, seed=31)
    think_seconds = think_ms / 1000.0

    print("checking service exactness against the serial engine ...")
    mismatches = check_exactness(
        catalog, queries, hierarchy, limit, shard_workers
    )
    if mismatches:
        print(f"exactness FAILED on {mismatches} pages")
        return {"exactness_ok": False, "mismatches": mismatches}

    print(f"scaling: closed loop, think {think_ms:.0f} ms ...")
    scaling = scaling_phase(
        catalog, queries, hierarchy, client_counts,
        requests_per_client, think_seconds, limit, seed,
    )

    print("churn: load under concurrent re-publishing ...")
    churn = churn_phase(
        catalog, queries, hierarchy, max(client_counts),
        requests_per_client, think_seconds, limit, seed,
    )
    print(
        f"  {churn['publishes']} publishes, "
        f"{churn['snapshot_versions_served']} snapshot versions served, "
        f"max staleness {churn['max_staleness']}, "
        f"errors {churn['errors']}"
    )

    low = str(min(client_counts))
    high = str(max(client_counts))
    total_rejected = sum(row["rejected"] for row in scaling.values())
    total_errors = sum(row["errors"] for row in scaling.values())
    return {
        "datasets": n_datasets,
        "queries": len(queries),
        "limit": limit,
        "think_ms": think_ms,
        "requests_per_client": requests_per_client,
        "shard_workers": shard_workers,
        "exactness_ok": True,
        "scaling": scaling,
        "churn": churn,
        "qps_low": scaling[low]["qps"],
        "qps_high": scaling[high]["qps"],
        "scaling_factor": (
            scaling[high]["qps"] / scaling[low]["qps"]
            if scaling[low]["qps"] else float("inf")
        ),
        "latency_p50_ms": scaling[high]["latency_p50_ms"],
        "latency_p95_ms": scaling[high]["latency_p95_ms"],
        "latency_p99_ms": scaling[high]["latency_p99_ms"],
        "max_staleness": churn["max_staleness"],
        "rejected": total_rejected + churn["rejected"],
        "errors": total_errors + churn["errors"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small catalog, exactness-focused smoke run (CI)",
    )
    parser.add_argument("--datasets", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client per run")
    parser.add_argument("--think-ms", type=float, default=None)
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument("--shard-workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", default=None,
        help="result JSON path (default: BENCH_serve.json at the repo "
        "root for full runs, BENCH_serve_quick.json for --quick)",
    )
    args = parser.parse_args(argv)

    n_datasets = args.datasets or (300 if args.quick else 5000)
    n_queries = args.queries or (4 if args.quick else 8)
    requests = args.requests or (10 if args.quick else 50)
    think_ms = args.think_ms if args.think_ms is not None else (
        2.0 if args.quick else 5.0
    )
    client_counts = [1, 2] if args.quick else [1, 2, 4, 8]

    result = run(
        n_datasets, n_queries, client_counts, requests,
        think_ms, args.limit, args.shard_workers, args.seed,
    )
    result["quick"] = args.quick
    result["clients"] = client_counts

    output = args.output or str(
        REPO_ROOT
        / ("BENCH_serve_quick.json" if args.quick else "BENCH_serve.json")
    )
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {output}")

    if not result["exactness_ok"]:
        return 1
    if result["errors"]:
        print(f"{result['errors']} requests errored")
        return 1
    if args.quick:
        # Tiny runs are too noisy to gate on throughput; gate on
        # correctness and on nothing having been dropped.
        if result["rejected"]:
            print(f"{result['rejected']} requests rejected in quick mode")
            return 1
        return 0
    print(
        f"scaling {result['qps_low']:.1f} -> {result['qps_high']:.1f} qps "
        f"({result['scaling_factor']:.2f}x), "
        f"p99 {result['latency_p99_ms']:.2f} ms, "
        f"max staleness {result['max_staleness']}"
    )
    if result["scaling_factor"] <= 2.0:
        print("scaling below acceptance floor (8 clients > 2x 1 client)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Perf benchmark: concurrent query serving under closed-loop load.

Exercises the serving stack end to end on a large synthetic catalog:

* **exactness** — the service's pages (snapshot + shared cache +
  optional sharded scoring + the process-pool scorer) must be identical
  (ids, scores, order) to a serial single-threaded engine over the same
  catalog, for every benchmark query,
* **scaling** — closed-loop client threads with think time replay a
  Zipf-weighted workload at increasing concurrency; the report captures
  QPS and p50/p95/p99 latency per client count,
* **http scaling** — the same closed loop over real sockets: each
  client owns a kept-alive connection to a
  :class:`~repro.serve.http.SearchHTTPServer` and the measured path
  includes the qparser, JSON encoding and the socket round trip,
* **pool comparison** — socket load at the top client count against a
  thread-sharded service vs a process-pool service (DESIGN note 16),
  recording both QPS figures side by side,
* **churn** — in-process and socket load while a background writer
  keeps publishing atomic catalog batches and refreshing the service's
  snapshot through the stamped-delta O(changed) path; requests must
  keep completing (zero errors), versions never regress, and staleness
  stays <= 1,
* **refresh cost** — refresh wall-clock versus publish-delta size
  (1, 10, 1% and 10% of the catalog), delta path against the full
  rebuild, plus first-query-after-swap latency with warming on vs off;
  the delta page must match a cold engine exactly, and full runs gate
  the O(changed) claim (a 1-dataset delta refresh must undercut the
  full rebuild, and cost must grow with delta size),
* **observability overhead** — the same socket workload against a
  telemetry-off service vs a telemetry-on one (request tracing, span
  stamping, SLO windows, flight recorder, plus a ``/metrics`` scrape),
  interleaved runs and medians; the layer must cost <= 5% QPS, the
  same gate the ingest benchmark holds telemetry to.

Interpretation notes: the in-process phases run single-process under
the GIL, so the scaling phase measures the *closed-loop* model — each
client thinks between requests (``think_ms``), so added clients overlap
their think time and throughput rises until execution slots saturate.
That is the latency-hiding concurrency a portal front door actually
provides; it is not a claim of parallel CPU speedup.  The pool
comparison records ``cpu_count`` alongside its numbers: on a single
hardware thread the process pool pays IPC for no parallel gain, so its
QPS is expected to trail the thread ceiling there, and the comparison
is reported rather than gated unless multiple CPUs are present.

Gates (full runs): the in-process scaling factor (QPS at 8 clients >
2x QPS at 1 client), zero errors everywhere, zero HTTP 5xx, churn
staleness <= 1, zero version regressions, and observability overhead
<= 5%.  Quick runs gate on exactness and on nothing having been
dropped (overhead is recorded, not gated — tiny runs are too noisy).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_serve.py --quick  # CI

The full run writes ``BENCH_serve.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_perf_search import (
    VARIABLE_POOL,
    synthetic_catalog,
    synthetic_queries,
)

from repro.core import SearchEngine
from repro.hierarchy import vocabulary_hierarchy
from repro.serve import (
    SearchHTTPServer,
    SearchService,
    ServeConfig,
    run_load,
    run_load_http,
)
from repro.wrangling.state import PublishDelta


def publish_round(catalog, ids, round_number):
    """One wrangler publish: rewrite ``ids`` as ONE atomic batch (one
    version bump) and return the stamped delta that proves it."""
    batch = []
    for dataset_id in ids:
        feature = catalog.get(dataset_id)
        feature.row_count = 100 + round_number
        batch.append(feature)
    base = catalog.version
    catalog.apply_batch(batch, ())
    return PublishDelta(
        upserted=list(ids),
        base_version=base,
        published_version=catalog.version,
    )


def page(results):
    return [(r.dataset_id, r.score) for r in results]


def synthetic_query_texts(n_queries: int, seed: int) -> list[str]:
    """qparser texts shaped like :func:`synthetic_queries` (socket mode
    sends query *text*, so the measured path includes the parser)."""
    rng = random.Random(seed)
    texts = []
    for _ in range(n_queries):
        name = rng.choice(VARIABLE_POOL)
        lat = rng.uniform(43.0, 48.0)
        lon = rng.uniform(-126.0, -122.0)
        texts.append(
            f"near {lat:.3f}, {lon:.3f} within 150 km with {name}"
        )
    return texts


def check_exactness(catalog, queries, hierarchy, limit, shard_workers):
    """Serial engine vs sharded engine vs the service: same pages."""
    serial = SearchEngine(catalog, hierarchy=hierarchy, cache=False)
    serial.build_indexes()
    expected = [page(serial.search(q, limit=limit)) for q in queries]

    mismatches = 0
    sharded = SearchEngine(
        catalog, hierarchy=hierarchy, cache=False,
        shard_workers=shard_workers, shard_threshold=1,
    )
    sharded.build_indexes()
    try:
        for query, want in zip(queries, expected):
            if page(sharded.search(query, limit=limit)) != want:
                mismatches += 1
                print(f"  SHARDED MISMATCH for {query.describe()!r}")
    finally:
        sharded.close()

    config = ServeConfig(
        max_concurrency=4, queue_depth=16,
        shard_workers=shard_workers, shard_threshold=1,
    )
    with SearchService(
        catalog, hierarchy=hierarchy, config=config
    ) as service:
        for query, want in zip(queries, expected):
            # Twice: a cache miss and then a cache hit must both agree.
            for _ in range(2):
                got = page(service.search(query, limit=limit).results)
                if got != want:
                    mismatches += 1
                    print(f"  SERVICE MISMATCH for {query.describe()!r}")

    # The process-pool rung (DESIGN note 16): worker processes over the
    # shipped snapshot must reproduce the serial page exactly too.
    pooled_config = ServeConfig(
        max_concurrency=4, queue_depth=16,
        score_workers=2, score_min_rows=1,
    )
    with SearchService(
        catalog, hierarchy=hierarchy, config=pooled_config
    ) as service:
        for query, want in zip(queries, expected):
            got = page(service.search(query, limit=limit).results)
            if got != want:
                mismatches += 1
                print(f"  POOL MISMATCH for {query.describe()!r}")
    return mismatches


def scaling_phase(catalog, queries, hierarchy, client_counts,
                  requests_per_client, think_seconds, limit, seed):
    """Closed-loop load at each client count; fresh service per run."""
    rows = {}
    for clients in client_counts:
        config = ServeConfig(
            max_concurrency=max(8, clients), queue_depth=4 * clients
        )
        with SearchService(
            catalog, hierarchy=hierarchy, config=config
        ) as service:
            report = run_load(
                service,
                queries,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed,
            )
        rows[str(clients)] = {
            "qps": report.qps,
            "completed": report.completed,
            "rejected": report.rejected,
            "errors": report.errors,
            "latency_p50_ms": report.latency_p50 * 1000.0,
            "latency_p95_ms": report.latency_p95 * 1000.0,
            "latency_p99_ms": report.latency_p99 * 1000.0,
            "latency_mean_ms": report.latency_mean * 1000.0,
        }
        print(
            f"  {clients:2d} clients: {report.qps:8.1f} qps  "
            f"p50 {report.latency_p50 * 1000:6.2f} ms  "
            f"p99 {report.latency_p99 * 1000:6.2f} ms  "
            f"rejected {report.rejected}"
        )
    return rows


def churn_phase(catalog, queries, hierarchy, clients, requests_per_client,
                think_seconds, limit, seed):
    """Serve under concurrent re-publishing: atomic batches + refresh."""
    config = ServeConfig(max_concurrency=max(8, clients),
                         queue_depth=4 * clients)
    ids = catalog.dataset_ids()[:16]
    stop = threading.Event()
    publishes = [0]

    with SearchService(
        catalog, hierarchy=hierarchy, config=config
    ) as service:

        def writer() -> None:
            # A wrangler in a loop: each round rewrites a batch of
            # datasets as ONE apply_batch (one version bump), then
            # hands the service the stamped delta so the refresh is
            # O(changed) instead of a full rebuild.
            round_number = 0
            while not stop.is_set():
                round_number += 1
                delta = publish_round(catalog, ids, round_number)
                service.refresh(delta=delta)
                publishes[0] += 1
                time.sleep(0.005)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            report = run_load(
                service,
                queries,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed + 1,
                live_version=lambda: catalog.version,
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        refreshes = service.telemetry.counter("serve.snapshot_refreshes")
        delta_applied = service.telemetry.counter("refresh.delta_applied")
        full_rebuilds = service.telemetry.counter("refresh.full_rebuilds")

    return {
        "publishes": publishes[0],
        "refresh_delta_applied": delta_applied,
        "refresh_full_rebuilds": full_rebuilds,
        "completed": report.completed,
        "rejected": report.rejected,
        "errors": report.errors,
        "qps": report.qps,
        "latency_p99_ms": report.latency_p99 * 1000.0,
        "snapshot_versions_served": len(report.snapshot_versions),
        "max_staleness": report.max_staleness,
        "snapshot_refreshes": refreshes,
    }


def refresh_cost_phase(catalog, queries, hierarchy, limit, rounds=5):
    """Refresh wall-clock vs publish-delta size, delta path vs full.

    For each delta size, three services are measured over ``rounds``
    publishes each: the full-rebuild path (delta withheld), the pure
    stamped-delta path (warming off, so the timing is the O(changed)
    rebuild alone), and the delta path with warming on (the production
    configuration — its refresh additionally pre-executes the hottest
    queries *before* the swap, which is the cost that buys the warm
    first-query latency).  ``first_query_*_ms`` is the latency of the
    first request admitted after the swap — cold pays the scan, warm
    hits the pre-executed cache entry.  The delta-refreshed page is
    checked against a cold serial engine after the last round
    (``page_mismatches`` gates).
    """
    import statistics

    n = len(catalog)
    sizes = sorted({1, 10, max(1, n // 100), max(1, n // 10)})
    ids_all = catalog.dataset_ids()
    hot = queries[0]
    rows = {}
    round_number = [10_000]  # distinct row_counts from the churn phases

    def measure(service, ids, use_delta):
        refresh_times, first_query_times = [], []
        for _ in range(rounds):
            round_number[0] += 1
            delta = publish_round(catalog, ids, round_number[0])
            started = time.perf_counter()
            service.refresh(delta=delta if use_delta else None)
            refresh_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            service.search(hot, limit=limit)
            first_query_times.append(time.perf_counter() - started)
        return (
            statistics.median(refresh_times) * 1000.0,
            statistics.median(first_query_times) * 1000.0,
        )

    mismatches = 0
    cold_config = ServeConfig(
        max_concurrency=4, queue_depth=16, warm_queries=0
    )
    warm_config = ServeConfig(max_concurrency=4, queue_depth=16)
    for size in sizes:
        ids = ids_all[:size]
        with SearchService(
            catalog, hierarchy=hierarchy, config=cold_config
        ) as service:
            for query in queries:
                service.search(query, limit=limit)
            full_ms, first_cold_ms = measure(service, ids, use_delta=False)
        with SearchService(
            catalog, hierarchy=hierarchy, config=cold_config
        ) as service:
            for query in queries:
                service.search(query, limit=limit)
            delta_ms, _ = measure(service, ids, use_delta=True)
            applied = service.telemetry.counter("refresh.delta_applied")
            refrozen = service.telemetry.counter("columnar.rows_refrozen")
            reused = service.telemetry.counter("columnar.rows_reused")
        with SearchService(
            catalog, hierarchy=hierarchy, config=warm_config
        ) as service:
            for query in queries:
                service.search(query, limit=limit)  # seed the hotness ring
            warm_refresh_ms, first_warm_ms = measure(
                service, ids, use_delta=True
            )
            # The O(changed) page must still be the exact page.
            serial = SearchEngine(catalog, hierarchy=hierarchy, cache=False)
            serial.build_indexes()
            for query in queries:
                want = page(serial.search(query, limit=limit))
                got = page(service.search(query, limit=limit).results)
                if got != want:
                    mismatches += 1
                    print(f"  REFRESH MISMATCH for {query.describe()!r}")
        rows[str(size)] = {
            "full_refresh_ms": full_ms,
            "delta_refresh_ms": delta_ms,
            "warm_refresh_ms": warm_refresh_ms,
            "first_query_cold_ms": first_cold_ms,
            "first_query_warm_ms": first_warm_ms,
            "delta_applied": applied,
            "rows_refrozen": refrozen,
            "rows_reused": reused,
        }
        print(
            f"  delta {size:4d}: refresh {delta_ms:7.2f} ms "
            f"(full {full_ms:7.2f} ms, warmed {warm_refresh_ms:7.2f} ms)  "
            f"first query warm {first_warm_ms:6.2f} ms / "
            f"cold {first_cold_ms:6.2f} ms"
        )
    return {"sizes": sizes, "rounds": rounds,
            "page_mismatches": mismatches, "rows": rows}


def _http_row(report) -> dict:
    return {
        "qps": report.qps,
        "completed": report.completed,
        "rejected": report.rejected,
        "errors": report.errors,
        "latency_p50_ms": report.latency_p50 * 1000.0,
        "latency_p95_ms": report.latency_p95 * 1000.0,
        "latency_p99_ms": report.latency_p99 * 1000.0,
        "latency_mean_ms": report.latency_mean * 1000.0,
        "status_counts": report.status_counts,
        "version_regressions": report.version_regressions,
    }


def http_scaling_phase(catalog, texts, hierarchy, client_counts,
                       requests_per_client, think_seconds, limit, seed,
                       score_workers=None):
    """Closed-loop load over real sockets at each client count."""
    rows = {}
    for clients in client_counts:
        config = ServeConfig(
            max_concurrency=max(8, clients), queue_depth=4 * clients,
            score_workers=score_workers,
            score_min_rows=1 if score_workers else 256,
        )
        service = SearchService(catalog, hierarchy=hierarchy, config=config)
        with SearchHTTPServer(service, port=0).start() as server:
            report = run_load_http(
                server.url,
                texts,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed,
            )
        rows[str(clients)] = _http_row(report)
        print(
            f"  {clients:2d} clients: {report.qps:8.1f} qps  "
            f"p50 {report.latency_p50 * 1000:6.2f} ms  "
            f"p99 {report.latency_p99 * 1000:6.2f} ms  "
            f"statuses {report.status_counts}"
        )
    return rows


def pool_comparison_phase(catalog, texts, hierarchy, clients,
                          requests_per_client, think_seconds, limit, seed):
    """Thread ceiling vs process pool: socket QPS at one client count.

    Recorded, not gated, on single-CPU hosts: without a second hardware
    thread the pool pays snapshot-shipping IPC for no parallel gain.
    """
    comparison = {"clients": clients, "cpu_count": os.cpu_count() or 1}
    for label, shard_workers, score_workers in (
        ("threads", 2, None),
        ("procpool", None, 2),
    ):
        config = ServeConfig(
            max_concurrency=max(8, clients), queue_depth=4 * clients,
            shard_workers=shard_workers, shard_threshold=1,
            score_workers=score_workers,
            score_min_rows=1 if score_workers else 256,
        )
        service = SearchService(catalog, hierarchy=hierarchy, config=config)
        with SearchHTTPServer(service, port=0).start() as server:
            report = run_load_http(
                server.url,
                texts,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed + 2,
            )
        comparison[label] = _http_row(report)
        print(
            f"  {label:8s}: {report.qps:8.1f} qps  "
            f"p99 {report.latency_p99 * 1000:6.2f} ms  "
            f"errors {report.errors}"
        )
    return comparison


def http_churn_phase(catalog, texts, hierarchy, clients,
                     requests_per_client, think_seconds, limit, seed):
    """Socket load under concurrent re-publishing.

    The wire-level staleness contract: versions never regress within a
    client, and a page never lags the live version (sampled before the
    request) by more than one publish.
    """
    config = ServeConfig(
        max_concurrency=max(8, clients), queue_depth=4 * clients
    )
    ids = catalog.dataset_ids()[:16]
    stop = threading.Event()
    publishes = [0]
    service = SearchService(catalog, hierarchy=hierarchy, config=config)
    with SearchHTTPServer(service, port=0).start() as server:

        def writer() -> None:
            round_number = 0
            while not stop.is_set():
                round_number += 1
                delta = publish_round(catalog, ids, round_number)
                service.refresh(delta=delta)
                publishes[0] += 1
                time.sleep(0.005)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            report = run_load_http(
                server.url,
                texts,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed + 3,
                live_version=lambda: catalog.version,
            )
        finally:
            stop.set()
            thread.join(timeout=10.0)
    row = _http_row(report)
    row["publishes"] = publishes[0]
    row["snapshot_versions_served"] = len(report.snapshot_versions)
    row["max_staleness"] = report.max_staleness
    row["refresh_delta_applied"] = service.telemetry.counter(
        "refresh.delta_applied"
    )
    row["refresh_full_rebuilds"] = service.telemetry.counter(
        "refresh.full_rebuilds"
    )
    return row


def observability_overhead_phase(catalog, texts, hierarchy, clients,
                                 requests_per_client, think_seconds,
                                 limit, seed, repeats=3):
    """Tracing+metrics on vs off over sockets: what the layer costs.

    Mirrors the ingest benchmark's ``measure_telemetry_overhead``:
    interleaved off/on runs (so drift hits both equally), medians
    compared.  The "on" side is the full observability stack a real
    deployment runs — enabled telemetry (request spans, id stamping,
    counters, histograms), SLO windows, flight recorder — plus one
    ``/metrics`` exposition scrape per run.
    """
    import statistics
    import urllib.request

    from repro.obs import Telemetry

    def one_run(enabled: bool) -> float:
        config = ServeConfig(
            max_concurrency=max(8, clients), queue_depth=4 * clients
        )
        service = SearchService(
            catalog, hierarchy=hierarchy, config=config,
            telemetry=Telemetry(enabled=enabled),
        )
        with SearchHTTPServer(service, port=0).start() as server:
            report = run_load_http(
                server.url,
                texts,
                clients=clients,
                requests_per_client=requests_per_client,
                think_seconds=think_seconds,
                limit=limit,
                seed=seed + 4,
            )
            if enabled:
                # The scrape is part of the cost being measured.
                with urllib.request.urlopen(
                    server.url + "/metrics"
                ) as fh:
                    fh.read()
        if report.errors:
            print(f"  OVERHEAD RUN ERRORS: {report.errors}")
        return report.qps

    base: list[float] = []
    instrumented: list[float] = []
    for _ in range(repeats):
        base.append(one_run(False))
        instrumented.append(one_run(True))
    qps_off = statistics.median(base)
    qps_on = statistics.median(instrumented)
    overhead = (qps_off - qps_on) / qps_off if qps_off else 0.0
    print(
        f"  telemetry off {qps_off:8.1f} qps, on {qps_on:8.1f} qps "
        f"({overhead:+.1%} overhead, {repeats} interleaved runs)"
    )
    return {
        "clients": clients,
        "repeats": repeats,
        "qps_off": qps_off,
        "qps_on": qps_on,
        "overhead": overhead,
    }


def run(n_datasets, n_queries, client_counts, requests_per_client,
        think_ms, limit, shard_workers, seed) -> dict:
    hierarchy = vocabulary_hierarchy()
    print(f"generating {n_datasets} synthetic datasets ...")
    catalog = synthetic_catalog(n_datasets, seed=7)
    queries = synthetic_queries(n_queries, seed=31)
    think_seconds = think_ms / 1000.0

    print("checking service exactness against the serial engine ...")
    mismatches = check_exactness(
        catalog, queries, hierarchy, limit, shard_workers
    )
    if mismatches:
        print(f"exactness FAILED on {mismatches} pages")
        return {"exactness_ok": False, "mismatches": mismatches}

    print(f"scaling: closed loop, think {think_ms:.0f} ms ...")
    scaling = scaling_phase(
        catalog, queries, hierarchy, client_counts,
        requests_per_client, think_seconds, limit, seed,
    )

    texts = synthetic_query_texts(len(queries), seed=31)

    print(f"http scaling: sockets, think {think_ms:.0f} ms ...")
    http_scaling = http_scaling_phase(
        catalog, texts, hierarchy, client_counts,
        requests_per_client, think_seconds, limit, seed,
    )

    print("pool comparison: thread ceiling vs process pool (think 0) ...")
    pool_comparison = pool_comparison_phase(
        catalog, texts, hierarchy, max(client_counts),
        requests_per_client, 0.0, limit, seed,
    )

    print("churn: load under concurrent re-publishing ...")
    churn = churn_phase(
        catalog, queries, hierarchy, max(client_counts),
        requests_per_client, think_seconds, limit, seed,
    )
    print(
        f"  {churn['publishes']} publishes, "
        f"{churn['snapshot_versions_served']} snapshot versions served, "
        f"max staleness {churn['max_staleness']}, "
        f"errors {churn['errors']}"
    )

    print("refresh cost: delta path vs full rebuild, by delta size ...")
    refresh_cost = refresh_cost_phase(catalog, queries, hierarchy, limit)
    if refresh_cost["page_mismatches"]:
        print(
            f"refresh exactness FAILED on "
            f"{refresh_cost['page_mismatches']} pages"
        )
        return {
            "exactness_ok": False,
            "mismatches": refresh_cost["page_mismatches"],
        }

    print("observability overhead: tracing+metrics on vs off ...")
    observability = observability_overhead_phase(
        catalog, texts, hierarchy, max(client_counts),
        requests_per_client, think_seconds, limit, seed,
    )

    print("http churn: the same, over sockets ...")
    http_churn = http_churn_phase(
        catalog, texts, hierarchy, max(client_counts),
        requests_per_client, think_seconds, limit, seed,
    )
    print(
        f"  {http_churn['publishes']} publishes, "
        f"{http_churn['snapshot_versions_served']} versions served, "
        f"max staleness {http_churn['max_staleness']}, "
        f"regressions {http_churn['version_regressions']}, "
        f"statuses {http_churn['status_counts']}"
    )

    low = str(min(client_counts))
    high = str(max(client_counts))
    total_rejected = sum(row["rejected"] for row in scaling.values())
    total_errors = sum(row["errors"] for row in scaling.values())
    http_rows = list(http_scaling.values()) + [
        pool_comparison["threads"], pool_comparison["procpool"], http_churn,
    ]
    http_errors = sum(row["errors"] for row in http_rows)
    http_5xx = sum(
        count
        for row in http_rows
        for status, count in row["status_counts"].items()
        if status.startswith("5")
    )
    http_regressions = sum(
        row["version_regressions"] for row in http_rows
    )
    return {
        "datasets": n_datasets,
        "queries": len(queries),
        "limit": limit,
        "think_ms": think_ms,
        "requests_per_client": requests_per_client,
        "shard_workers": shard_workers,
        "exactness_ok": True,
        "scaling": scaling,
        "http_scaling": http_scaling,
        "pool_comparison": pool_comparison,
        "churn": churn,
        "http_churn": http_churn,
        "refresh_cost": refresh_cost,
        "observability_overhead": observability,
        "qps_low": scaling[low]["qps"],
        "qps_high": scaling[high]["qps"],
        "scaling_factor": (
            scaling[high]["qps"] / scaling[low]["qps"]
            if scaling[low]["qps"] else float("inf")
        ),
        "http_qps_low": http_scaling[low]["qps"],
        "http_qps_high": http_scaling[high]["qps"],
        "latency_p50_ms": scaling[high]["latency_p50_ms"],
        "latency_p95_ms": scaling[high]["latency_p95_ms"],
        "latency_p99_ms": scaling[high]["latency_p99_ms"],
        "http_latency_p50_ms": http_scaling[high]["latency_p50_ms"],
        "http_latency_p95_ms": http_scaling[high]["latency_p95_ms"],
        "http_latency_p99_ms": http_scaling[high]["latency_p99_ms"],
        # The in-process driver samples the live version *after* each
        # response (an upper bound that can over-read during a publish);
        # the socket driver samples *before* the request, which is the
        # metric the <= 1 contract is stated — and gated — on.
        "max_staleness": churn["max_staleness"],
        "http_max_staleness": http_churn["max_staleness"],
        "version_regressions": http_regressions,
        "http_5xx": http_5xx,
        "rejected": total_rejected + churn["rejected"],
        "errors": total_errors + churn["errors"] + http_errors,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small catalog, exactness-focused smoke run (CI)",
    )
    parser.add_argument("--datasets", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client per run")
    parser.add_argument("--think-ms", type=float, default=None)
    parser.add_argument("--limit", type=int, default=10)
    parser.add_argument("--shard-workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", default=None,
        help="result JSON path (default: BENCH_serve.json at the repo "
        "root for full runs, BENCH_serve_quick.json for --quick)",
    )
    args = parser.parse_args(argv)

    n_datasets = args.datasets or (300 if args.quick else 5000)
    n_queries = args.queries or (4 if args.quick else 8)
    requests = args.requests or (10 if args.quick else 50)
    think_ms = args.think_ms if args.think_ms is not None else (
        2.0 if args.quick else 5.0
    )
    client_counts = [1, 2] if args.quick else [1, 2, 4, 8]

    result = run(
        n_datasets, n_queries, client_counts, requests,
        think_ms, args.limit, args.shard_workers, args.seed,
    )
    result["quick"] = args.quick
    result["clients"] = client_counts

    output = args.output or str(
        REPO_ROOT
        / ("BENCH_serve_quick.json" if args.quick else "BENCH_serve.json")
    )
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {output}")

    if not result["exactness_ok"]:
        return 1
    if result["errors"]:
        print(f"{result['errors']} requests errored")
        return 1
    if result["http_5xx"]:
        print(f"{result['http_5xx']} HTTP 5xx responses on the wire")
        return 1
    if result["version_regressions"]:
        print(
            f"{result['version_regressions']} snapshot version regressions"
        )
        return 1
    if result["http_max_staleness"] > 1:
        print(
            f"http staleness {result['http_max_staleness']} exceeds "
            "the <= 1 bound"
        )
        return 1
    refresh_cost = result["refresh_cost"]
    cost_rows = refresh_cost["rows"]
    expected_applied = refresh_cost["rounds"]
    for size, row in cost_rows.items():
        # The delta path must actually have engaged — a silent fall
        # back to full rebuilds would make the timings meaningless.
        if row["delta_applied"] != expected_applied:
            print(
                f"refresh-cost delta path engaged only "
                f"{row['delta_applied']}/{expected_applied} times "
                f"at size {size}"
            )
            return 1
    if args.quick:
        # Tiny runs are too noisy to gate on throughput; gate on
        # correctness and on nothing having been dropped.
        if result["rejected"]:
            print(f"{result['rejected']} requests rejected in quick mode")
            return 1
        return 0
    comparison = result["pool_comparison"]
    print(
        f"scaling {result['qps_low']:.1f} -> {result['qps_high']:.1f} qps "
        f"({result['scaling_factor']:.2f}x), "
        f"p99 {result['latency_p99_ms']:.2f} ms; "
        f"http {result['http_qps_low']:.1f} -> "
        f"{result['http_qps_high']:.1f} qps, "
        f"p99 {result['http_latency_p99_ms']:.2f} ms; "
        f"threads {comparison['threads']['qps']:.1f} vs "
        f"procpool {comparison['procpool']['qps']:.1f} qps "
        f"({comparison['cpu_count']} cpus), "
        f"http max staleness {result['http_max_staleness']}"
    )
    if result["scaling_factor"] <= 2.0:
        print("scaling below acceptance floor (8 clients > 2x 1 client)")
        return 1
    sizes = refresh_cost["sizes"]
    small = cost_rows[str(sizes[0])]
    large = cost_rows[str(sizes[-1])]
    print(
        f"refresh cost: delta {small['delta_refresh_ms']:.2f} ms "
        f"@ {sizes[0]} -> {large['delta_refresh_ms']:.2f} ms "
        f"@ {sizes[-1]} (full rebuild "
        f"{small['full_refresh_ms']:.2f} ms)"
    )
    if small["delta_refresh_ms"] > 0.5 * small["full_refresh_ms"]:
        print(
            "a 1-dataset delta refresh failed to undercut the full "
            "rebuild by 2x — the O(changed) path is not paying off"
        )
        return 1
    if small["delta_refresh_ms"] > large["delta_refresh_ms"]:
        print(
            "delta refresh cost did not grow with delta size — "
            "O(changed) scaling not observed"
        )
        return 1
    observability = result["observability_overhead"]
    if observability["overhead"] > 0.05:
        print(
            f"observability overhead {observability['overhead']:.1%} "
            "exceeds the 5% gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

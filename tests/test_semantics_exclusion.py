"""Unit tests for repro.semantics.exclusion."""

import pytest

from repro.semantics import ExclusionPolicy


@pytest.fixture()
def policy():
    return ExclusionPolicy()


class TestDefaults:
    @pytest.mark.parametrize(
        "name",
        ["qa_level", "qc_flag", "battery_voltage", "sample_number",
         "instrument_tilt", "QA_status", "sensor_qc_1"],
    )
    def test_auxiliary_names(self, policy, name):
        assert policy.is_auxiliary(name)

    @pytest.mark.parametrize(
        "name",
        ["salinity", "water_temperature", "turbidity", "nitrate",
         "qanat_flow"],  # 'qanat' must not trip the qa pattern
    )
    def test_environmental_names(self, policy, name):
        assert not policy.is_auxiliary(name)

    def test_vocabulary_flag_wins_for_known_names(self, policy):
        # 'ph' has no pattern but is environmental by vocabulary.
        assert not policy.is_auxiliary("ph")
        assert policy.is_auxiliary("qa_level")


class TestCustomization:
    def test_add_pattern(self, policy):
        assert not policy.is_auxiliary("internal_diagnostic")
        policy.add_pattern("diagnostic")
        assert policy.is_auxiliary("internal_diagnostic")

    def test_add_bad_pattern_raises(self, policy):
        import re

        with pytest.raises(re.error):
            policy.add_pattern("([unclosed")

    def test_without_vocabulary(self):
        policy = ExclusionPolicy(use_vocabulary=False)
        # Pattern still catches it even without vocabulary knowledge.
        assert policy.is_auxiliary("qa_level")

    def test_partition(self, policy):
        searchable, auxiliary = policy.partition(
            ["salinity", "qa_level", "depth", "qc_flag"]
        )
        assert searchable == ["salinity", "depth"]
        assert auxiliary == ["qa_level", "qc_flag"]

"""Unit tests for repro.text.distance."""

import pytest

from repro.text import (
    damerau_levenshtein,
    damerau_similarity,
    dice_coefficient,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    ngram_jaccard,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("air_temperature", "air_temperatrue", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein(
            "azced", "abcdef"
        )

    def test_triangle_inequality(self):
        a, b, c = "salinity", "salinty", "salt"
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestDamerau:
    def test_transposition_costs_one(self):
        # The paper's canonical misspelling.
        assert damerau_levenshtein("air_temperature", "air_temperatrue") == 1
        assert levenshtein("air_temperature", "air_temperatrue") == 2

    def test_equal_strings(self):
        assert damerau_levenshtein("abc", "abc") == 0

    def test_never_exceeds_levenshtein(self):
        pairs = [("abcd", "acbd"), ("water", "wtaer"), ("temp", "tmep")]
        for a, b in pairs:
            assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    def test_empty_cases(self):
        assert damerau_levenshtein("", "abc") == 3
        assert damerau_levenshtein("abc", "") == 3


class TestSimilarities:
    def test_identical_is_one(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert damerau_similarity("abc", "abc") == 1.0

    def test_empty_pair_is_one(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_disjoint_is_low(self):
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_in_unit_range(self):
        for a, b in [("air", "temp"), ("sal", "salinity"), ("x", "")]:
            assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaro:
    def test_identical(self):
        assert jaro("salinity", "salinity") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_known_value(self):
        # Classic Winkler example.
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_shared_prefix(self):
        base = jaro("air_temp", "air_tmep")
        assert jaro_winkler("air_temp", "air_tmep") >= base

    def test_winkler_identical(self):
        assert jaro_winkler("same", "same") == 1.0

    def test_winkler_bad_scale_raises(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_winkler_in_unit_range(self):
        for a, b in [("temperature", "temperatrue"), ("a", "ab"), ("x", "y")]:
            assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestNgramMeasures:
    def test_jaccard_identical(self):
        assert ngram_jaccard("salinity", "salinity") == 1.0

    def test_jaccard_disjoint(self):
        assert ngram_jaccard("aaaa", "bbbb") == 0.0

    def test_jaccard_short_strings(self):
        assert ngram_jaccard("a", "a") == 1.0
        assert ngram_jaccard("a", "b") == 0.0

    def test_dice_identical(self):
        assert dice_coefficient("water", "water") == 1.0

    def test_dice_at_least_jaccard(self):
        pairs = [("salinity", "salinty"), ("water_temp", "watertemp")]
        for a, b in pairs:
            assert dice_coefficient(a, b) >= ngram_jaccard(a, b)

    def test_dice_one_empty(self):
        assert dice_coefficient("", "water") == 0.0

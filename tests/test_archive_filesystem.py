"""Unit tests for repro.archive.filesystem."""

import pytest

from repro.archive import ArchivePathError, VirtualArchive


@pytest.fixture()
def fs():
    archive = VirtualArchive()
    archive.put("stations/saturn01/data_2009.csv", "a")
    archive.put("stations/saturn01/data_2010.csv", "b")
    archive.put("stations/jetta/data_2009.csv", "c")
    archive.put("cruises/c1/transect.cdl", "d")
    archive.put("readme.txt", "e")
    return archive


class TestBasicOps:
    def test_put_get(self, fs):
        assert fs.get("readme.txt").content == "e"

    def test_put_normalizes_path(self, fs):
        fs.put("/x/./y.csv", "z")
        assert fs.exists("x/y.csv")

    def test_put_overwrites(self, fs):
        fs.put("readme.txt", "new")
        assert fs.get("readme.txt").content == "new"
        assert len(fs) == 5

    def test_get_missing_raises(self, fs):
        with pytest.raises(ArchivePathError):
            fs.get("nope.csv")

    def test_remove(self, fs):
        fs.remove("readme.txt")
        assert not fs.exists("readme.txt")

    def test_remove_missing_raises(self, fs):
        with pytest.raises(ArchivePathError):
            fs.remove("nope.csv")

    def test_empty_path_raises(self, fs):
        with pytest.raises(ArchivePathError):
            fs.put("", "x")

    def test_len(self, fs):
        assert len(fs) == 5

    def test_iteration_sorted(self, fs):
        paths = [f.path for f in fs]
        assert paths == sorted(paths)


class TestFileRecord:
    def test_directory(self, fs):
        assert fs.get("stations/saturn01/data_2009.csv").directory == (
            "stations/saturn01"
        )
        assert fs.get("readme.txt").directory == ""

    def test_extension(self, fs):
        assert fs.get("cruises/c1/transect.cdl").extension == "cdl"
        fs.put("noext", "x")
        assert fs.get("noext").extension == ""

    def test_content_hash_stable_and_sensitive(self, fs):
        record = fs.get("readme.txt")
        assert record.content_hash() == record.content_hash()
        fs.put("other.txt", "different")
        assert record.content_hash() != fs.get("other.txt").content_hash()


class TestListing:
    def test_non_recursive(self, fs):
        files = fs.list_directory("stations/saturn01")
        assert [f.path for f in files] == [
            "stations/saturn01/data_2009.csv",
            "stations/saturn01/data_2010.csv",
        ]

    def test_recursive(self, fs):
        files = fs.list_directory("stations", recursive=True)
        assert len(files) == 3

    def test_pattern(self, fs):
        files = fs.list_directory("stations", "*_2009.csv", recursive=True)
        assert len(files) == 2

    def test_root_recursive_sees_all(self, fs):
        assert len(fs.list_directory("", recursive=True)) == 5

    def test_root_non_recursive_sees_top_level_only(self, fs):
        assert [f.path for f in fs.list_directory("")] == ["readme.txt"]

    def test_directories(self, fs):
        dirs = fs.directories()
        assert "stations/saturn01" in dirs
        assert "" in dirs


class TestRealFilesystemInterop:
    def test_export_import_roundtrip(self, fs, tmp_path):
        count = fs.export_to(str(tmp_path))
        assert count == 5
        loaded = VirtualArchive.import_from(str(tmp_path))
        assert len(loaded) == 5
        assert loaded.get("cruises/c1/transect.cdl").content == "d"

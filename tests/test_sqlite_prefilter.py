"""SQLite pushdown prefilter: capability probe, degradation, exactness.

The prefilter ladder (DESIGN note 15): R*Tree when the SQLite build
compiled the module in, else indexed min/max range scans over the
``datasets`` table, else the engine's in-memory
:class:`~repro.catalog.index.CatalogIndexes`, else an unpruned full
scan.  Every rung must return a *superset* of the datasets whose
indexed term is above epsilon — these tests pin the probe, the
trigger-maintained rtree lockstep, the reopen-without-rtree survival
path and the end-to-end exactness of pages served through each rung.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.query import Query, VariableTerm
from repro.core.search import SearchEngine
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.obs import Telemetry, use_telemetry


def _build_has_rtree() -> bool:
    conn = sqlite3.connect(":memory:")
    try:
        conn.execute(
            "CREATE VIRTUAL TABLE probe USING rtree(id, x0, x1)"
        )
        return True
    except sqlite3.OperationalError:
        return False
    finally:
        conn.close()


HAS_RTREE = _build_has_rtree()
needs_rtree = pytest.mark.skipif(
    not HAS_RTREE, reason="sqlite built without the rtree module"
)


def make_feature(
    index: int,
    lat: float = 45.0,
    lon: float = -124.0,
    start: float = 0.0,
    name: str = "salinity",
) -> DatasetFeature:
    return DatasetFeature(
        dataset_id=f"ds_{index:03d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat + 0.2, lon + 0.2),
        interval=TimeInterval(start, start + 1000.0),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
        ],
    )


def spread_features(count: int) -> list[DatasetFeature]:
    return [
        make_feature(
            index,
            lat=30.0 + (index % 12) * 4.0,
            lon=-150.0 + (index // 12) * 9.0,
            start=index * 5e5,
        )
        for index in range(count)
    ]


class TestCapabilityProbe:
    def test_default_mode_matches_build(self):
        with SqliteCatalog() as store:
            assert store.prefilter_mode == (
                "rtree" if HAS_RTREE else "range"
            )

    def test_rtree_opt_out_gives_range(self):
        with SqliteCatalog(enable_rtree=False) as store:
            assert store.prefilter_mode == "range"

    def test_prefilter_opt_out_gives_none(self):
        with SqliteCatalog(enable_prefilter=False) as store:
            assert store.prefilter_mode == "none"

    def test_missing_rtree_degrades_to_range_and_counts(self, monkeypatch):
        monkeypatch.setattr(
            SqliteCatalog, "_rtree_available", lambda self: False
        )
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            with SqliteCatalog() as store:
                assert store.prefilter_mode == "range"
        assert telemetry.counter("prefilter.rtree_unavailable") == 1


class TestDegradationSurvival:
    @needs_rtree
    def test_reopen_without_rtree_keeps_writes_working(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as store:
            assert store.prefilter_mode == "rtree"
            store.upsert_many(spread_features(8))
        # Reopen as if this build had no rtree module: the remnant
        # triggers reference the virtual table and must be dropped or
        # every subsequent write would fail.
        monkeypatch.setattr(
            SqliteCatalog, "_rtree_available", lambda self: False
        )
        with SqliteCatalog(path) as store:
            assert store.prefilter_mode == "range"
            store.upsert(make_feature(99))
            store.remove("ds_000")
            assert len(store) == 8
            found = store.prefilter_candidates_near(
                GeoPoint(45.2, -123.8), 100.0
            )
            assert found is not None and "ds_099" in found

    @needs_rtree
    def test_reopen_with_rtree_backfills_unmaintained_edits(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as store:
            store.upsert_many(spread_features(6))
        # Edit through a connection with the prefilter disabled (no
        # triggers): the rtree goes stale on disk.
        with SqliteCatalog(path, enable_prefilter=False) as store:
            store.remove("ds_001")
            store.upsert(make_feature(50, lat=45.0, lon=-124.0))
        # Reopening with the prefilter re-syncs rtree with datasets.
        with SqliteCatalog(path) as store:
            assert store.prefilter_mode == "rtree"
            found = store.prefilter_candidates_near(
                GeoPoint(0.0, 0.0), 25000.0
            )
            if found is None:  # margin covered the globe
                return
            assert found == set(store.dataset_ids())


class TestConservativeSuperset:
    @pytest.mark.parametrize("enable_rtree", [True, False])
    def test_spatial_superset_of_truth(self, enable_rtree):
        with SqliteCatalog(enable_rtree=enable_rtree) as store:
            features = spread_features(40)
            store.upsert_many(features)
            point = GeoPoint(44.0, -120.0)
            for radius in (10.0, 300.0, 2000.0):
                found = store.prefilter_candidates_near(point, radius)
                truth = {
                    f.dataset_id for f in features
                    if f.bbox.distance_km_to_point(point) <= radius
                }
                if found is None:
                    continue  # "no constraint" is trivially a superset
                assert truth <= found

    def test_spatial_blowout_returns_none(self):
        with SqliteCatalog() as store:
            store.upsert_many(spread_features(4))
            assert store.prefilter_candidates_near(
                GeoPoint(45.0, -124.0), 50000.0
            ) is None

    def test_temporal_superset_of_truth(self):
        with SqliteCatalog() as store:
            features = spread_features(40)
            store.upsert_many(features)
            window = TimeInterval(4e6, 6e6)
            for margin in (0.0, 1e6):
                found = store.prefilter_candidates_overlapping(
                    window, margin_seconds=margin
                )
                grown = TimeInterval(
                    window.start - margin, window.end + margin
                )
                truth = {
                    f.dataset_id for f in features
                    if f.interval.overlaps(grown)
                }
                assert found == truth  # exact for the range predicate

    def test_margin_validation(self):
        with SqliteCatalog() as store:
            with pytest.raises(ValueError):
                store.prefilter_candidates_overlapping(
                    TimeInterval(0.0, 1.0), margin_seconds=-1.0
                )
            with pytest.raises(ValueError):
                store.prefilter_candidates_near(
                    GeoPoint(0.0, 0.0), -5.0
                )


class TestTriggerLockstep:
    """The rtree mirrors ``datasets`` through every mutation primitive."""

    def _everything(self, store: SqliteCatalog) -> set[str]:
        with store._lock:
            rows = store._conn.execute(
                "SELECT m.dataset_id FROM prefilter_rtree AS r "
                "JOIN prefilter_map AS m ON m.num = r.id"
            ).fetchall()
        return {row[0] for row in rows}

    @needs_rtree
    def test_upsert_remove_batch_replace_clear(self):
        with SqliteCatalog() as store:
            assert store.prefilter_mode == "rtree"
            store.upsert_many(spread_features(10))
            assert self._everything(store) == set(store.dataset_ids())
            store.upsert(make_feature(3, lat=50.0, lon=-90.0))  # update
            store.remove("ds_004")
            assert self._everything(store) == set(store.dataset_ids())
            store.apply_batch(
                upserts=[make_feature(20), make_feature(21)],
                removals=["ds_005", "ds_006"],
            )
            assert self._everything(store) == set(store.dataset_ids())
            store.replace_all(spread_features(5))
            assert self._everything(store) == set(store.dataset_ids())
            store.clear()
            assert self._everything(store) == set()


class TestEngineLadder:
    def _queries(self) -> list[Query]:
        return [
            Query(
                location=GeoPoint(44.0, -122.0), radius_km=150.0,
                interval=TimeInterval(2e6, 4e6),
                variables=(VariableTerm(name="salinity"),),
            ),
            Query(location=GeoPoint(38.0, -140.0), radius_km=80.0),
            Query(interval=TimeInterval(0.0, 1e6)),
        ]

    def _pages(self, engine: SearchEngine) -> list:
        return [
            [
                (r.dataset_id, r.score, r.breakdown)
                for r in engine.search(q, limit=10)
            ]
            for q in self._queries()
        ]

    def test_every_rung_serves_the_same_page(self):
        features = spread_features(60)
        reference = MemoryCatalog()
        reference.upsert_many(features)
        baseline = SearchEngine(reference, cache=False, columnar=False)
        expected = self._pages(baseline)

        for store in (
            SqliteCatalog(),                        # rtree (or range)
            SqliteCatalog(enable_rtree=False),      # range
            SqliteCatalog(enable_prefilter=False),  # none: full scan
        ):
            with store:
                store.upsert_many(features)
                engine = SearchEngine(store, cache=False)
                assert self._pages(engine) == expected
        # ...and the in-memory index rung over the same store.
        with SqliteCatalog(enable_prefilter=False) as store:
            store.upsert_many(features)
            engine = SearchEngine(store, cache=False)
            engine.build_indexes()
            assert self._pages(engine) == expected

    def test_pushdown_vs_python_counters(self):
        features = spread_features(30)
        telemetry = Telemetry()
        with SqliteCatalog() as store:
            store.upsert_many(features)
            with use_telemetry(telemetry):
                engine = SearchEngine(store, cache=False)
                engine.search(self._queries()[0], limit=5)
                assert telemetry.counter("prefilter.pushdown") == 1
                assert telemetry.counter("prefilter.python") == 0
                # In-memory indexes outrank the pushdown once built.
                engine.build_indexes()
                engine.search(self._queries()[1], limit=5)
                assert telemetry.counter("prefilter.python") == 1
                assert telemetry.counter("prefilter.candidates_in") > 0


def test_memory_catalog_has_no_pushdown():
    catalog = MemoryCatalog()
    engine = SearchEngine(catalog, cache=False)
    assert engine.stats()["prefilter_mode"] == "none"

"""Sliding-window SLO tracking, driven by an injected clock.

The operator contract (obs/slo.py): windows hold only recent outcomes,
percentiles are exact nearest-rank order statistics over the requests
that *ran*, admission rejections count against availability but not
against the error rate, a window with no data is "ok" (no data is not
an outage), and the overall verdict degrades as soon as any one window
breaches any one target.
"""

from __future__ import annotations

import pytest

from repro.obs import DEFAULT_WINDOWS, SLOConfig, SLOTracker, nearest_rank


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tracker(config=None, windows=(60,), clock=None):
    return SLOTracker(
        config=config, windows=windows, clock=clock or FakeClock()
    )


class TestNearestRank:
    def test_exact_order_statistics(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        assert nearest_rank(values, 0.50) == 0.5
        assert nearest_rank(values, 0.95) == 1.0
        assert nearest_rank(values, 0.99) == 1.0

    def test_single_sample_is_every_percentile(self):
        assert nearest_rank([0.42], 0.50) == 0.42
        assert nearest_rank([0.42], 0.99) == 0.42

    def test_empty_is_zero(self):
        assert nearest_rank([], 0.95) == 0.0


class TestWindows:
    def test_empty_window_is_ok_not_an_outage(self):
        report = tracker().window_report(60)
        assert report["requests"] == 0
        assert report["status"] == "ok"
        assert report["availability"] == 1.0
        assert report["breached"] == []

    def test_entries_expire_as_the_clock_advances(self):
        clock = FakeClock()
        slo = tracker(clock=clock)
        slo.record(0.010)
        clock.advance(30)
        slo.record(0.020)
        assert slo.window_report(60)["requests"] == 2
        clock.advance(31)  # first entry is now 61s old
        report = slo.window_report(60)
        assert report["requests"] == 1
        assert report["latency_p50"] == 0.020
        clock.advance(120)
        assert slo.window_report(60)["requests"] == 0

    def test_short_window_spikes_long_window_remembers(self):
        clock = FakeClock()
        slo = tracker(windows=(60, 300), clock=clock)
        slo.record(0.010, error=True)
        clock.advance(120)  # past the 1m window, inside the 5m
        slo.record(0.010)
        assert slo.window_report(60)["errors"] == 0
        assert slo.window_report(300)["errors"] == 1

    def test_unknown_window_raises(self):
        with pytest.raises(KeyError):
            tracker().window_report(999)

    def test_windows_must_be_positive(self):
        with pytest.raises(ValueError):
            SLOTracker(windows=())
        with pytest.raises(ValueError):
            SLOTracker(windows=(60, 0))


class TestVerdicts:
    def test_healthy_traffic_is_ok(self):
        slo = tracker()
        for _ in range(20):
            slo.record(0.005)
        report = slo.window_report(60)
        assert report["status"] == "ok"
        assert report["error_rate"] == 0.0
        assert report["availability"] == 1.0

    def test_p95_breach_degrades(self):
        slo = tracker(config=SLOConfig(latency_p95_seconds=0.1))
        for _ in range(10):
            slo.record(0.2)
        report = slo.window_report(60)
        assert report["breached"] == ["latency_p95"]
        assert report["status"] == "degraded"

    def test_error_rate_breach_degrades(self):
        slo = tracker(config=SLOConfig(max_error_rate=0.05))
        for index in range(10):
            slo.record(0.005, error=index == 0)
        report = slo.window_report(60)
        assert report["error_rate"] == pytest.approx(0.1)
        assert "error_rate" in report["breached"]

    def test_rejections_hit_availability_not_error_rate(self):
        """A shedding service is degraded, not broken."""
        slo = tracker(config=SLOConfig(min_availability=0.95))
        for index in range(10):
            slo.record(0.001, rejected=index < 2)
        report = slo.window_report(60)
        assert report["rejected"] == 2
        assert report["error_rate"] == 0.0
        assert report["availability"] == pytest.approx(0.8)
        assert report["breached"] == ["availability"]

    def test_rejected_latencies_stay_out_of_the_percentiles(self):
        slo = tracker(config=SLOConfig(latency_p95_seconds=0.1))
        for _ in range(10):
            slo.record(0.001)
        slo.record(9.0, rejected=True)  # fast-fail path, not tail latency
        report = slo.window_report(60)
        assert report["latency_p95"] == 0.001
        assert "latency_p95" not in report["breached"]

    def test_all_rejected_window_skips_the_latency_check(self):
        slo = tracker(config=SLOConfig(latency_p95_seconds=0.0001))
        slo.record(0.5, rejected=True)
        report = slo.window_report(60)
        assert report["latency_p50"] == 0.0
        assert report["breached"] == ["availability"]


class TestOverallReport:
    def test_default_window_labels(self):
        report = SLOTracker(clock=FakeClock()).report()
        assert set(report["windows"]) == {"1m", "5m", "30m"}
        assert DEFAULT_WINDOWS == (60, 300, 1800)

    def test_one_bad_window_degrades_the_whole_report(self):
        clock = FakeClock()
        slo = SLOTracker(
            config=SLOConfig(max_error_rate=0.0),
            windows=(60, 300),
            clock=clock,
        )
        slo.record(0.01, error=True)
        clock.advance(120)  # error now only visible to the 5m window
        for _ in range(5):
            slo.record(0.01)
        report = slo.report()
        assert report["windows"]["1m"]["status"] == "ok"
        assert report["windows"]["5m"]["status"] == "degraded"
        assert report["status"] == "degraded"

    def test_report_carries_the_declared_config(self):
        config = SLOConfig(
            latency_p95_seconds=0.25,
            max_error_rate=0.02,
            min_availability=0.98,
        )
        report = SLOTracker(config=config, clock=FakeClock()).report()
        assert report["config"] == {
            "latency_p95_seconds": 0.25,
            "max_error_rate": 0.02,
            "min_availability": 0.98,
        }

    def test_non_minute_windows_get_second_labels(self):
        report = SLOTracker(windows=(90,), clock=FakeClock()).report()
        assert set(report["windows"]) == {"90s"}

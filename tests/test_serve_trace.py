"""Request-scoped tracing: one request, one span tree, one request id.

The PR-9 acceptance contract: a single ``/search`` served over real
sockets through process-pool scoring must leave behind **one coherent
span tree** in the shared telemetry — the HTTP span at the root, the
service span, the engine's query and prefilter spans, and the pool
workers' ``procpool.chunk`` spans re-parented under it across the
pickle boundary — and every span in that tree must carry the same
deterministic ``request_id`` stamp.

Also pinned here: the request-context scratchpad (``cache_hit``,
``candidates_in/out``, ``results``, ``snapshot_version``) that the
access log and flight recorder read, and the id counter's determinism
(``req-000001`` onward in admission order).
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.geo import BoundingBox, TimeInterval
from repro.obs import RequestContext, Telemetry, use_request, use_telemetry
from repro.serve import SearchHTTPServer, SearchService, ServeConfig


def make_feature(dataset_id: str, row_count: int = 10) -> DatasetFeature:
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=row_count,
        source_directory="stations/x",
        variables=[
            VariableEntry.from_written(
                "salinity", "psu", row_count, 0.0, 30.0, 15.0, 2.0
            )
        ],
    )


@pytest.fixture()
def catalog():
    store = MemoryCatalog()
    store.upsert_many([make_feature(f"d{i}") for i in range(12)])
    return store


def get(server, target: str):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_until(condition, timeout: float = 5.0) -> None:
    """The root span and flight capture land *after* the body is on the
    wire; a client's read can return a beat before they do."""
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise AssertionError("bookkeeping never became visible")
        time.sleep(0.005)


def root_spans(telemetry, count: int):
    wait_until(
        lambda: sum(
            1 for s in telemetry.spans() if s.name == "http.request"
        ) >= count
    )
    return telemetry.spans()


class TestOneRequestOneTree:
    def test_search_through_procpool_is_one_stamped_span_tree(self, catalog):
        """The acceptance test: HTTP -> service -> engine -> pool workers.

        ``score_min_rows=1`` forces every candidate set through the
        process pool, so the tree must include worker spans that crossed
        a pickle boundary and were re-parented on the request thread.
        """
        service = SearchService(
            catalog,
            config=ServeConfig(score_workers=2, score_min_rows=1),
        )
        server = SearchHTTPServer(service, port=0).start()
        try:
            status, payload = get(server, "/search?q=with+salinity")
            assert status == 200
            assert payload["results"]
        finally:
            server.close(timeout=10.0)

        spans = root_spans(service.telemetry, 1)
        stamped = [
            s for s in spans
            if s.attrs.get("request_id") == "req-000001"
        ]
        names = {s.name for s in stamped}
        assert {
            "http.request",
            "serve.request",
            "search.query",
            "search.prefilter",
            "procpool.chunk",
        } <= names, names

        # One tree: every stamped span hangs off the one HTTP root.
        roots = [s for s in stamped if s.path == "http.request"]
        assert len(roots) == 1
        for span in stamped:
            assert span.path == "http.request" or span.path.startswith(
                "http.request/"
            ), span.path
        # The worker spans crossed the pickle boundary and still nest
        # under the request (merge_worker re-parents on the request
        # thread, inside the open serve.request span).
        chunk_paths = [s.path for s in stamped if s.name == "procpool.chunk"]
        assert chunk_paths
        for path in chunk_paths:
            assert "serve.request" in path, path

        # No stray ids: this was the only request, so nothing else is
        # stamped with anything but req-000001.
        ids = {
            s.attrs["request_id"]
            for s in spans
            if "request_id" in s.attrs
        }
        assert ids == {"req-000001"}

    def test_sharded_thread_scoring_joins_the_tree_too(self, catalog):
        """Thread shards (no pool) nest via Telemetry.parented."""
        service = SearchService(
            catalog,
            config=ServeConfig(shard_workers=2, shard_threshold=1),
        )
        server = SearchHTTPServer(service, port=0).start()
        try:
            status, payload = get(server, "/search?q=with+salinity")
            assert status == 200
        finally:
            server.close(timeout=10.0)
        stamped = [
            s for s in root_spans(service.telemetry, 1)
            if s.attrs.get("request_id") == "req-000001"
        ]
        shard_spans = [s for s in stamped if s.name == "search.shard"]
        assert shard_spans, {s.name for s in stamped}
        for span in shard_spans:
            assert span.path.startswith("http.request/"), span.path

    def test_request_ids_are_deterministic_and_sequential(self, catalog):
        service = SearchService(catalog)
        server = SearchHTTPServer(service, port=0).start()
        try:
            for _ in range(3):
                assert get(server, "/search?q=with+salinity")[0] == 200
        finally:
            server.close(timeout=10.0)
        roots = sorted(
            s.attrs["request_id"]
            for s in root_spans(service.telemetry, 3)
            if s.name == "http.request"
        )
        assert roots == ["req-000001", "req-000002", "req-000003"]

    def test_context_scratchpad_carries_result_stats(self, catalog):
        """The engine annotates the request context the access log reads."""
        service = SearchService(catalog)
        server = SearchHTTPServer(service, port=0).start()
        try:
            assert get(server, "/search?q=with+salinity")[0] == 200
            # Same query again: the cache hit is annotated as such.
            assert get(server, "/search?q=with+salinity")[0] == 200
            wait_until(lambda: server.flight.captured >= 2)
            slow = get(server, "/debug/slow")[1]
        finally:
            server.close(timeout=10.0)
        by_id = {
            record["request_id"]: record for record in slow["slowest"]
        }
        first = by_id["req-000001"]
        assert first["attrs"]["cache_hit"] is False
        assert first["attrs"]["candidates_in"] == 12
        assert first["attrs"]["results"] >= 1
        assert first["attrs"]["snapshot_version"] >= 1
        second = by_id["req-000002"]
        assert second["attrs"]["cache_hit"] is True

    def test_disabled_telemetry_serves_without_stamping(self, catalog):
        service = SearchService(catalog, telemetry=Telemetry(enabled=False))
        server = SearchHTTPServer(service, port=0).start()
        try:
            status, payload = get(server, "/search?q=with+salinity")
            assert status == 200
            assert payload["results"]
        finally:
            server.close(timeout=10.0)
        assert service.telemetry.spans() == []


class TestRequestContextUnit:
    def test_spans_opened_under_a_context_are_stamped(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            with use_request(RequestContext("req-test")):
                with telemetry.span("outer"):
                    with telemetry.span("inner"):
                        pass
            with telemetry.span("orphan"):
                pass
        stamps = {
            s.name: s.attrs.get("request_id") for s in telemetry.spans()
        }
        assert stamps == {
            "outer": "req-test", "inner": "req-test", "orphan": None
        }

    def test_annotate_coerces_and_accumulates(self):
        context = RequestContext("req-x")
        context.annotate(cache_hit=False, results=3)
        context.annotate(snapshot_version=7)
        assert context.attrs == {
            "cache_hit": False, "results": 3, "snapshot_version": 7
        }

    def test_parented_nests_a_borrowed_path(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            with telemetry.span("root"):
                parent = telemetry.active_path()
            with telemetry.parented(parent):
                with telemetry.span("child"):
                    pass
            with telemetry.parented(None):  # no-op passthrough
                with telemetry.span("loose"):
                    pass
        paths = {s.name: s.path for s in telemetry.spans()}
        assert paths["child"] == "root/child"
        assert paths["loose"] == "loose"

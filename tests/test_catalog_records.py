"""Unit tests for repro.catalog.records."""

import pytest

from repro.catalog import DatasetFeature, VariableEntry
from repro.geo import BoundingBox, TimeInterval


def make_entry(name="salinity", **overrides):
    defaults = dict(
        written_name=name,
        written_unit="PSU",
        count=10,
        minimum=5.0,
        maximum=20.0,
        mean=12.0,
        stddev=3.0,
    )
    defaults.update(overrides)
    return VariableEntry.from_written(**defaults) if not overrides else (
        VariableEntry(
            written_name=defaults["written_name"],
            written_unit=defaults["written_unit"],
            name=defaults.get("name", defaults["written_name"]),
            unit=defaults.get("unit", defaults["written_unit"]),
            count=defaults["count"],
            minimum=defaults["minimum"],
            maximum=defaults["maximum"],
            mean=defaults["mean"],
            stddev=defaults["stddev"],
            excluded=defaults.get("excluded", False),
        )
    )


def make_feature(variables=None):
    return DatasetFeature(
        dataset_id="stations/x/x_2009.csv",
        title="Station X 2009",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(46.0, -124.0, 46.0, -124.0),
        interval=TimeInterval(0.0, 86400.0),
        row_count=100,
        source_directory="stations/x",
        attributes={"station": "x"},
        variables=variables if variables is not None else [make_entry()],
    )


class TestVariableEntry:
    def test_from_written_current_equals_written(self):
        entry = VariableEntry.from_written("SAL", "psu", 5, 1, 2, 1.5, 0.2)
        assert entry.name == "SAL"
        assert entry.unit == "psu"
        assert entry.written_name == "SAL"

    def test_copy_is_independent(self):
        entry = make_entry()
        clone = entry.copy()
        clone.name = "renamed"
        assert entry.name == "salinity"

    def test_rename_preserves_written(self):
        entry = make_entry()
        entry.name = "salinity_canonical"
        assert entry.written_name == "salinity"


class TestDatasetFeature:
    def test_variable_lookup_by_current_name(self):
        feature = make_feature()
        assert feature.variable("salinity").unit == "PSU"

    def test_variable_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            make_feature().variable("nope")

    def test_searchable_excludes_excluded(self):
        entries = [
            make_entry(),
            make_entry(written_name="qa_level", excluded=True),
        ]
        feature = make_feature(entries)
        names = [v.name for v in feature.searchable_variables()]
        assert names == ["salinity"]
        assert len(feature.variable_names()) == 2

    def test_copy_deep_enough(self):
        feature = make_feature()
        clone = feature.copy()
        clone.variables[0].name = "changed"
        clone.attributes["station"] = "y"
        assert feature.variables[0].name == "salinity"
        assert feature.attributes["station"] == "x"

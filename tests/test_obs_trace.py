"""The JSONL trace sink: round-trip, validation, and end-to-end traces
whose span totals reconcile with wall-clock time."""

from __future__ import annotations

import io
import json

from repro import DataNearHere, parse_query
from repro.archive import (
    MessSpec,
    generate_archive,
    inject_mess,
    render_archive,
)
from repro.obs import (
    Telemetry,
    read_trace,
    trace_events,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from repro.obs.sink import main as sink_main

from .conftest import SMALL_SPEC


def _sample_snapshot() -> dict:
    t = Telemetry()
    with t.span("run", kind="test"):
        with t.span("step"):
            pass
        t.count("events", 3)
        t.gauge("size", 7)
        t.observe("latency", 0.002)
    return t.snapshot()


class TestRoundTrip:
    def test_write_validate_read(self, tmp_path):
        snapshot = _sample_snapshot()
        path = str(tmp_path / "trace.jsonl")
        events = write_trace(snapshot, path)
        # meta + 2 spans + counter + gauge + histogram
        assert events == 6
        assert validate_trace_file(path) == []
        restored = read_trace(path)
        assert restored["counters"] == snapshot["counters"]
        assert restored["gauges"] == snapshot["gauges"]
        assert restored["histograms"] == snapshot["histograms"]
        assert restored["spans"] == snapshot["spans"]
        assert restored["span_stats"] == snapshot["span_stats"]

    def test_file_object_destination(self):
        buffer = io.StringIO()
        events = write_trace(_sample_snapshot(), buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == events
        assert validate_trace_lines(lines) == []
        restored = read_trace(io.StringIO(buffer.getvalue()))
        assert restored["counters"] == {"events": 3}

    def test_meta_line_comes_first(self):
        events = list(trace_events(_sample_snapshot()))
        assert events[0]["type"] == "meta"
        assert events[0]["v"] == 1
        assert events[0]["spans"] == 2


class TestValidation:
    def test_rejects_non_json(self):
        problems = validate_trace_lines(["{not json"])
        assert any("not JSON" in p for p in problems)

    def test_rejects_missing_meta(self):
        line = json.dumps(
            {"v": 1, "type": "counter", "name": "x", "value": 1}
        )
        problems = validate_trace_lines([line])
        assert any("meta" in p for p in problems)

    def test_rejects_wrong_version(self):
        lines = [
            json.dumps({"v": 99, "type": "meta", "schema": 99}),
        ]
        problems = validate_trace_lines(lines)
        assert any("schema version" in p for p in problems)

    def test_rejects_span_path_name_mismatch(self):
        lines = [
            json.dumps({"v": 1, "type": "meta", "schema": 1}),
            json.dumps({
                "v": 1, "type": "span", "name": "b",
                "path": "a/c", "start": 0.0, "duration": 0.1,
            }),
        ]
        problems = validate_trace_lines(lines)
        assert any("does not end with name" in p for p in problems)

    def test_rejects_negative_counter(self):
        lines = [
            json.dumps({"v": 1, "type": "meta", "schema": 1}),
            json.dumps(
                {"v": 1, "type": "counter", "name": "x", "value": -1}
            ),
        ]
        problems = validate_trace_lines(lines)
        assert any("non-negative" in p for p in problems)

    def test_rejects_histogram_bucket_mismatch(self):
        lines = [
            json.dumps({"v": 1, "type": "meta", "schema": 1}),
            json.dumps({
                "v": 1, "type": "histogram", "name": "h",
                "bounds": [1.0], "counts": [2, 1], "count": 5,
                "sum": 1.0, "min": 0.1, "max": 2.0,
            }),
        ]
        problems = validate_trace_lines(lines)
        assert any("bucket sum" in p for p in problems)

    def test_cli_validator(self, tmp_path, capsys):
        good = str(tmp_path / "good.jsonl")
        write_trace(_sample_snapshot(), good)
        bad = str(tmp_path / "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write("{broken\n")
        assert sink_main([good]) == 0
        assert "ok" in capsys.readouterr().out
        assert sink_main([bad]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestEndToEndTrace:
    def test_pipeline_trace_is_valid_and_reconciles(self, tmp_path):
        archive = inject_mess(
            generate_archive(SMALL_SPEC), MessSpec(seed=99)
        )
        fs, __ = render_archive(archive)
        system = DataNearHere(fs, workers=2)
        report = system.wrangle()
        query = parse_query("near 45.5, -124.4 with temperature")
        for __ in range(3):
            system.search(query)
        snapshot = system.telemetry_snapshot()

        path = str(tmp_path / "run.jsonl")
        write_trace(snapshot, path)
        assert validate_trace_file(path) == []
        restored = read_trace(path)

        # Wall-clock reconciliation: the root wrangle span covers every
        # component span under it, and agrees with the chain report.
        stats = restored["span_stats"]
        root = stats["wrangle"]["total_seconds"]
        child_total = sum(
            s["total_seconds"]
            for p, s in stats.items()
            if p.count("/") == 1 and p.startswith("wrangle/")
        )
        assert root >= child_total
        assert root == report.duration_seconds
        component_total = sum(
            r.duration_seconds for r in report.component_reports
        )
        assert root >= component_total

        # The trace carries the query workload too.
        assert restored["counters"]["search.queries"] == 3
        assert stats["search.query"]["count"] == 3

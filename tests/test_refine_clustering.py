"""Unit tests for repro.refine.clustering."""

import pytest

from repro.refine import (
    clusters_to_mass_edits,
    key_collision_clusters,
    nearest_neighbour_clusters,
)


@pytest.fixture()
def counts():
    # A mess family around air temperature plus singletons.
    return {
        "air_temperature": 10,
        "Air Temperature": 3,
        "air-temperature": 2,
        "air_temperatrue": 1,
        "salinity": 8,
        "turbidity": 4,
    }


class TestKeyCollision:
    def test_fingerprint_clusters_variants(self, counts):
        clusters = key_collision_clusters(counts, keyer="fingerprint")
        assert len(clusters) == 1
        cluster = clusters[0]
        assert set(cluster.values) == {
            "air_temperature", "Air Temperature", "air-temperature",
        }
        assert cluster.suggested_value == "air_temperature"  # most common

    def test_typo_not_caught_by_fingerprint(self, counts):
        clusters = key_collision_clusters(counts, keyer="fingerprint")
        for cluster in clusters:
            assert "air_temperatrue" not in cluster.values

    def test_metaphone_keyer(self):
        counts = {"temperature": 5, "temperatoor": 1, "salinity": 2}
        clusters = key_collision_clusters(counts, keyer="metaphone")
        assert any(
            set(c.values) == {"temperature", "temperatoor"}
            for c in clusters
        )

    def test_min_size_filters_singletons(self, counts):
        clusters = key_collision_clusters(counts, min_size=1)
        singles = [c for c in clusters if c.size == 1]
        assert singles  # with min_size=1 singletons appear
        clusters = key_collision_clusters(counts, min_size=2)
        assert all(c.size >= 2 for c in clusters)

    def test_unknown_keyer_raises(self, counts):
        with pytest.raises(KeyError):
            key_collision_clusters(counts, keyer="quantum")

    def test_cluster_counts_ordering(self, counts):
        cluster = key_collision_clusters(counts)[0]
        assert list(cluster.counts) == sorted(cluster.counts, reverse=True)
        assert cluster.total_count == 15


class TestNearestNeighbour:
    def test_levenshtein_catches_typo(self, counts):
        clusters = nearest_neighbour_clusters(
            counts, distance="levenshtein", radius=2.0
        )
        family = [c for c in clusters if "air_temperatrue" in c.values]
        assert family
        assert "air_temperature" in family[0].values

    def test_radius_controls_recall(self):
        counts = {"salinity": 3, "salinXXX": 1}
        tight = nearest_neighbour_clusters(counts, radius=1.0)
        loose = nearest_neighbour_clusters(counts, radius=3.0)
        assert not tight
        assert loose

    def test_jaro_winkler_distance(self, counts):
        clusters = nearest_neighbour_clusters(
            counts, distance="jaro-winkler", radius=0.15
        )
        assert any("air_temperatrue" in c.values for c in clusters)

    def test_blocking_prefix(self):
        # Values with different first characters are never compared when
        # block_chars=1, even within radius.
        counts = {"abc": 1, "xbc": 1}
        clusters = nearest_neighbour_clusters(
            counts, radius=1.0, block_chars=1
        )
        assert clusters == []

    def test_unknown_distance_raises(self, counts):
        with pytest.raises(ValueError):
            nearest_neighbour_clusters(counts, distance="cosine")

    def test_bad_radius_raises(self, counts):
        with pytest.raises(ValueError):
            nearest_neighbour_clusters(counts, radius=0.0)

    def test_deterministic(self, counts):
        a = nearest_neighbour_clusters(counts)
        b = nearest_neighbour_clusters(counts)
        assert [c.values for c in a] == [c.values for c in b]


class TestClustersToMassEdits:
    def test_default_merges_to_most_common(self, counts):
        clusters = key_collision_clusters(counts)
        edits = clusters_to_mass_edits(clusters)
        assert len(edits) == 1
        assert edits[0].to_value == "air_temperature"
        assert "Air Temperature" in edits[0].from_values
        assert "air_temperature" not in edits[0].from_values

    def test_chooser_can_skip(self, counts):
        clusters = key_collision_clusters(counts)
        edits = clusters_to_mass_edits(clusters, target_for=lambda c: None)
        assert edits == []

    def test_chooser_picks_target(self, counts):
        clusters = key_collision_clusters(counts)
        edits = clusters_to_mass_edits(
            clusters, target_for=lambda c: "AIR_T"
        )
        assert edits[0].to_value == "AIR_T"
        assert len(edits[0].from_values) == 3

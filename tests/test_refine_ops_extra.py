"""Unit tests for the column-addition and fill-down Refine operations."""

import pytest

from repro.refine import (
    ColumnAdditionOperation,
    EngineConfig,
    FillDownOperation,
    ListFacet,
    OperationError,
    RefineTable,
    operation_from_json,
)


@pytest.fixture()
def table():
    t = RefineTable(columns=["field", "unit"])
    for field, unit in [
        ("Air-Temp", "degC"), ("salinity", None), ("TURB", ""),
    ]:
        t.append_row({"field": field, "unit": unit})
    return t


class TestColumnAddition:
    def test_adds_derived_column(self, table):
        op = ColumnAdditionOperation(
            base_column="field",
            new_column="key",
            expression="value.fingerprint()",
        )
        op.apply(table)
        assert table.columns == ["field", "unit", "key"]
        assert table.rows[0]["key"] == "air temp"

    def test_error_cells_blank(self, table):
        table.rows[1]["field"] = 42  # not a string
        op = ColumnAdditionOperation(
            base_column="field",
            new_column="lower",
            expression="value.toLowercase()",
        )
        op.apply(table)
        assert table.rows[1]["lower"] is None
        assert table.rows[0]["lower"] == "air-temp"

    def test_faceted_rows_only(self, table):
        op = ColumnAdditionOperation(
            base_column="field",
            new_column="marked",
            expression="'x'",
            engine_config=EngineConfig(
                facets=(ListFacet(column="unit", selection=("degC",)),)
            ),
        )
        op.apply(table)
        assert table.rows[0]["marked"] == "x"
        assert table.rows[1]["marked"] is None

    def test_json_roundtrip(self):
        op = ColumnAdditionOperation(
            base_column="field", new_column="key",
            expression="value.fingerprint()",
        )
        data = op.to_json()
        assert data["expression"].startswith("grel:")
        again = operation_from_json(data)
        assert isinstance(again, ColumnAdditionOperation)
        assert again.new_column == "key"

    def test_missing_expression_raises(self):
        with pytest.raises(OperationError):
            operation_from_json(
                {"op": "core/column-addition", "baseColumnName": "a",
                 "newColumnName": "b"}
            )

    def test_duplicate_target_raises(self, table):
        op = ColumnAdditionOperation(
            base_column="field", new_column="unit", expression="value"
        )
        with pytest.raises(ValueError):
            op.apply(table)


class TestFillDown:
    def test_fills_blanks(self, table):
        changed = FillDownOperation(column="unit").apply(table)
        assert changed == 2
        assert [row["unit"] for row in table.rows] == [
            "degC", "degC", "degC",
        ]

    def test_leading_blank_stays(self):
        t = RefineTable(columns=["unit"])
        t.append_row({"unit": None})
        t.append_row({"unit": "m"})
        t.append_row({"unit": None})
        FillDownOperation(column="unit").apply(t)
        assert [row["unit"] for row in t.rows] == [None, "m", "m"]

    def test_json_roundtrip(self):
        op = FillDownOperation(column="unit")
        again = operation_from_json(op.to_json())
        assert isinstance(again, FillDownOperation)
        assert again.column == "unit"

    def test_in_ruleset(self, table):
        from repro.refine import RuleSet

        rules = RuleSet([FillDownOperation(column="unit")])
        loaded = RuleSet.loads(rules.dumps())
        assert loaded.apply(table) == 2

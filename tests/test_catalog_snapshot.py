"""Catalog snapshots: immutability, atomic batches, isolation races.

The serving layer's correctness rests on three properties tested here:

* a snapshot is frozen — every mutator raises, content and version
  never move, and it shares no state with the source store;
* ``apply_batch``/``replace_all`` are atomic — one version bump, and a
  concurrent snapshot sees the whole batch or none of it;
* readers never block writers — a thread holding (and reading) a
  snapshot cannot delay mutations on the live store.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import (
    CatalogSnapshot,
    DatasetNotFoundError,
    MemoryCatalog,
    SnapshotMutationError,
    SqliteCatalog,
)
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.geo import BoundingBox, TimeInterval


def make_feature(dataset_id: str, row_count: int = 10) -> DatasetFeature:
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=row_count,
        source_directory="stations/x",
        variables=[
            VariableEntry.from_written(
                "water_temperature", "C", row_count, 0.0, 20.0, 10.0, 2.0
            )
        ],
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield MemoryCatalog()
    else:
        with SqliteCatalog() as catalog:
            yield catalog


class TestSnapshotBasics:
    def test_snapshot_is_frozen_copy(self, store):
        store.upsert(make_feature("a"))
        store.upsert(make_feature("b"))
        snap = store.snapshot()
        assert isinstance(snap, CatalogSnapshot)
        assert snap.version == store.version
        assert snap.dataset_ids() == ["a", "b"]
        # Later mutations are invisible to the snapshot.
        store.upsert(make_feature("c"))
        store.remove("a")
        assert snap.dataset_ids() == ["a", "b"]
        assert snap.version != store.version
        assert snap.get("a").dataset_id == "a"

    def test_snapshot_version_matches_source_at_copy_time(self, store):
        store.upsert(make_feature("a"))
        before = store.version
        snap = store.snapshot()
        assert snap.version == before

    def test_every_mutator_raises(self, store):
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        cases = [
            lambda: snap.upsert(make_feature("x")),
            lambda: snap.remove("a"),
            lambda: snap.clear(),
            lambda: snap.upsert_many([make_feature("x")]),
            lambda: snap.remove_many(["a"]),
            lambda: snap.apply_batch([make_feature("x")], ["a"]),
            lambda: snap.replace_all([make_feature("x")]),
            lambda: snap.rename_variables({"water_temperature": "t"}),
            lambda: snap.rename_units({"C": "K"}),
            lambda: snap.set_excluded(["water_temperature"]),
            lambda: snap.set_ambiguous(["water_temperature"]),
        ]
        for mutate in cases:
            with pytest.raises(SnapshotMutationError):
                mutate()
        # Nothing moved.
        assert snap.dataset_ids() == ["a"]

    def test_snapshot_of_snapshot_is_itself(self, store):
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        assert snap.snapshot() is snap

    def test_get_returns_copies(self, store):
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        feature = snap.get("a")
        feature.variables[0].name = "mutated"
        assert snap.get("a").variables[0].name == "water_temperature"

    def test_missing_dataset_raises(self, store):
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        with pytest.raises(DatasetNotFoundError):
            snap.get("nope")

    def test_contains_and_len(self, store):
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        assert snap.contains("a")
        assert not snap.contains("b")
        assert len(snap) == 1


class TestAtomicBatches:
    def test_apply_batch_single_version_bump(self, store):
        store.upsert_many([make_feature("a"), make_feature("b")])
        before = store.version
        upserted, removed = store.apply_batch(
            [make_feature("c"), make_feature("a", row_count=99)], ["b"]
        )
        assert (upserted, removed) == (2, 1)
        assert store.version == before + 1
        assert store.dataset_ids() == ["a", "c"]
        assert store.get("a").row_count == 99

    def test_apply_batch_skips_absent_removals(self, store):
        store.upsert(make_feature("a"))
        before = store.version
        upserted, removed = store.apply_batch((), ["ghost", "a"])
        assert (upserted, removed) == (0, 1)
        assert store.version == before + 1

    def test_empty_apply_batch_does_not_bump(self, store):
        store.upsert(make_feature("a"))
        before = store.version
        assert store.apply_batch((), ()) == (0, 0)
        assert store.version == before

    def test_replace_all_single_bump_no_empty_state(self, store):
        store.upsert_many([make_feature("a"), make_feature("b")])
        before = store.version
        count = store.replace_all([make_feature("z")])
        assert count == 1
        assert store.version == before + 1
        assert store.dataset_ids() == ["z"]

    def test_copy_into_is_one_bump(self, store):
        store.upsert_many([make_feature("a"), make_feature("b")])
        target = MemoryCatalog()
        target.upsert(make_feature("stale"))
        before = target.version
        assert store.copy_into(target) == 2
        assert target.version == before + 1
        assert target.dataset_ids() == ["a", "b"]


class TestSnapshotIsolation:
    """A search racing a re-wrangle sees exactly one catalog version."""

    ROUNDS = 30
    DATASETS = 8

    def test_snapshots_never_tear_across_apply_batch(self, store):
        # Writer: each round rewrites EVERY dataset with row_count =
        # round, as one atomic batch.  Reader: snapshots continuously;
        # every snapshot must be internally uniform — all row_counts
        # equal — or it straddled a batch.
        ids = [f"d{i}" for i in range(self.DATASETS)]
        store.apply_batch([make_feature(i, row_count=0) for i in ids], ())
        stop = threading.Event()
        torn: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                snap = store.snapshot()
                counts = {f.row_count for f in snap.features()}
                if len(counts) != 1:
                    torn.append(f"mixed row_counts {sorted(counts)}")
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for round_number in range(1, self.ROUNDS + 1):
                store.apply_batch(
                    [
                        make_feature(i, row_count=round_number)
                        for i in ids
                    ],
                    (),
                )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not torn, torn[0]
        assert not thread.is_alive()

    def test_writers_not_blocked_by_snapshot_holders(self, store):
        # Functional (not timing) check: a thread that *holds* a
        # snapshot and reads it in a loop imposes nothing on the live
        # store — the writer completes all its rounds while the reader
        # thread never touches the store again after the copy.
        store.upsert(make_feature("a"))
        snap = store.snapshot()
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                assert snap.get("a").dataset_id == "a"

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for round_number in range(self.ROUNDS):
                store.apply_batch(
                    [make_feature("a", row_count=round_number)], ()
                )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert store.get("a").row_count == self.ROUNDS - 1
        # The held snapshot still serves its original version.
        assert snap.get("a").row_count == 10


class TestGenericFallback:
    def test_abc_default_snapshot_via_optimistic_read(self):
        # A store that inherits only the ABC defaults still snapshots
        # correctly when quiescent.
        from repro.catalog.flaky import FlakyCatalogStore
        from repro.core.faults import FaultSchedule

        inner = MemoryCatalog()
        inner.upsert(make_feature("a"))
        wrapper = FlakyCatalogStore(
            inner, FaultSchedule(seed=1, rate=0.0)
        )
        snap = wrapper.snapshot()
        assert snap.dataset_ids() == ["a"]
        assert snap.version == inner.version

"""Property-based tests (hypothesis) on the core data structures and
invariants: distances, fingerprints, intervals, boxes, scoring, stores."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import DatasetFeature, MemoryCatalog, VariableEntry
from repro.core import Query, ScoringConfig, VariableTerm, score_feature
from repro.geo import BoundingBox, GeoPoint, TimeInterval, haversine_km
from repro.text import (
    damerau_levenshtein,
    fingerprint,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    ngram_fingerprint,
    normalize_name,
)

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789- ", min_size=0,
    max_size=24,
)
short_names = st.text(
    alphabet="abcdefghijk_", min_size=0, max_size=12
)
lats = st.floats(min_value=-90, max_value=90, allow_nan=False)
lons = st.floats(min_value=-180, max_value=180, allow_nan=False)
epochs = st.floats(min_value=-1e10, max_value=1e10, allow_nan=False)


class TestTextProperties:
    @given(short_names, short_names)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_names, short_names, short_names)
    @settings(max_examples=50)
    def test_levenshtein_triangle(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_names)
    def test_levenshtein_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_names, short_names)
    def test_damerau_at_most_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short_names, short_names)
    def test_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(names)
    def test_fingerprint_idempotent(self, value):
        assert fingerprint(fingerprint(value)) == fingerprint(value)

    @given(names)
    def test_fingerprint_case_invariant(self, value):
        assert fingerprint(value.upper()) == fingerprint(value.lower())

    @given(names)
    def test_ngram_fingerprint_deterministic(self, value):
        assert ngram_fingerprint(value) == ngram_fingerprint(value)

    @given(names)
    def test_normalize_name_idempotent(self, value):
        once = normalize_name(value)
        assert normalize_name(once) == once


class TestGeoProperties:
    @given(lats, lons, lats, lons)
    def test_haversine_symmetric_nonnegative(self, a, b, c, d):
        d1 = haversine_km(a, b, c, d)
        assert d1 >= 0.0
        assert d1 == haversine_km(c, d, a, b)

    @given(lats, lons)
    def test_haversine_self_zero(self, lat, lon):
        assert haversine_km(lat, lon, lat, lon) == 0.0

    @given(st.lists(st.tuples(lats, lons), min_size=1, max_size=8))
    def test_bbox_contains_its_points(self, coordinates):
        points = [GeoPoint(lat, lon) for lat, lon in coordinates]
        box = BoundingBox.from_points(points)
        for point in points:
            assert box.contains_point(point)
            assert box.distance_km_to_point(point) == 0.0

    @given(st.lists(st.tuples(lats, lons), min_size=1, max_size=6),
           lats, lons)
    def test_bbox_distance_lower_bounds_point_distances(
        self, coordinates, qlat, qlon
    ):
        points = [GeoPoint(lat, lon) for lat, lon in coordinates]
        box = BoundingBox.from_points(points)
        query = GeoPoint(qlat, qlon)
        box_distance = box.distance_km_to_point(query)
        nearest_point = min(p.distance_km(query) for p in points)
        # Lat/lon clamping is exact regionally; allow the documented
        # ~0.1% slack at planetary scales.
        assert box_distance <= nearest_point * 1.001 + 1e-6


class TestIntervalProperties:
    @given(epochs, st.floats(min_value=0, max_value=1e8), epochs,
           st.floats(min_value=0, max_value=1e8))
    def test_gap_overlap_exclusive(self, s1, d1, s2, d2):
        a = TimeInterval(s1, s1 + d1)
        b = TimeInterval(s2, s2 + d2)
        if a.overlaps(b):
            assert a.gap_seconds(b) == 0.0
        else:
            assert a.gap_seconds(b) > 0.0
            assert a.overlap_seconds(b) == 0.0

    @given(epochs, st.floats(min_value=0, max_value=1e8), epochs,
           st.floats(min_value=0, max_value=1e8))
    def test_gap_symmetric(self, s1, d1, s2, d2):
        a = TimeInterval(s1, s1 + d1)
        b = TimeInterval(s2, s2 + d2)
        assert a.gap_seconds(b) == b.gap_seconds(a)

    @given(epochs, st.floats(min_value=0, max_value=1e8), epochs,
           st.floats(min_value=0, max_value=1e8))
    def test_intersection_within_both(self, s1, d1, s2, d2):
        a = TimeInterval(s1, s1 + d1)
        b = TimeInterval(s2, s2 + d2)
        inter = a.intersection(b)
        if inter is not None:
            assert inter.start >= max(a.start, b.start)
            assert inter.end <= min(a.end, b.end)

    @given(epochs, st.floats(min_value=0, max_value=1e8),
           st.floats(min_value=0, max_value=1e6))
    def test_expand_contains_original(self, start, duration, margin):
        interval = TimeInterval(start, start + duration)
        expanded = interval.expand(margin)
        assert expanded.start <= interval.start
        assert expanded.end >= interval.end


def _feature(lat, lon, t0, t1, var_lo, var_hi):
    return DatasetFeature(
        dataset_id="d",
        title="d",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat, lon),
        interval=TimeInterval(t0, t1),
        row_count=1,
        source_directory="",
        variables=[
            VariableEntry.from_written(
                "x", "m", 5, var_lo, var_hi, (var_lo + var_hi) / 2, 0.1
            )
        ],
    )


class TestScoringProperties:
    @given(lats, lons, lats, lons,
           st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=60)
    def test_score_in_unit_interval(self, flat, flon, qlat, qlon, t0, dt):
        feature = _feature(flat, flon, t0, t0 + dt, 0.0, 10.0)
        query = Query(
            location=GeoPoint(qlat, qlon),
            interval=TimeInterval(0.0, 100.0),
            variables=(VariableTerm("x", low=0.0, high=5.0),),
        )
        breakdown = score_feature(query, feature)
        assert 0.0 <= breakdown.total <= 1.0 + 1e-9

    @given(st.floats(min_value=0.1, max_value=500))
    @settings(max_examples=30)
    def test_closer_scores_higher(self, offset_degrees_tenth):
        offset = offset_degrees_tenth / 100.0
        near = _feature(46.0, -124.0, 0, 100, 0, 10)
        far = _feature(
            min(90.0, 46.0 + offset * 2), -124.0, 0, 100, 0, 10
        )
        query = Query(location=GeoPoint(min(90.0, 46.0 + offset), -124.0))
        near_score = score_feature(query, near).total
        far_score = score_feature(query, far).total
        # The query sits between them but closer to `far`'s offset * 1;
        # compare against the strictly farther dataset instead:
        base = _feature(46.0, -124.0, 0, 100, 0, 10)
        query_at_base = Query(location=GeoPoint(46.0, -124.0))
        assert score_feature(query_at_base, base).total >= (
            score_feature(query_at_base, far).total
        )

    @given(st.integers(min_value=1, max_value=20))
    def test_time_decay_monotone(self, gap_days):
        feature = _feature(46.0, -124.0, 0.0, 86400.0, 0, 10)
        config = ScoringConfig()
        closer = Query(
            interval=TimeInterval.instant(86400.0 + gap_days * 43200.0)
        )
        farther = Query(
            interval=TimeInterval.instant(86400.0 + gap_days * 86400.0)
        )
        assert score_feature(closer, feature, config=config).total >= (
            score_feature(farther, feature, config=config).total
        )


class TestStoreProperties:
    @given(st.lists(
        st.text(alphabet="abcdef/_", min_size=1, max_size=12),
        min_size=1, max_size=10, unique=True,
    ))
    def test_upsert_then_ids_sorted_unique(self, dataset_ids):
        store = MemoryCatalog()
        for dataset_id in dataset_ids:
            store.upsert(_feature(0, 0, 0, 1, 0, 1).copy())
            feature = _feature(0, 0, 0, 1, 0, 1)
            feature.dataset_id = dataset_id
            store.upsert(feature)
        ids = store.dataset_ids()
        assert ids == sorted(set(ids))
        assert set(dataset_ids) <= set(ids)

    @given(st.dictionaries(
        st.text(alphabet="abc_", min_size=1, max_size=6),
        st.text(alphabet="xyz_", min_size=1, max_size=6),
        max_size=5,
    ))
    def test_rename_is_complete(self, mapping):
        store = MemoryCatalog()
        feature = _feature(0, 0, 0, 1, 0, 1)
        feature.variables = [
            VariableEntry.from_written(name, "m", 1, 0, 1, 0.5, 0.1)
            for name in mapping
        ]
        store.upsert(feature)
        store.rename_variables(mapping)
        remaining = set(store.variable_name_counts())
        for old, new in mapping.items():
            if old != new and old not in mapping.values():
                assert old not in remaining

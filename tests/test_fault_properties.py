"""Property-based fault tolerance: bounded faults are invisible.

The central robustness guarantee, stated as a property and searched by
Hypothesis: for ANY seeded transient-fault schedule whose consecutive
failures stay below the retry budget — flaky archive reads, busy
catalog stores, at any rate — the wrangle completes and the published
catalog is byte-identical to the fault-free run, with the same
quarantine and the same typed errors.  The schedule's ``max_consecutive``
cap (2) sits below the retry budget (3 attempts), which is exactly the
condition under which every fault must be absorbed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import SMALL_SPEC
from repro.archive import generate_archive, render_archive
from repro.archive.corruption import corrupt_archive
from repro.archive.flaky import FlakyArchive
from repro.catalog import MemoryCatalog, dump_catalog
from repro.catalog.flaky import FlakyCatalogStore
from repro.core.faults import FaultSchedule
from repro.core.retry import RetryPolicy
from repro.wrangling import WranglingState
from repro.wrangling.publish import Publish
from repro.wrangling.scan import ScanArchive

FAST = RetryPolicy(attempts=3, base_delay=0.0)

#: Shared, never-mutated input: a small archive with real corruption in
#: it, so the property also covers the interaction between permanent
#: damage (quarantine) and transient faults (retry).
_ARCHIVE_FS, __ = render_archive(generate_archive(SMALL_SPEC))
corrupt_archive(_ARCHIVE_FS, seed=5, truncate=2, garble=2, decapitate=1)


def wrangle(fs, working, published):
    state = WranglingState(fs=fs, working=working, published=published)
    scan_report = ScanArchive(
        workers=1, min_parallel_files=1, retry=FAST
    ).execute(state)
    publish_report = Publish(retry=FAST).execute(state)
    return state, scan_report, publish_report


def fault_free_baseline():
    state, scan_report, publish_report = wrangle(
        _ARCHIVE_FS, MemoryCatalog(), MemoryCatalog()
    )
    return {
        "published": dump_catalog(state.published),
        "quarantine": state.quarantine.paths(),
        "scan_errors": scan_report.errors,
        "publish_errors": publish_report.errors,
    }


BASELINE = fault_free_baseline()


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    read_rate=st.floats(min_value=0.0, max_value=0.85),
    store_rate=st.floats(min_value=0.0, max_value=0.85),
)
@settings(max_examples=12, deadline=None)
def test_bounded_fault_schedules_never_change_the_published_catalog(
    seed, read_rate, store_rate
):
    flaky_fs = FlakyArchive(
        _ARCHIVE_FS,
        FaultSchedule(
            seed=seed,
            rate=read_rate,
            max_consecutive=2,
            ops=frozenset({"read"}),
        ),
    )
    working = FlakyCatalogStore(
        MemoryCatalog(),
        FaultSchedule(seed=seed + 1, rate=store_rate, max_consecutive=2),
    )
    published = FlakyCatalogStore(
        MemoryCatalog(),
        FaultSchedule(seed=seed + 2, rate=store_rate, max_consecutive=2),
    )
    state, scan_report, publish_report = wrangle(
        flaky_fs, working, published
    )

    assert dump_catalog(published.inner) == BASELINE["published"]
    assert state.quarantine.paths() == BASELINE["quarantine"]
    assert scan_report.errors == BASELINE["scan_errors"]
    assert publish_report.errors == BASELINE["publish_errors"]


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_every_absorbed_fault_is_counted_as_a_retry(seed):
    flaky_fs = FlakyArchive(
        _ARCHIVE_FS,
        FaultSchedule(
            seed=seed,
            rate=0.5,
            max_consecutive=2,
            ops=frozenset({"read"}),
        ),
    )
    __, scan_report, __ = wrangle(flaky_fs, MemoryCatalog(), MemoryCatalog())
    assert scan_report.retries == flaky_fs.schedule.total_injected

"""Unit tests for repro.text.fingerprint (Refine keyers)."""

import pytest

from repro.text import fingerprint, ngram_fingerprint


class TestFingerprint:
    def test_case_insensitive(self):
        assert fingerprint("Air_Temperature") == fingerprint(
            "air_temperature"
        )

    def test_token_order_insensitive(self):
        assert fingerprint("temperature air") == fingerprint(
            "air temperature"
        )

    def test_punctuation_insensitive(self):
        assert fingerprint("air-temperature") == fingerprint(
            "air.temperature"
        )

    def test_duplicate_tokens_collapse(self):
        assert fingerprint("air air temperature") == fingerprint(
            "air temperature"
        )

    def test_accents_stripped(self):
        assert fingerprint("Température") == fingerprint("temperature")

    def test_different_words_differ(self):
        assert fingerprint("air_temperature") != fingerprint(
            "water_temperature"
        )

    def test_idempotent(self):
        key = fingerprint("Air-Temperature")
        assert fingerprint(key) == key

    def test_empty(self):
        assert fingerprint("") == ""


class TestNgramFingerprint:
    def test_collides_joined_tokens(self):
        assert ngram_fingerprint("airtemp") == ngram_fingerprint("air_temp")

    def test_case_insensitive(self):
        assert ngram_fingerprint("AirTemp") == ngram_fingerprint("airtemp")

    def test_short_value_returned_cleaned(self):
        assert ngram_fingerprint("A") == "a"

    def test_distinguishes_unrelated(self):
        assert ngram_fingerprint("salinity") != ngram_fingerprint(
            "turbidity"
        )

    def test_bad_n_raises(self):
        with pytest.raises(ValueError):
            ngram_fingerprint("abc", n=0)

    def test_ngram_size_matters(self):
        # Larger n is stricter: values colliding at n=1 may split at n=3.
        a, b = "abc", "acb"
        assert ngram_fingerprint(a, n=1) == ngram_fingerprint(b, n=1)
        assert ngram_fingerprint(a, n=3) != ngram_fingerprint(b, n=3)

"""Unit tests for repro.refine.grel (the GREL-like expressions)."""

import pytest

from repro.refine import (
    GrelEvalError,
    GrelExpression,
    GrelSyntaxError,
    evaluate,
)


class TestLiteralsAndVariables:
    def test_value_identity(self):
        assert evaluate("value", "abc") == "abc"

    def test_string_literal(self):
        assert evaluate("'hello'", None) == "hello"
        assert evaluate('"hello"', None) == "hello"

    def test_number_literals(self):
        assert evaluate("42", None) == 42
        assert evaluate("3.5", None) == 3.5

    def test_escaped_quote(self):
        assert evaluate(r"'it\'s'", None) == "it's"

    def test_unknown_variable_raises(self):
        with pytest.raises(GrelEvalError):
            evaluate("nonexistent", "x")

    def test_cells_access(self):
        assert evaluate("cells['unit']", "x", unit="degC") == "degC"


class TestMethodsAndFunctions:
    def test_chaining(self):
        result = evaluate("value.trim().toLowercase()", "  AirTemp  ")
        assert result == "airtemp"

    def test_replace(self):
        assert evaluate("value.replace('-', '_')", "air-temp") == "air_temp"

    def test_function_call_style(self):
        assert evaluate("toUppercase(value)", "abc") == "ABC"

    def test_length(self):
        assert evaluate("value.length()", "abcd") == 4

    def test_split_and_index(self):
        assert evaluate("value.split('_')[1]", "air_temp") == "temp"

    def test_substring(self):
        assert evaluate("value.substring(0, 3)", "salinity") == "sal"
        assert evaluate("value.substring(3)", "salinity") == "inity"

    def test_predicates(self):
        assert evaluate("value.startsWith('air')", "air_temp") is True
        assert evaluate("value.endsWith('temp')", "air_temp") is True
        assert evaluate("value.contains('r_t')", "air_temp") is True

    def test_fingerprint_function(self):
        assert evaluate("value.fingerprint()", "Air-Temperature") == (
            "air temperature"
        )

    def test_to_number(self):
        assert evaluate("value.toNumber()", "3.5") == 3.5

    def test_unknown_function_raises(self):
        with pytest.raises(GrelEvalError):
            evaluate("value.frobnicate()", "x")

    def test_type_error_raises(self):
        with pytest.raises(GrelEvalError):
            evaluate("value.toLowercase()", 42)


class TestConcat:
    def test_string_concat(self):
        assert evaluate("value + '_fixed'", "name") == "name_fixed"

    def test_number_addition(self):
        assert evaluate("1 + 2", None) == 3

    def test_mixed_concat_stringifies(self):
        assert evaluate("value + 1", "v") == "v1"


class TestParsing:
    def test_grel_prefix_stripped(self):
        assert evaluate("grel:value.trim()", " x ") == "x"

    def test_reusable_expression(self):
        expr = GrelExpression("value.toLowercase()")
        assert expr.evaluate("ABC") == "abc"
        assert expr.evaluate("DeF") == "def"

    @pytest.mark.parametrize(
        "bad",
        ["value.", "value..x()", "('unclosed'", "value.replace('a',)",
         "value @ 2", "value extra"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(GrelSyntaxError):
            GrelExpression(bad)

    def test_repr(self):
        assert "value" in repr(GrelExpression("value"))

    def test_parenthesized(self):
        assert evaluate("(value)", "x") == "x"

"""The fault matrix: every corruption injector x execution mode x store.

Crosses the content-corruption injectors from
:mod:`repro.archive.corruption` with {serial, workers=4} scans and
{memory, SQLite} working catalogs, plus bounded transient-fault rows
(flaky reads, busy stores).  The contracts under test:

* a scan NEVER raises, whatever the injector broke,
* exactly the files whose parse/extract genuinely fails are quarantined
  (probed per file), and they are a subset of what the injector reports
  breaking; stray non-dataset files are ignored entirely,
* parallel scans produce byte-identical catalogs, reports and
  quarantine to serial scans — with and without injected faults,
* SQLite-backed scans match memory-backed scans byte for byte,
* bounded transient faults (below the retry budget) leave the output
  byte-identical to a fault-free run,
* the whole pipeline is deterministic: same seed + same schedule =>
  identical catalog, reports and quarantine.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import SMALL_SPEC
from repro.archive import generate_archive, parse_file, render_archive
from repro.archive.corruption import corrupt_archive
from repro.archive.flaky import FlakyArchive
from repro.catalog import MemoryCatalog, SqliteCatalog, dump_catalog
from repro.catalog.flaky import FlakyCatalogStore
from repro.core import extract_feature
from repro.core.faults import FaultSchedule
from repro.core.retry import RetryPolicy
from repro.wrangling import WranglingState
from repro.wrangling.scan import ScanArchive

FAST = RetryPolicy(attempts=3, base_delay=0.0)

INJECTORS = {
    "mixed": dict(truncate=2, garble=2, decapitate=1, strays=3),
    "truncate-only": dict(truncate=4, garble=0, decapitate=0, strays=0),
    "garble-only": dict(truncate=0, garble=4, decapitate=0, strays=0),
    "decapitate-only": dict(truncate=0, garble=0, decapitate=3, strays=0),
    "strays-only": dict(truncate=0, garble=0, decapitate=0, strays=4),
}


def catalog_payload(store):
    """The catalog as parsed JSON: backend-independent equality.

    SQLite round-trips dataset attributes through ``sort_keys=True``
    JSON, so its dump can reorder attribute keys relative to the memory
    store; parsed objects compare equal regardless of key order.
    """
    return json.loads(dump_catalog(store))


def probe_expected_quarantine(fs) -> set[str]:
    """The ground truth: dataset files whose parse/extract raises.

    Some injected damage is survivable (e.g. garbling can hit only
    NaN-tolerant cells, a truncation can land on a row boundary), so the
    expected quarantine is probed per file, not assumed from the
    injector's report.
    """
    failing = set()
    for record in fs:
        if record.extension not in ("csv", "cdl"):
            continue
        try:
            dataset = parse_file(record.content, record.path)
            extract_feature(dataset, content_hash="probe")
        except Exception:
            failing.add(record.path)
    return failing


def run_scan(fs, working=None, workers: int = 1):
    state = WranglingState(
        fs=fs, working=working if working is not None else MemoryCatalog()
    )
    scan = ScanArchive(workers=workers, min_parallel_files=1, retry=FAST)
    report = scan.execute(state)
    return state, report


def build_cell(name: str):
    archive = generate_archive(SMALL_SPEC)
    fs, __ = render_archive(archive)
    corruption = corrupt_archive(fs, seed=5, **INJECTORS[name])
    return fs, corruption


@pytest.fixture(scope="module", params=sorted(INJECTORS))
def cell(request):
    """One matrix row: corrupted fs + probe truth + serial baseline.

    The scan never mutates archive content, so the corrupted filesystem
    and the serial/memory baseline are shared by every cell of the row.
    """
    name = request.param
    fs, corruption = build_cell(name)
    expected = probe_expected_quarantine(fs)
    baseline_state, baseline_report = run_scan(fs, workers=1)
    return {
        "name": name,
        "fs": fs,
        "corruption": corruption,
        "expected": expected,
        "state": baseline_state,
        "report": baseline_report,
        "dump": dump_catalog(baseline_state.working),
    }


class TestCorruptionMatrix:
    def test_serial_scan_quarantines_exactly_the_broken_files(self, cell):
        state = cell["state"]
        assert set(state.quarantine.paths()) == cell["expected"]
        # Probe-failing files are always among what the injector broke.
        assert cell["expected"] <= cell["corruption"].broken_datasets
        # Stray non-dataset files are ignored, never quarantined.
        assert not (
            set(state.quarantine.paths())
            & set(cell["corruption"].stray_files)
        )

    def test_surviving_files_are_all_cataloged(self, cell):
        dataset_paths = {
            record.path
            for record in cell["fs"]
            if record.extension in ("csv", "cdl")
        }
        cataloged = set(cell["state"].working.dataset_ids())
        assert cataloged == dataset_paths - cell["expected"]

    def test_quarantine_reports_carry_typed_errors(self, cell):
        for path in cell["state"].quarantine.paths():
            entry = cell["state"].quarantine.get(path)
            assert entry.error.path == path
            assert entry.error.code.value in (
                "parse-error",
                "worker-error",
            )

    def test_sqlite_backend_matches_memory(self, cell):
        with SqliteCatalog() as working:
            state, report = run_scan(cell["fs"], working=working, workers=1)
            assert catalog_payload(working) == json.loads(cell["dump"])
            assert state.quarantine.paths() == cell[
                "state"
            ].quarantine.paths()
            assert report.errors == cell["report"].errors

    def test_parallel_scan_matches_serial(self, cell):
        state, report = run_scan(cell["fs"], workers=4)
        assert dump_catalog(state.working) == cell["dump"]
        assert state.quarantine.paths() == cell["state"].quarantine.paths()
        assert report.errors == cell["report"].errors
        assert report.messages == cell["report"].messages

    def test_parallel_sqlite_matches_serial_memory(self, cell):
        with SqliteCatalog() as working:
            state, __ = run_scan(cell["fs"], working=working, workers=4)
            assert catalog_payload(working) == json.loads(cell["dump"])
            assert state.quarantine.paths() == cell[
                "state"
            ].quarantine.paths()


class TestTransientFaultRows:
    """Bounded transient faults must be invisible in the output."""

    def _flaky_fs(self, fs, seed=11):
        return FlakyArchive(
            fs,
            FaultSchedule(
                seed=seed,
                rate=0.5,
                max_consecutive=2,  # always below FAST.attempts == 3
                ops=frozenset({"read"}),
            ),
        )

    def test_bounded_flaky_reads_leave_output_identical(self, cell):
        flaky = self._flaky_fs(cell["fs"])
        state, report = run_scan(flaky, workers=1)
        assert dump_catalog(state.working) == cell["dump"]
        assert state.quarantine.paths() == cell["state"].quarantine.paths()
        assert report.errors == cell["report"].errors
        # Every injected fault was absorbed by exactly one retry.
        assert report.retries == flaky.schedule.total_injected

    def test_parallel_equals_serial_under_flaky_reads(self, cell):
        serial_state, serial_report = run_scan(
            self._flaky_fs(cell["fs"]), workers=1
        )
        parallel_state, parallel_report = run_scan(
            self._flaky_fs(cell["fs"]), workers=4
        )
        assert dump_catalog(parallel_state.working) == dump_catalog(
            serial_state.working
        )
        assert (
            parallel_state.quarantine.paths()
            == serial_state.quarantine.paths()
        )
        assert parallel_report.errors == serial_report.errors
        assert parallel_report.retries == serial_report.retries

    def test_bounded_busy_store_leaves_output_identical(self, cell):
        working = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=11, rate=0.5, max_consecutive=2),
        )
        state, report = run_scan(cell["fs"], working=working, workers=1)
        assert dump_catalog(working) == cell["dump"]
        assert state.quarantine.paths() == cell["state"].quarantine.paths()
        assert report.errors == cell["report"].errors

    def test_flaky_reads_and_busy_store_together(self, cell):
        working = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=13, rate=0.5, max_consecutive=2),
        )
        state, report = run_scan(
            self._flaky_fs(cell["fs"], seed=13), working=working, workers=1
        )
        assert dump_catalog(working) == cell["dump"]
        assert state.quarantine.paths() == cell["state"].quarantine.paths()
        assert report.errors == cell["report"].errors


class TestTelemetryContract:
    """Quarantines and injected faults must be observable in telemetry:
    every quarantined file increments ``scan.quarantined`` and emits a
    ``scan.quarantine`` event carrying its typed ``error_code``, and
    counter totals are identical whether the scan ran serial or
    parallel."""

    def _traced_scan(self, fs, workers: int = 1, working=None):
        from repro.obs import Telemetry, use_telemetry

        telemetry = Telemetry()
        with use_telemetry(telemetry):
            state, report = run_scan(fs, working=working, workers=workers)
        return state, report, telemetry.snapshot()

    def test_quarantines_count_and_emit_coded_events(self, cell):
        state, __, snapshot = self._traced_scan(cell["fs"])
        expected = cell["expected"]
        assert snapshot["counters"].get("scan.quarantined", 0) == len(
            expected
        )
        events = [
            span
            for span in snapshot["spans"]
            if span["name"] == "scan.quarantine"
        ]
        assert {event["attrs"]["path"] for event in events} == expected
        for event in events:
            assert event["attrs"]["error_code"] in (
                "parse-error",
                "worker-error",
            )

    def test_parallel_counter_totals_equal_serial(self, cell):
        __, __, serial = self._traced_scan(cell["fs"], workers=1)
        __, __, parallel = self._traced_scan(cell["fs"], workers=4)
        assert serial["counters"] == parallel["counters"]
        assert (
            serial["histograms"]["scan.file_seconds"]["count"]
            == parallel["histograms"]["scan.file_seconds"]["count"]
        )

    def test_injected_faults_are_split_from_organic(self, cell):
        flaky = FlakyArchive(
            cell["fs"],
            FaultSchedule(
                seed=11,
                rate=0.5,
                max_consecutive=2,
                ops=frozenset({"read"}),
            ),
        )
        __, report, snapshot = self._traced_scan(flaky)
        counters = snapshot["counters"]
        assert (
            counters.get("fault.injected", 0)
            == flaky.schedule.total_injected
        )
        # Every injected fault was absorbed by a retry, and nothing was
        # organically flaky in this run: absorbed == injected.
        assert counters.get("retry.absorbed", 0) == counters.get(
            "fault.injected", 0
        )
        assert report.retries == counters.get("retry.absorbed", 0)

    def test_busy_store_retries_are_counted(self, cell):
        working = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=11, rate=0.5, max_consecutive=2),
        )
        __, report, snapshot = self._traced_scan(
            cell["fs"], working=working
        )
        counters = snapshot["counters"]
        assert (
            counters.get("fault.injected", 0)
            == working.schedule.total_injected
        )
        assert counters.get("retry.absorbed", 0) == counters.get(
            "fault.injected", 0
        )


class TestDeterminism:
    def test_same_seed_and_schedule_reproduce_everything(self):
        def one_run():
            fs, __ = build_cell("mixed")
            flaky = FlakyArchive(
                fs,
                FaultSchedule(
                    seed=23,
                    rate=0.5,
                    max_consecutive=2,
                    ops=frozenset({"read"}),
                ),
            )
            state, report = run_scan(flaky, workers=1)
            return (
                dump_catalog(state.working),
                state.quarantine.paths(),
                report.errors,
                report.messages,
                report.retries,
                flaky.schedule.injected,
            )

        assert one_run() == one_run()

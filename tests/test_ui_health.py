"""Unit tests for the catalog health report."""

import pytest

from repro.catalog import MemoryCatalog
from repro.ui import measure_health, render_health_report
from repro.wrangling import (
    PerformKnownTransformations,
    ScanArchive,
    WranglingState,
)


@pytest.fixture()
def wrangled_state(messy_fs):
    fs, __ = messy_fs
    state = WranglingState(fs=fs)
    ScanArchive().execute(state)
    PerformKnownTransformations().execute(state)
    return state


class TestMeasureHealth:
    def test_counts(self, wrangled_state):
        health = measure_health(wrangled_state.working)
        assert health.dataset_count == len(wrangled_state.working)
        assert sum(health.datasets_by_platform.values()) == (
            health.dataset_count
        )
        assert sum(health.datasets_by_format.values()) == (
            health.dataset_count
        )

    def test_hulls_cover_everything(self, wrangled_state):
        health = measure_health(wrangled_state.working)
        for feature in wrangled_state.working:
            assert health.spatial_hull.intersects(feature.bbox)
            assert health.temporal_hull.overlaps(feature.interval)

    def test_resolution_fraction_improves_with_wrangling(self, messy_fs):
        fs, __ = messy_fs
        raw_state = WranglingState(fs=fs)
        ScanArchive().execute(raw_state)
        raw = measure_health(raw_state.working)
        PerformKnownTransformations().execute(raw_state)
        tamed = measure_health(raw_state.working)
        assert tamed.resolved_fraction > raw.resolved_fraction

    def test_empty_catalog(self):
        health = measure_health(MemoryCatalog())
        assert health.dataset_count == 0
        assert health.spatial_hull is None
        assert health.resolved_fraction == 1.0

    def test_excluded_counts_as_tamed(self, wrangled_state):
        health = measure_health(wrangled_state.working)
        assert health.excluded_entries > 0
        # Excluded names never appear in the unresolved list.
        for feature in wrangled_state.working:
            for entry in feature.variables:
                if entry.excluded:
                    assert entry.name not in health.unresolved_names or any(
                        e.name == entry.name and not e.excluded
                        for f in wrangled_state.working
                        for e in f.variables
                    )


class TestRenderReport:
    def test_sections_present(self, wrangled_state):
        page = render_health_report(wrangled_state.working)
        assert "Catalog health report" in page
        assert "datasets:" in page
        assert "spatial coverage:" in page
        assert "temporal coverage:" in page
        assert "tamed" in page

    def test_validation_line(self, wrangled_state):
        from repro.wrangling import validate

        summary = validate(wrangled_state).summary()
        page = render_health_report(
            wrangled_state.working, validation_summary=summary
        )
        assert "validation:" in page

    def test_unresolved_listing_truncated(self):
        from tests.test_core_search import feature

        catalog = MemoryCatalog()
        catalog.upsert(
            feature("d", 46.0, -124.0, 0, 1,
                    [(f"mystery_{i:02d}", 0, 1) for i in range(15)])
        )
        page = render_health_report(catalog)
        assert "+5 more" in page

    def test_cli_report_command(self, messy_fs, tmp_path, capsys):
        from repro.cli import main

        fs, __ = messy_fs
        archive_dir = str(tmp_path / "arch")
        fs.export_to(archive_dir)
        catalog_path = str(tmp_path / "cat.db")
        main(["wrangle", archive_dir, "--catalog", catalog_path])
        capsys.readouterr()
        assert main(["report", catalog_path]) == 0
        assert "Catalog health report" in capsys.readouterr().out


class TestTelemetryRenderers:
    def _snapshot(self):
        from repro.obs import Telemetry

        t = Telemetry()
        with t.span("wrangle"):
            with t.span("scan-archive"):
                t.count("scan.seen", 5)
                t.observe("scan.file_seconds", 0.002)
        t.gauge("catalog.size", 5)
        return t.snapshot()

    def test_span_tree_is_indented_execution_order(self):
        from repro.ui import render_span_tree

        page = render_span_tree(self._snapshot())
        lines = page.splitlines()
        assert lines[0] == "Span timings"
        wrangle = next(i for i, l in enumerate(lines) if "wrangle" in l)
        scan = next(i for i, l in enumerate(lines) if "scan-archive" in l)
        assert wrangle < scan
        assert lines[scan].startswith("  scan-archive")

    def test_span_tree_empty_snapshot(self):
        from repro.obs import Telemetry
        from repro.ui import render_span_tree

        page = render_span_tree(Telemetry().snapshot())
        assert "no spans recorded" in page

    def test_telemetry_report_sections(self):
        from repro.ui import render_telemetry_report

        page = render_telemetry_report(self._snapshot())
        assert "Counters" in page
        assert "scan.seen" in page
        assert "Gauges" in page
        assert "Latency histograms" in page
        assert "scan.file_seconds" in page

    def test_telemetry_report_splits_injected_from_organic(self):
        from repro.obs import Telemetry
        from repro.ui import render_telemetry_report

        t = Telemetry()
        t.count("retry.absorbed", 5)
        t.count("fault.injected", 3)
        page = render_telemetry_report(t.snapshot())
        assert "5 absorbed (3 injected, 2 organic)" in page

"""Unit tests for repro.geo.timeinterval."""

from datetime import datetime, timezone

import pytest

from repro.geo import (
    EmptyIntervalSetError,
    TimeInterval,
    from_epoch,
    to_epoch,
)


@pytest.fixture()
def summer_2010():
    return TimeInterval.from_datetimes(
        datetime(2010, 6, 1), datetime(2010, 8, 31)
    )


class TestConstruction:
    def test_reversed_endpoints_raise(self):
        with pytest.raises(ValueError):
            TimeInterval(100.0, 50.0)

    def test_non_finite_raises(self):
        with pytest.raises(ValueError):
            TimeInterval(float("nan"), 0.0)

    def test_instant_is_legal(self):
        instant = TimeInterval.instant(1000.0)
        assert instant.duration_seconds == 0.0

    def test_from_datetimes_naive_is_utc(self):
        interval = TimeInterval.from_datetimes(
            datetime(2010, 1, 1), datetime(2010, 1, 2)
        )
        assert interval.duration_days == pytest.approx(1.0)

    def test_hull(self):
        hull = TimeInterval.hull(
            [TimeInterval(10, 20), TimeInterval(5, 12), TimeInterval(18, 30)]
        )
        assert hull.as_tuple() == (5, 30)

    def test_hull_empty_raises(self):
        with pytest.raises(EmptyIntervalSetError):
            TimeInterval.hull([])


class TestEpochConversion:
    def test_roundtrip(self):
        dt = datetime(2010, 7, 15, 12, 30, tzinfo=timezone.utc)
        assert from_epoch(to_epoch(dt)) == dt

    def test_start_end_datetimes(self, summer_2010):
        assert summer_2010.start_datetime.year == 2010
        assert summer_2010.end_datetime.month == 8


class TestAlgebra:
    def test_contains(self, summer_2010):
        july = to_epoch(datetime(2010, 7, 1))
        assert summer_2010.contains(july)
        assert not summer_2010.contains(to_epoch(datetime(2011, 7, 1)))

    def test_contains_endpoints(self):
        interval = TimeInterval(10, 20)
        assert interval.contains(10)
        assert interval.contains(20)

    def test_overlaps_true(self):
        assert TimeInterval(0, 10).overlaps(TimeInterval(5, 15))

    def test_overlaps_touching(self):
        assert TimeInterval(0, 10).overlaps(TimeInterval(10, 20))

    def test_overlaps_false(self):
        assert not TimeInterval(0, 10).overlaps(TimeInterval(11, 20))

    def test_overlap_seconds(self):
        assert TimeInterval(0, 10).overlap_seconds(TimeInterval(5, 15)) == 5

    def test_overlap_seconds_disjoint_is_zero(self):
        assert TimeInterval(0, 10).overlap_seconds(TimeInterval(20, 30)) == 0

    def test_gap_zero_when_overlapping(self):
        assert TimeInterval(0, 10).gap_seconds(TimeInterval(5, 15)) == 0

    def test_gap_when_before(self):
        assert TimeInterval(0, 10).gap_seconds(TimeInterval(15, 20)) == 5

    def test_gap_when_after(self):
        assert TimeInterval(15, 20).gap_seconds(TimeInterval(0, 10)) == 5

    def test_gap_symmetric(self):
        a, b = TimeInterval(0, 10), TimeInterval(25, 30)
        assert a.gap_seconds(b) == b.gap_seconds(a)

    def test_intersection(self):
        inter = TimeInterval(0, 10).intersection(TimeInterval(5, 15))
        assert inter is not None
        assert inter.as_tuple() == (5, 10)

    def test_intersection_disjoint_none(self):
        assert TimeInterval(0, 10).intersection(TimeInterval(20, 30)) is None

    def test_union_hull_covers_gap(self):
        hull = TimeInterval(0, 10).union_hull(TimeInterval(20, 30))
        assert hull.as_tuple() == (0, 30)

    def test_expand(self):
        assert TimeInterval(10, 20).expand(5).as_tuple() == (5, 25)

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            TimeInterval(10, 20).expand(-1)

    def test_midpoint(self):
        assert TimeInterval(10, 20).midpoint == 15

    def test_str_contains_dates(self, summer_2010):
        assert "2010-06-01" in str(summer_2010)

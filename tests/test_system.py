"""Unit tests for the DataNearHere facade."""

from datetime import datetime

import pytest

from repro import (
    DataNearHere,
    GeoPoint,
    NotWrangledError,
    Query,
    TimeInterval,
    VariableTerm,
)


@pytest.fixture()
def system(messy_fs):
    fs, __ = messy_fs
    return DataNearHere(fs)


def paper_query():
    return Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval.from_datetimes(
            datetime(2010, 5, 1), datetime(2010, 8, 31)
        ),
        variables=(VariableTerm("water_temperature", low=5, high=10),),
    )


class TestLifecycle:
    def test_search_before_wrangle_raises(self, system):
        with pytest.raises(NotWrangledError):
            system.search(paper_query())

    def test_wrangle_then_search(self, system):
        report = system.wrangle()
        assert report.total_changes > 0
        results = system.search(paper_query(), limit=5)
        assert results
        assert results[0].score >= results[-1].score

    def test_validate_works_anytime(self, system):
        system.wrangle()
        assert system.validate().checks_run > 0

    def test_rewrangle_refreshes_engine(self, system):
        system.wrangle()
        first = {r.dataset_id for r in system.search(paper_query(), limit=50)}
        victim = next(iter(first))
        system.state.fs.remove(victim)
        system.wrangle()
        second = {
            r.dataset_id for r in system.search(paper_query(), limit=50)
        }
        assert victim not in second


class TestFastPath:
    def test_repeat_search_hits_cache(self, system):
        system.wrangle()
        first = system.search(paper_query(), limit=5)
        second = system.search(paper_query(), limit=5)
        assert [r.dataset_id for r in first] == [
            r.dataset_id for r in second
        ]
        assert system.search_stats()["cache"]["hits"] >= 1

    def test_mutation_after_wrangle_invalidates_everything(self, system):
        """Editing the published catalog must stale both the indexes and
        the query cache — no stale page may be served."""
        system.wrangle()
        baseline = system.search(paper_query(), limit=5)
        engine = system.engine
        victim = baseline[0].dataset_id
        engine.catalog.remove(victim)
        assert not engine.stats()["indexes_current"]
        hits_before = engine.cache.stats()["hits"]
        after = system.search(paper_query(), limit=5)
        assert victim not in {r.dataset_id for r in after}
        # The post-mutation query missed: the old entry's version key no
        # longer matches.
        assert engine.cache.stats()["hits"] == hits_before

    def test_rewrangle_is_incremental(self, system):
        """Re-wrangling reuses the engine and folds the delta in rather
        than rebuilding from scratch; the indexes come out current."""
        system.wrangle()
        engine = system.engine
        victim = system.engine.catalog.dataset_ids()[0]
        system.state.fs.remove(victim)
        system.wrangle()
        assert system.engine is engine
        stats = system.search_stats()
        assert stats["indexes_current"]
        assert victim not in set(engine.catalog.dataset_ids())

    def test_unchanged_rewrangle_keeps_cache_warm(self, system):
        system.wrangle()
        system.search(paper_query(), limit=5)
        misses = system.engine.cache.stats()["misses"]
        system.wrangle()  # nothing changed in the archive
        system.search(paper_query(), limit=5)
        stats = system.search_stats()["cache"]
        assert stats["misses"] == misses
        assert stats["hits"] >= 1


class TestPages:
    def test_search_page(self, system):
        system.wrangle()
        page = system.search_page(paper_query(), limit=3)
        assert "Data Near Here" in page

    def test_summary_page(self, system):
        system.wrangle()
        hit = system.search(paper_query(), limit=1)[0]
        page = system.summary_page(hit.dataset_id)
        assert hit.dataset_id in page


class TestBaseline:
    def test_baseline_engine_shares_catalog(self, system):
        system.wrangle()
        baseline = system.baseline_engine()
        assert len(baseline.catalog) == len(system.engine.catalog)

    def test_ranked_dominates_baseline_on_partial_match(self, system):
        system.wrangle()
        query = Query(
            location=GeoPoint(45.5, -124.4),
            radius_km=5.0,
            interval=TimeInterval.from_datetimes(
                datetime(2010, 5, 1), datetime(2010, 5, 2)
            ),
            variables=(VariableTerm("nitrate", low=39.0, high=40.0),),
        )
        boolean_hits = system.baseline_engine().search(query, limit=10)
        ranked_hits = system.search(query, limit=10)
        assert len(ranked_hits) >= len(boolean_hits)
        assert ranked_hits  # ranked always has something to offer


class TestCuratorIntegration:
    def test_curator_session_shares_state(self, system):
        session = system.curator_session()
        session.run()
        # The facade's engine sees the session's published catalog after
        # re-wrangling through the facade.
        system.wrangle()
        assert len(system.engine.catalog) > 0


class TestSimilar:
    def test_similar_over_published_catalog(self, system):
        system.wrangle()
        seed = system.engine.catalog.dataset_ids()[0]
        neighbours = system.similar(seed, limit=3)
        assert len(neighbours) == 3
        assert all(n.dataset_id != seed for n in neighbours)
        scores = [n.score for n in neighbours]
        assert scores == sorted(scores, reverse=True)

    def test_similar_before_wrangle_raises(self, system):
        with pytest.raises(NotWrangledError):
            system.similar("anything")

"""Columnar scoring is exactly the object path, property-tested.

The exactness argument (DESIGN note 15): every scalar kernel the
columnar loop calls — box/point distance, interval gap, range and name
similarity — is the *same function* the object path delegates to, the
term weights and prune floor come from the same :class:`QueryScorer`
instance, and rows are laid out in sorted-dataset-id order (the order
``dataset_ids()`` yields).  Hypothesis searches for counterexamples
across random catalogs, query shapes, limits and shard counts; equality
is checked on ids, scores, order AND the full per-term breakdowns —
the way ``test_search_sharded.py`` pins sharded == serial.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.columnar import ColumnarSnapshot
from repro.core.query import Query, VariableTerm
from repro.core.search import SearchEngine
from repro.geo import BoundingBox, GeoPoint, TimeInterval

VARIABLE_POOL = [
    "water_temperature",
    "salinity",
    "dissolved_oxygen",
    "chlorophyll",
    "wind_speed",
]

finite_lat = st.floats(
    min_value=42.0, max_value=49.0, allow_nan=False, allow_infinity=False
)
finite_lon = st.floats(
    min_value=-127.0, max_value=-121.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def features(draw, index: int):
    lat = draw(finite_lat)
    lon = draw(finite_lon)
    start = draw(st.floats(min_value=0.0, max_value=1e7))
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    excluded = draw(
        st.lists(st.booleans(), min_size=len(names), max_size=len(names))
    )
    variables = [
        VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
        for name in names
    ]
    # Columnar freezing must skip excluded variables exactly like
    # ``searchable_variables()`` does; flip some on to prove it.
    variables = [
        dataclasses.replace(v, excluded=True)
        if flag and len(names) > 1 else v
        for v, flag in zip(variables, excluded)
    ]
    return DatasetFeature(
        dataset_id=f"ds_{index:04d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon, lat + draw(st.floats(0.0, 0.5)),
            lon + draw(st.floats(0.0, 0.5)),
        ),
        interval=TimeInterval(start, start + draw(st.floats(0.0, 1e6))),
        row_count=draw(st.integers(1, 500)),
        source_directory="",
        variables=variables,
    )


@st.composite
def catalogs(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    catalog = MemoryCatalog()
    catalog.upsert_many(
        [draw(features(index)) for index in range(count)]
    )
    return catalog


@st.composite
def queries(draw):
    location = None
    radius = 50.0
    if draw(st.booleans()):
        location = GeoPoint(draw(finite_lat), draw(finite_lon))
        radius = draw(st.floats(min_value=1.0, max_value=500.0))
    interval = None
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=1e7))
        interval = TimeInterval(
            start, start + draw(st.floats(0.0, 1e6))
        )
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=0 if (location or interval) else 1,
            max_size=2,
            unique=True,
        )
    )
    return Query(
        location=location,
        radius_km=radius,
        interval=interval,
        variables=tuple(VariableTerm(name=name) for name in names),
    )


def page(results):
    return [
        (r.dataset_id, r.score, r.breakdown) for r in results
    ]


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=40, deadline=None)
def test_columnar_page_equals_object_page(catalog, query, limit):
    columnar = SearchEngine(catalog, cache=False, columnar=True)
    objects = SearchEngine(catalog, cache=False, columnar=False)
    expected = objects.search(query, limit=limit)
    actual = columnar.search(query, limit=limit)
    assert page(actual) == page(expected)
    assert actual.total_matches == expected.total_matches
    # The columnar page defers feature materialization; the results the
    # caller sees must still carry real features.
    assert all(r.feature is not None for r in actual)


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=20, deadline=None)
def test_columnar_with_indexes_equals_object(catalog, query, limit):
    # Columnar scanning composes with candidate pruning and the
    # excluded-bound remainder rescan.
    columnar = SearchEngine(catalog, cache=False, columnar=True)
    columnar.build_indexes()
    objects = SearchEngine(catalog, cache=False, columnar=False)
    objects.build_indexes()
    expected = objects.search(query, limit=limit)
    actual = columnar.search(query, limit=limit)
    assert page(actual) == page(expected)
    assert actual.total_matches == expected.total_matches


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
    workers=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=20, deadline=None)
def test_columnar_sharded_equals_object_serial(
    catalog, query, limit, workers
):
    # Both optimizations at once: columnar row-range shards vs the
    # serial object path.
    serial = SearchEngine(catalog, cache=False, columnar=False)
    sharded = SearchEngine(
        catalog, cache=False, columnar=True,
        shard_workers=workers, shard_threshold=1,
    )
    try:
        expected = serial.search(query, limit=limit)
        actual = sharded.search(query, limit=limit)
        assert page(actual) == page(expected)
    finally:
        sharded.close()


@given(catalog=catalogs(), query=queries())
@settings(max_examples=20, deadline=None)
def test_columnar_score_all_equals_object(catalog, query):
    columnar = SearchEngine(catalog, cache=False, columnar=True)
    objects = SearchEngine(catalog, cache=False, columnar=False)
    assert columnar.score_all(query) == objects.score_all(query)


@given(catalog=catalogs())
@settings(max_examples=20, deadline=None)
def test_freeze_layout_matches_searchable_variables(catalog):
    features = list(catalog.features())
    view = ColumnarSnapshot(features, version=catalog.version)
    assert view.ids == sorted(f.dataset_id for f in features)
    by_id = {f.dataset_id: f for f in features}
    for row, dataset_id in enumerate(view.ids):
        feature = by_id[dataset_id]
        lo, hi = view.var_offsets[row], view.var_offsets[row + 1]
        frozen = [
            (view.names[view.var_name_ids[k]], view.var_counts[k],
             view.var_mins[k], view.var_maxs[k])
            for k in range(lo, hi)
        ]
        assert frozen == [
            (v.name, v.count, v.minimum, v.maximum)
            for v in feature.searchable_variables()
        ]
        assert view.min_lat[row] == feature.bbox.min_lat
        assert view.t_end[row] == feature.interval.end


def test_stale_columnar_view_is_refrozen_after_edit():
    catalog = MemoryCatalog()
    make = lambda i, name: DatasetFeature(  # noqa: E731
        dataset_id=f"ds_{i}",
        title=f"d{i}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
        ],
    )
    catalog.upsert(make(0, "salinity"))
    engine = SearchEngine(catalog, cache=False, columnar=True)
    query = Query(variables=(VariableTerm(name="salinity"),))
    assert [r.dataset_id for r in engine.search(query)] == ["ds_0"]
    first = engine.columnar_view()
    catalog.upsert(make(1, "salinity"))
    assert [r.dataset_id for r in engine.search(query)] == [
        "ds_0", "ds_1"
    ]
    second = engine.columnar_view()
    assert second is not first
    assert second.version == catalog.version


def test_columnar_disabled_has_no_view():
    catalog = MemoryCatalog()
    engine = SearchEngine(catalog, cache=False, columnar=False)
    assert engine.columnar_view() is None
    assert engine.stats()["columnar"] is False


def test_snapshot_shares_one_freeze_across_engines():
    catalog = MemoryCatalog()
    catalog.upsert(
        DatasetFeature(
            dataset_id="only",
            title="only",
            platform="station",
            file_format="csv",
            bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
            interval=TimeInterval(0.0, 1000.0),
            row_count=10,
            source_directory="",
            variables=[
                VariableEntry.from_written(
                    "salinity", "psu", 10, 0.0, 30.0, 15.0, 5.0
                )
            ],
        )
    )
    snapshot = catalog.snapshot()
    one = SearchEngine(snapshot, cache=False).columnar_view()
    two = SearchEngine(snapshot, cache=False).columnar_view()
    assert one is two  # frozen once, cached on the snapshot
    assert len(one) == 1

"""Unit tests for repro.semantics.units."""

import pytest

from repro.semantics import (
    UnitRegistry,
    UnknownUnitError,
    unit_normalization_mapping,
)


@pytest.fixture()
def registry():
    return UnitRegistry()


class TestNormalization:
    def test_paper_synonyms(self, registry):
        assert registry.normalize("C") == "degC"
        assert registry.normalize("Centigrade") == "degC"

    def test_same_family(self, registry):
        assert registry.same_family("C", "degC")
        assert registry.same_family("mbar", "hPa")
        assert not registry.same_family("degC", "PSU")

    def test_is_known(self, registry):
        assert registry.is_known("psu")
        assert not registry.is_known("furlongs")


class TestConversion:
    def test_identity_within_family(self, registry):
        assert registry.convert(12.5, "C", "degC") == 12.5

    def test_fahrenheit_to_celsius(self, registry):
        assert registry.convert(32.0, "degF", "degC") == pytest.approx(0.0)
        assert registry.convert(212.0, "degF", "degC") == pytest.approx(100.0)

    def test_celsius_to_fahrenheit_inverse(self, registry):
        assert registry.convert(
            registry.convert(18.5, "degC", "degF"), "degF", "degC"
        ) == pytest.approx(18.5)

    def test_kelvin(self, registry):
        assert registry.convert(273.15, "K", "degC") == pytest.approx(0.0)

    def test_oxygen_mg_per_l_to_micromolar(self, registry):
        assert registry.convert(1.0, "mg/L", "uM") == pytest.approx(
            31.25, abs=0.05
        )

    def test_pressure(self, registry):
        assert registry.convert(1.0, "dbar", "hPa") == pytest.approx(100.0)

    def test_unknown_pair_raises(self, registry):
        with pytest.raises(UnknownUnitError):
            registry.convert(1.0, "degC", "PSU")

    def test_convertible(self, registry):
        assert registry.convertible("degF", "degC")
        assert registry.convertible("C", "Centigrade")  # same family
        assert not registry.convertible("PSU", "m")

    def test_spelling_normalized_before_convert(self, registry):
        # 'millibar' is an hPa spelling; decibar is a dbar spelling.
        assert registry.convert(10.0, "decibar", "millibar") == (
            pytest.approx(1000.0)
        )


class TestNormalizationMapping:
    def test_identity_entries_dropped(self):
        mapping = unit_normalization_mapping(["degC", "C", "psu", "weird"])
        assert mapping == {"C": "degC", "psu": "PSU"}

    def test_empty(self):
        assert unit_normalization_mapping([]) == {}

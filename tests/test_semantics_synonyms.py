"""Unit tests for repro.semantics.synonyms."""

import pytest

from repro.semantics import (
    SynonymConflictError,
    SynonymTable,
    vocabulary_synonym_table,
)


class TestSynonymTable:
    def test_add_and_resolve(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        assert table.resolve("salt") == "salinity"
        assert table.resolve("salinity") == "salinity"

    def test_resolve_unknown_none(self):
        assert SynonymTable().resolve("mystery") is None

    def test_normalization_insensitive_lookup(self):
        table = SynonymTable()
        table.add("air_temperature", "atmospheric temperature")
        assert table.resolve("Atmospheric-Temperature") == "air_temperature"
        assert table.resolve("atmosphericTemperature") == "air_temperature"

    def test_contains_is_poster_validation_predicate(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        assert table.contains("salinity")  # preferred
        assert table.contains("salt")  # alternate
        assert not table.contains("turbidity")

    def test_conflict_raises(self):
        table = SynonymTable()
        table.add("salinity", "sal")
        with pytest.raises(SynonymConflictError):
            table.add("turbidity", "sal")

    def test_re_adding_same_pair_is_idempotent(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        table.add("salinity", "salt")
        assert table.alternates_of("salinity") == ["salt"]

    def test_add_many(self):
        table = SynonymTable()
        table.add_many("degC", ["C", "Centigrade"])
        assert table.resolve("C") == "degC"
        assert table.resolve("Centigrade") == "degC"

    def test_preferred_terms(self):
        table = SynonymTable()
        table.add("b", "b_alt")
        table.add("a")
        assert table.preferred_terms() == ["a", "b"]

    def test_as_mapping_drops_identities(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        mapping = table.as_mapping()
        assert mapping == {"salt": "salinity"}

    def test_len_counts_spellings(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        assert len(table) == 2


class TestSerialization:
    def test_roundtrip(self):
        table = SynonymTable()
        table.add("salinity", "salt")
        table.add("degC", "Centigrade")
        loaded = SynonymTable.loads(table.dumps())
        assert loaded.resolve("salt") == "salinity"
        assert loaded.resolve("Centigrade") == "degC"
        assert loaded.preferred_terms() == table.preferred_terms()

    def test_loads_ignores_comments_and_blanks(self):
        text = "# comment\n\nsalt\tsalinity\n"
        table = SynonymTable.loads(text)
        assert table.resolve("salt") == "salinity"

    def test_loads_bad_row_raises(self):
        with pytest.raises(ValueError):
            SynonymTable.loads("one_column_only\n")


class TestVocabularyTable:
    def test_full_table_resolves_paper_examples(self):
        table = vocabulary_synonym_table()
        assert table.resolve("MWHLA") == "wave_height"
        assert table.resolve("ATastn") == "sea_surface_temperature"
        assert table.resolve("fluores375") == "fluorescence_375nm"

    def test_partial_table_flags(self):
        bare = vocabulary_synonym_table(
            include_synonyms=False, include_abbreviations=False
        )
        assert bare.resolve("salinity") == "salinity"
        assert bare.resolve("MWHLA") is None
        assert bare.resolve("salt") is None

    def test_partial_synonyms_only(self):
        table = vocabulary_synonym_table(include_abbreviations=False)
        assert table.resolve("salt") == "salinity"
        assert table.resolve("MWHLA") is None

"""Prometheus exposition: deterministic rendering and the CI parser.

The contract between ``/metrics`` and its scrapers (obs/expo.py):

* telemetry names map deterministically onto prefixed metric names
  (``http.status.200`` -> ``repro_http_status_200``), counters gain
  ``_total``;
* histograms expand to *cumulative* buckets plus the mandatory
  ``+Inf``, ``_sum`` and ``_count`` — and ``_count`` always equals the
  ``+Inf`` bucket;
* rendering the same snapshot twice is byte-identical;
* the tiny parser round-trips a rendered page and fails loudly on
  malformed lines (truncated scrapes must not pass silently in CI).
"""

from __future__ import annotations

import pytest

from repro.obs import (
    Telemetry,
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
    sample_value,
)

SNAPSHOT = {
    "counters": {"http.requests": 42, "http.status.200": 40},
    "gauges": {"serve.snapshot_version": 3},
    "histograms": {
        "http.request_seconds": {
            "bounds": [0.001, 0.01, 0.1],
            "counts": [5, 30, 6],  # per-bucket, non-cumulative
            "count": 42,           # includes 1 overflow observation
            "sum": 0.75,
        }
    },
}


class TestNameMapping:
    def test_dots_become_underscores_under_the_prefix(self):
        assert prometheus_name("http.status.200") == "repro_http_status_200"

    def test_counter_suffix(self):
        assert (
            prometheus_name("http.requests", "_total")
            == "repro_http_requests_total"
        )

    def test_any_invalid_char_is_replaced(self):
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"


class TestRender:
    def test_counters_gauges_histograms_all_present(self):
        text = render_prometheus(SNAPSHOT)
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_http_requests_total 42" in text
        assert "# TYPE repro_serve_snapshot_version gauge" in text
        assert "repro_serve_snapshot_version 3" in text
        assert "# TYPE repro_http_request_seconds histogram" in text

    def test_buckets_are_cumulative_and_capped_by_inf(self):
        text = render_prometheus(SNAPSHOT)
        assert 'repro_http_request_seconds_bucket{le="0.001"} 5' in text
        assert 'repro_http_request_seconds_bucket{le="0.01"} 35' in text
        assert 'repro_http_request_seconds_bucket{le="0.1"} 41' in text
        assert 'repro_http_request_seconds_bucket{le="+Inf"} 42' in text
        assert "repro_http_request_seconds_sum 0.75" in text
        assert "repro_http_request_seconds_count 42" in text

    def test_rendering_is_deterministic(self):
        assert render_prometheus(SNAPSHOT) == render_prometheus(SNAPSHOT)

    def test_page_ends_with_newline(self):
        assert render_prometheus(SNAPSHOT).endswith("\n")

    def test_empty_snapshot_renders_and_parses_to_nothing(self):
        assert parse_prometheus_text(render_prometheus({})) == {}


class TestRoundTrip:
    def test_parse_recovers_every_sample(self):
        families = parse_prometheus_text(render_prometheus(SNAPSHOT))
        assert sample_value(families, "repro_http_requests_total") == 42
        assert sample_value(families, "repro_http_status_200_total") == 40
        assert sample_value(families, "repro_serve_snapshot_version") == 3
        assert sample_value(
            families, "repro_http_request_seconds_count"
        ) == 42
        assert sample_value(
            families,
            "repro_http_request_seconds_bucket",
            {"le": "+Inf"},
        ) == 42

    def test_histogram_samples_group_under_the_base_family(self):
        families = parse_prometheus_text(render_prometheus(SNAPSHOT))
        family = families["repro_http_request_seconds"]
        assert family["type"] == "histogram"
        names = {name for name, _, _ in family["samples"]}
        assert names == {
            "repro_http_request_seconds_bucket",
            "repro_http_request_seconds_sum",
            "repro_http_request_seconds_count",
        }

    def test_live_telemetry_snapshot_round_trips(self):
        telemetry = Telemetry()
        telemetry.count("http.requests", 3)
        telemetry.gauge("serve.snapshot_version", 1)
        for value in (0.002, 0.004, 0.2):
            telemetry.observe("http.request_seconds", value)
        families = parse_prometheus_text(
            render_prometheus(telemetry.snapshot())
        )
        assert sample_value(families, "repro_http_requests_total") == 3
        assert sample_value(
            families, "repro_http_request_seconds_count"
        ) == 3

    def test_sample_value_misses_return_none(self):
        families = parse_prometheus_text(render_prometheus(SNAPSHOT))
        assert sample_value(families, "repro_nope") is None
        assert sample_value(
            families, "repro_http_request_seconds_bucket", {"le": "9"}
        ) is None


class TestParserRejectsGarbage:
    def test_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is not a metric line\n")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("repro_x{le=\"1\"} forty\n")

    def test_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus_text("repro_x{le=1} 4\n")

    def test_histogram_count_must_equal_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(text)

    def test_truncated_histogram_is_rejected(self):
        text = "# TYPE repro_h histogram\nrepro_h_count 4\n"
        with pytest.raises(ValueError, match="missing"):
            parse_prometheus_text(text)

    def test_comments_and_blank_lines_are_ignored(self):
        text = (
            "# HELP repro_x something helpful\n"
            "\n"
            "# TYPE repro_x counter\n"
            "repro_x 1\n"
        )
        families = parse_prometheus_text(text)
        assert sample_value(families, "repro_x") == 1

"""Unit tests for repro.catalog.io (JSON interchange)."""

import json
import math

import pytest

from repro.catalog import (
    CatalogFormatError,
    MemoryCatalog,
    SqliteCatalog,
    dump_catalog,
    feature_from_dict,
    feature_to_dict,
    load_catalog,
)


class TestRoundTrip:
    def test_memory_roundtrip(self, raw_catalog):
        text = dump_catalog(raw_catalog)
        restored = MemoryCatalog()
        count = load_catalog(text, restored)
        assert count == len(raw_catalog)
        assert restored.dataset_ids() == raw_catalog.dataset_ids()
        for dataset_id in raw_catalog.dataset_ids():
            a = raw_catalog.get(dataset_id)
            b = restored.get(dataset_id)
            assert a.bbox == b.bbox
            assert a.interval == b.interval
            assert a.attributes == b.attributes
            assert [v.name for v in a.variables] == [
                v.name for v in b.variables
            ]
            assert [v.minimum for v in a.variables] == [
                v.minimum for v in b.variables
            ]

    def test_cross_store_roundtrip(self, raw_catalog):
        text = dump_catalog(raw_catalog)
        with SqliteCatalog() as sqlite_catalog:
            load_catalog(text, sqlite_catalog)
            assert len(sqlite_catalog) == len(raw_catalog)

    def test_output_is_strict_json(self, raw_catalog):
        text = dump_catalog(raw_catalog, indent=2)
        payload = json.loads(text)
        assert payload["format"] == "repro-metadata-catalog"
        assert payload["version"] == 1

    def test_nan_statistics_encode_as_null(self, raw_catalog):
        feature = raw_catalog.get(raw_catalog.dataset_ids()[0])
        feature.variables[0].minimum = math.nan
        feature.variables[0].maximum = math.nan
        feature.variables[0].mean = math.nan
        feature.variables[0].stddev = math.nan
        feature.variables[0].count = 0
        raw_catalog.upsert(feature)
        text = dump_catalog(raw_catalog)
        json.loads(text)  # must not contain bare NaN tokens
        restored = MemoryCatalog()
        load_catalog(text, restored)
        entry = restored.get(feature.dataset_id).variables[0]
        assert math.isnan(entry.minimum)

    def test_flags_preserved(self, raw_catalog):
        feature = raw_catalog.get(raw_catalog.dataset_ids()[0])
        feature.variables[0].excluded = True
        feature.variables[0].ambiguous = True
        feature.variables[0].resolution = "curator"
        raw_catalog.upsert(feature)
        restored = MemoryCatalog()
        load_catalog(dump_catalog(raw_catalog), restored)
        entry = restored.get(feature.dataset_id).variables[0]
        assert entry.excluded and entry.ambiguous
        assert entry.resolution == "curator"


class TestFeatureDicts:
    def test_dict_roundtrip(self, raw_catalog):
        feature = next(iter(raw_catalog))
        clone = feature_from_dict(feature_to_dict(feature))
        assert clone.dataset_id == feature.dataset_id
        assert clone.bbox == feature.bbox

    def test_missing_field_raises(self):
        with pytest.raises(CatalogFormatError):
            feature_from_dict({"dataset_id": "x"})

    def test_bad_bbox_raises(self, raw_catalog):
        data = feature_to_dict(next(iter(raw_catalog)))
        data["bbox"] = [99.0, 0.0, 98.0, 0.0]  # min > max
        with pytest.raises(CatalogFormatError):
            feature_from_dict(data)


class TestLoadErrors:
    def test_not_json(self):
        with pytest.raises(CatalogFormatError):
            load_catalog("not json at all", MemoryCatalog())

    def test_missing_marker(self):
        with pytest.raises(CatalogFormatError):
            load_catalog('{"datasets": []}', MemoryCatalog())

    def test_wrong_version(self):
        text = json.dumps(
            {"format": "repro-metadata-catalog", "version": 99,
             "datasets": []}
        )
        with pytest.raises(CatalogFormatError):
            load_catalog(text, MemoryCatalog())

    def test_empty_catalog_roundtrip(self):
        text = dump_catalog(MemoryCatalog())
        assert load_catalog(text, MemoryCatalog()) == 0

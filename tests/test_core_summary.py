"""Unit tests for repro.core.summary."""

from repro.catalog import DatasetFeature, VariableEntry
from repro.core import summarize
from repro.geo import BoundingBox, TimeInterval
from repro.hierarchy import default_taxonomy_links


def make_feature(point_footprint=True):
    bbox = (
        BoundingBox(46.1, -123.9, 46.1, -123.9)
        if point_footprint
        else BoundingBox(46.0, -124.0, 46.3, -123.5)
    )
    searchable = VariableEntry.from_written(
        "salt", "psu", 10, 0.0, 30.0, 15.0, 3.0
    )
    searchable.name = "salinity"
    searchable.unit = "PSU"
    excluded = VariableEntry.from_written(
        "qa_level", "1", 10, 0.0, 2.0, 1.0, 0.5
    )
    excluded.excluded = True
    return DatasetFeature(
        dataset_id="stations/x/x.csv",
        title="Station X",
        platform="station",
        file_format="csv",
        bbox=bbox,
        interval=TimeInterval(0.0, 86400.0),
        row_count=10,
        source_directory="stations/x",
        attributes={"station": "x", "vessel": "none"},
        variables=[searchable, excluded],
    )


class TestSummarize:
    def test_header_fields(self):
        summary = summarize(make_feature())
        assert summary.dataset_id == "stations/x/x.csv"
        assert summary.title == "Station X"
        assert summary.platform == "station"
        assert summary.row_count == 10

    def test_point_footprint_renders_as_point(self):
        assert "N" in summarize(make_feature()).location_text

    def test_box_footprint_renders_as_range(self):
        summary = summarize(make_feature(point_footprint=False))
        assert ".." in summary.location_text

    def test_excluded_split_into_detail_only(self):
        # The Table row 4 desired result: excluded from search, shown in
        # detailed dataset views.
        summary = summarize(make_feature())
        assert [v.name for v in summary.searchable] == ["salinity"]
        assert [v.name for v in summary.detail_only] == ["qa_level"]
        assert summary.variable_count == 2

    def test_written_name_carried(self):
        summary = summarize(make_feature())
        assert summary.searchable[0].written_name == "salt"

    def test_attributes_sorted(self):
        summary = summarize(make_feature())
        assert summary.attributes == (
            ("station", "x"), ("vessel", "none"),
        )

    def test_taxonomy_links_attached(self):
        summary = summarize(
            make_feature(), taxonomy_links=default_taxonomy_links()
        )
        links = summary.searchable[0].taxonomy_links
        assert any(link.startswith("cf:") for link in links)
        assert any(link.startswith("gcmd:") for link in links)

    def test_no_links_without_registry(self):
        summary = summarize(make_feature())
        assert summary.searchable[0].taxonomy_links == ()

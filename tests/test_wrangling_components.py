"""Unit tests for the individual wrangling components."""

import pytest

from repro.archive import STATION_REGISTRY_PATH, VOCABULARY
from repro.semantics import AmbiguityAction, AmbiguityDecision
from repro.wrangling import (
    AddExternalMetadata,
    DiscoverTransformations,
    GenerateHierarchies,
    PerformDiscoveredTransformations,
    PerformKnownTransformations,
    Publish,
    ScanArchive,
    ScanTarget,
    UNRESOLVED_BRANCH,
    WranglingState,
)


@pytest.fixture()
def state(messy_fs):
    fs, __ = messy_fs
    return WranglingState(fs=fs)


def scan(state, **kwargs):
    component = ScanArchive(**kwargs)
    return component, component.execute(state)


class TestScanArchive:
    def test_scans_all_datasets(self, state, messy_fs):
        __, report = scan(state)
        fs, truth = messy_fs
        assert len(state.working) == len(truth)
        assert report.changes == len(truth)

    def test_skips_unchanged_on_rerun(self, state):
        component, first = scan(state)
        second = component.execute(state)
        assert second.changes == 0
        assert second.items_skipped == first.changes

    def test_rescan_after_edit_updates(self, state):
        component, __ = scan(state)
        dataset_id = state.working.dataset_ids()[0]
        record = state.fs.get(dataset_id)
        state.fs.put(dataset_id, record.content + "\n")
        report = component.execute(state)
        assert report.changes == 1

    def test_removed_file_drops_dataset(self, state):
        component, __ = scan(state)
        victim = state.working.dataset_ids()[0]
        state.fs.remove(victim)
        report = component.execute(state)
        assert victim not in state.working.dataset_ids()
        assert report.changes >= 1

    def test_directory_targeting(self, state):
        component = ScanArchive(
            targets=[ScanTarget(directory="stations", recursive=True)]
        )
        component.execute(state)
        assert all(
            dataset_id.startswith("stations/")
            for dataset_id in state.working.dataset_ids()
        )

    def test_add_target_extends_scan(self, state):
        component = ScanArchive(
            targets=[ScanTarget(directory="stations", recursive=True)]
        )
        component.execute(state)
        before = len(state.working)
        component.add_target("met")
        component.execute(state)
        assert len(state.working) > before

    def test_non_dataset_files_ignored(self, state):
        scan(state)
        assert STATION_REGISTRY_PATH not in state.working.dataset_ids()

    def test_parse_error_reported_not_fatal(self, state):
        state.fs.put("stations/broken/bad.csv", "# nothing\n")
        __, report = scan(state)
        assert any("parse error" in m for m in report.messages)


class TestKnownTransformations:
    def test_resolves_names(self, state, messy_fs):
        scan(state)
        report = PerformKnownTransformations().execute(state)
        assert report.changes > 0
        fs, truth = messy_fs
        # Every variable that resolved must carry resolution provenance.
        for __, entry in state.working.iter_variables():
            if entry.name != entry.written_name:
                assert entry.resolution

    def test_marks_excessive_excluded(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)
        excluded = {
            entry.name
            for __, entry in state.working.iter_variables()
            if entry.excluded
        }
        assert "qa_level" in excluded or "qc_flag" in excluded

    def test_normalizes_units(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)
        units = {
            entry.unit for __, entry in state.working.iter_variables()
        }
        assert "Centigrade" not in units
        assert "C" not in units

    def test_sets_context(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)
        for feature in state.working:
            expected = "air" if feature.platform == "met" else "water"
            for entry in feature.variables:
                assert entry.context == expected

    def test_curator_decision_clarify(self, state):
        scan(state)
        # Find a dataset with a phantom 'temp'.
        target = None
        for feature in state.working:
            names = feature.variable_names()
            if "temp" in names:
                target = feature.dataset_id
                break
        if target is None:
            pytest.skip("no phantom temp on this fixture")
        state.decisions.append(
            AmbiguityDecision(
                name="temp",
                action=AmbiguityAction.CLARIFY,
                canonical="water_temperature",
                scope=target,
            )
        )
        PerformKnownTransformations().execute(state)
        names = state.working.get(target).variable_names()
        assert "temp" not in names

    def test_curator_decision_hide(self, state):
        scan(state)
        state.decisions.append(
            AmbiguityDecision(name="temp", action=AmbiguityAction.HIDE)
        )
        PerformKnownTransformations().execute(state)
        for __, entry in state.working.iter_variables():
            if entry.name == "temp":
                assert entry.excluded

    def test_idempotent_second_run(self, state):
        scan(state)
        component = PerformKnownTransformations()
        component.execute(state)
        second = component.execute(state)
        assert second.changes == 0


class TestAddExternalMetadata:
    def test_enriches_station_datasets(self, state):
        scan(state)
        report = AddExternalMetadata().execute(state)
        assert report.changes > 0
        enriched = [
            f for f in state.working
            if "station_name" in f.attributes
        ]
        assert enriched
        for feature in enriched:
            assert feature.attributes["station_name"].startswith(
                ("Station", "Met")
            )

    def test_loads_registry_into_state(self, state):
        scan(state)
        AddExternalMetadata().execute(state)
        assert state.stations

    def test_missing_registry_is_graceful(self, state):
        state.fs.remove(STATION_REGISTRY_PATH)
        scan(state)
        report = AddExternalMetadata().execute(state)
        assert report.changes == 0
        assert any("no registry" in m for m in report.messages)

    def test_idempotent(self, state):
        scan(state)
        component = AddExternalMetadata()
        component.execute(state)
        second = component.execute(state)
        assert second.changes == 0


class TestDiscovery:
    def test_discover_stores_rules(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)
        DiscoverTransformations().execute(state)
        assert state.discovered_rules is not None

    def test_perform_applies_rules(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)
        DiscoverTransformations().execute(state)
        mapping = state.discovered_rules.rename_mapping()
        report = PerformDiscoveredTransformations().execute(state)
        if mapping:
            assert report.changes > 0
            names = set(state.working.variable_name_counts())
            assert not (set(mapping) & names)

    def test_perform_without_rules_noop(self, state):
        scan(state)
        report = PerformDiscoveredTransformations().execute(state)
        assert report.changes == 0

    def test_explicit_rules_override(self, state):
        from repro.refine import MassEditEdit, MassEditOperation, RuleSet

        scan(state)
        present = next(iter(state.working.variable_name_counts()))
        rules = RuleSet(
            [MassEditOperation(column="field",
                               edits=[MassEditEdit((present,), "renamed")])]
        )
        report = PerformDiscoveredTransformations(rules=rules).execute(state)
        assert report.changes > 0
        assert "renamed" in state.working.variable_name_counts()


class TestGenerateHierarchies:
    def _prepare(self, state):
        scan(state)
        PerformKnownTransformations().execute(state)

    def test_hierarchy_built(self, state):
        self._prepare(state)
        GenerateHierarchies().execute(state)
        assert state.hierarchy is not None
        assert len(state.hierarchy) > 0

    def test_present_variables_included(self, state):
        self._prepare(state)
        GenerateHierarchies().execute(state)
        present = set(state.working.variable_name_counts())
        canonical_present = present & set(VOCABULARY)
        for name in canonical_present:
            assert name in state.hierarchy

    def test_unresolved_parked(self, state):
        self._prepare(state)
        GenerateHierarchies().execute(state)
        unresolved = [
            name
            for name in state.working.variable_name_counts()
            if name not in VOCABULARY
        ]
        if unresolved:
            assert UNRESOLVED_BRANCH in state.hierarchy
            for name in unresolved:
                assert state.hierarchy.group_of(name) == UNRESOLVED_BRANCH

    def test_taxonomy_links_attached(self, state):
        self._prepare(state)
        GenerateHierarchies().execute(state)
        assert state.taxonomy_links is not None

    def test_unpruned_keeps_whole_vocabulary(self, state):
        self._prepare(state)
        GenerateHierarchies(prune_absent=False).execute(state)
        for name in VOCABULARY:
            assert name in state.hierarchy


class TestPublish:
    def test_publishes_working_copy(self, state):
        scan(state)
        report = Publish().execute(state)
        assert report.changes == len(state.working)
        assert len(state.published) == len(state.working)

    def test_published_is_isolated_copy(self, state):
        scan(state)
        Publish().execute(state)
        state.working.rename_variables(
            {next(iter(state.working.variable_name_counts())): "mutant"}
        )
        assert "mutant" not in state.published.variable_name_counts()

    def test_refuses_empty_by_default(self, state):
        report = Publish().execute(state)
        assert report.changes == 0
        assert len(state.published) == 0

    def test_republish_replaces(self, state):
        scan(state)
        Publish().execute(state)
        victim = state.working.dataset_ids()[0]
        state.working.remove(victim)
        Publish().execute(state)
        assert victim not in state.published.dataset_ids()


class TestUnitConversion:
    """Cross-family unit conversion (degF temperatures, knots wind)."""

    def test_alien_units_converted_in_catalog(self, state):
        from repro.archive import VOCABULARY

        scan(state)
        # Find an entry written in a foreign unit family.
        alien = [
            entry
            for __, entry in state.working.iter_variables()
            if entry.written_unit in ("degF", "knots")
        ]
        if not alien:
            pytest.skip("no alien units on this fixture")
        PerformKnownTransformations().execute(state)
        for __, entry in state.working.iter_variables():
            if entry.written_unit not in ("degF", "knots"):
                continue
            var = VOCABULARY.get(entry.name)
            if var is None:
                continue
            assert entry.unit == var.unit

    def test_converted_stats_physically_plausible(self, state):
        from repro.archive import VALUE_RANGES, VOCABULARY

        scan(state)
        PerformKnownTransformations().execute(state)
        for __, entry in state.working.iter_variables():
            if entry.written_unit != "degF":
                continue
            if entry.name not in VOCABULARY or entry.count == 0:
                continue
            lo, hi = VALUE_RANGES[entry.name]
            assert lo - 1.0 <= entry.minimum <= entry.maximum <= hi + 1.0

    def test_conversion_can_be_disabled(self, state):
        scan(state)
        alien_before = [
            entry.unit
            for __, entry in state.working.iter_variables()
            if entry.written_unit == "degF"
        ]
        if not alien_before:
            pytest.skip("no alien units on this fixture")
        PerformKnownTransformations(convert_units=False).execute(state)
        stays = [
            entry.unit
            for __, entry in state.working.iter_variables()
            if entry.written_unit == "degF"
        ]
        assert "degF" in stays


class TestIncrementalPublish:
    def test_republish_unchanged_is_free(self, state):
        scan(state)
        Publish().execute(state)
        second = Publish().execute(state)
        assert second.changes == 0
        assert second.items_skipped == len(state.working)

    def test_changed_dataset_republished(self, state):
        scan(state)
        Publish().execute(state)
        victim = state.working.dataset_ids()[0]
        state.working.rename_variables(
            {state.working.get(victim).variables[0].name: "renamed_var"}
        )
        report = Publish().execute(state)
        # Renames touch every dataset carrying the old name, so at least
        # the victim republishes; unchanged datasets stay skipped.
        assert report.changes >= 1
        assert report.items_skipped < len(state.working)
        assert "renamed_var" in state.published.get(victim).variable_names()

    def test_vanished_dataset_withdrawn(self, state):
        scan(state)
        Publish().execute(state)
        victim = state.working.dataset_ids()[0]
        state.working.remove(victim)
        report = Publish().execute(state)
        assert victim not in state.published.dataset_ids()
        assert report.changes >= 1

    def test_full_copy_mode(self, state):
        scan(state)
        Publish(incremental=False).execute(state)
        report = Publish(incremental=False).execute(state)
        assert report.changes == len(state.working)

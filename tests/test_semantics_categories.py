"""Unit tests for repro.semantics.categories (Table 1 as data)."""

import pytest

from repro.semantics import DiversityCategory, TABLE_ROWS, row_for


class TestTableRows:
    def test_seven_rows(self):
        assert len(TABLE_ROWS) == 7

    def test_all_categories_covered(self):
        assert {row.category for row in TABLE_ROWS} == set(DiversityCategory)

    def test_paper_examples_verbatim(self):
        assert "air_temperatrue" in row_for("misspelling").example
        assert "Centigrade" in row_for("synonym").example
        assert "MWHLA" in row_for("abbreviation").example
        assert "qa_level" in row_for("excessive").example
        assert "temporary or temperature" in row_for("ambiguous").example
        assert "fluores375" in row_for("multilevel").example

    def test_row_for_enum_and_string(self):
        assert row_for(DiversityCategory.SYNONYM) is row_for("synonym")

    def test_row_for_unknown_raises(self):
        with pytest.raises(KeyError):
            row_for("nonsense")

    def test_every_row_has_approach(self):
        for row in TABLE_ROWS:
            assert row.approach
            assert row.desired_result
            assert row.title

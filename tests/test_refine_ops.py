"""Unit tests for repro.refine.ops."""

import pytest

from repro.refine import (
    ColumnRemovalOperation,
    ColumnRenameOperation,
    EngineConfig,
    ListFacet,
    MassEditEdit,
    MassEditOperation,
    OperationError,
    RefineTable,
    RowRemovalOperation,
    TextTransformOperation,
    operation_from_json,
)

POSTER_MASS_EDIT = {
    "op": "core/mass-edit",
    "description": "Mass edit cells in column field",
    "engineConfig": {"facets": [], "mode": "row-based"},
    "columnName": "field",
    "expression": "value",
    "edits": [
        {
            "fromBlank": False,
            "fromError": False,
            "from": ["ATastn"],
            "to": "sea surface temperature",
        }
    ],
}


@pytest.fixture()
def table():
    t = RefineTable(columns=["field", "unit"])
    for field, unit in [
        ("ATastn", "degC"), ("salinity", "PSU"), ("AirTemp", "C"),
        ("qa_level", "1"),
    ]:
        t.append_row({"field": field, "unit": unit})
    return t


class TestMassEdit:
    def test_poster_example_verbatim(self, table):
        op = operation_from_json(POSTER_MASS_EDIT)
        changed = op.apply(table)
        assert changed == 1
        assert table.rows[0]["field"] == "sea surface temperature"
        assert table.rows[1]["field"] == "salinity"

    def test_multiple_from_values(self, table):
        op = MassEditOperation(
            column="field",
            edits=[MassEditEdit(("ATastn", "AirTemp"), "temperature")],
        )
        assert op.apply(table) == 2

    def test_keyed_expression(self, table):
        # Matching after lowercasing: 'AirTemp' -> keyed 'airtemp'.
        op = MassEditOperation(
            column="field",
            edits=[MassEditEdit(("airtemp",), "air_temperature")],
            expression="value.toLowercase()",
        )
        assert op.apply(table) == 1
        assert table.rows[2]["field"] == "air_temperature"

    def test_engine_config_filters(self, table):
        op = MassEditOperation(
            column="field",
            edits=[MassEditEdit(("ATastn",), "sst")],
            engine_config=EngineConfig(
                facets=(ListFacet(column="unit", selection=("PSU",)),)
            ),
        )
        assert op.apply(table) == 0  # ATastn row has unit degC

    def test_rename_mapping(self):
        op = MassEditOperation(
            column="field",
            edits=[
                MassEditEdit(("a", "b"), "c"),
                MassEditEdit(("d",), "e"),
            ],
        )
        assert op.rename_mapping() == {"a": "c", "b": "c", "d": "e"}

    def test_json_roundtrip(self):
        op = operation_from_json(POSTER_MASS_EDIT)
        again = operation_from_json(op.to_json())
        assert again.rename_mapping() == op.rename_mapping()

    def test_missing_column_name_raises(self):
        with pytest.raises(OperationError):
            operation_from_json({"op": "core/mass-edit", "edits": []})


class TestTextTransform:
    def test_apply(self, table):
        op = TextTransformOperation(
            column="field", expression="value.toLowercase()"
        )
        changed = op.apply(table)
        assert changed == 2  # ATastn, AirTemp
        assert table.rows[0]["field"] == "atastn"

    def test_on_error_keep_original(self, table):
        table.append_row({"field": None, "unit": "x"})
        op = TextTransformOperation(
            column="field", expression="value.toLowercase()"
        )
        op.apply(table)
        assert table.rows[-1]["field"] is None

    def test_on_error_set_to_blank(self, table):
        table.rows[0]["field"] = 42
        op = TextTransformOperation(
            column="field",
            expression="value.toLowercase()",
            on_error="set-to-blank",
        )
        op.apply(table)
        assert table.rows[0]["field"] is None

    def test_repeat_until_fixpoint(self):
        t = RefineTable(columns=["field"])
        t.append_row({"field": "a__b__c"})
        op = TextTransformOperation(
            column="field",
            expression="value.replace('__', '_')",
            repeat=True,
        )
        op.apply(t)
        assert t.rows[0]["field"] == "a_b_c"

    def test_json_roundtrip_adds_grel_prefix(self):
        op = TextTransformOperation(column="f", expression="value.trim()")
        data = op.to_json()
        assert data["expression"].startswith("grel:")
        again = operation_from_json(data)
        assert again.expression == "grel:value.trim()"


class TestColumnOps:
    def test_rename(self, table):
        ColumnRenameOperation("field", "name").apply(table)
        assert "name" in table.columns

    def test_removal(self, table):
        ColumnRemovalOperation("unit").apply(table)
        assert table.columns == ["field"]

    def test_rename_json_roundtrip(self):
        op = ColumnRenameOperation("a", "b")
        again = operation_from_json(op.to_json())
        assert (again.old_name, again.new_name) == ("a", "b")

    def test_removal_json_roundtrip(self):
        op = ColumnRemovalOperation("x")
        assert operation_from_json(op.to_json()).column == "x"


class TestRowRemoval:
    def test_removes_faceted_rows(self, table):
        op = RowRemovalOperation(
            engine_config=EngineConfig(
                facets=(ListFacet(column="field", selection=("qa_level",)),)
            )
        )
        assert op.apply(table) == 1
        assert len(table) == 3

    def test_json_roundtrip(self):
        op = RowRemovalOperation()
        assert isinstance(
            operation_from_json(op.to_json()), RowRemovalOperation
        )


class TestUnknownOp:
    def test_raises(self):
        with pytest.raises(OperationError):
            operation_from_json({"op": "core/blink-detection"})

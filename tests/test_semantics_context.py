"""Unit tests for repro.semantics.context."""

import pytest

from repro.semantics import (
    ContextRules,
    UnknownContextError,
    default_context_rules,
)


@pytest.fixture()
def rules():
    return ContextRules()


class TestDefaultRules:
    def test_temperature_by_context(self, rules):
        # The Table row 6 example, both readings.
        assert rules.resolve("temperature", "air") == "air_temperature"
        assert rules.resolve("temperature", "water") == "water_temperature"

    def test_pressure_by_context(self, rules):
        assert rules.resolve("pressure", "air") == "air_pressure"
        assert rules.resolve("pressure", "water") == "water_pressure"

    def test_speed_and_direction(self, rules):
        assert rules.resolve("speed", "air") == "wind_speed"
        assert rules.resolve("speed", "water") == "current_speed"
        assert rules.resolve("direction", "water") == "current_direction"

    def test_unknown_pair_raises(self, rules):
        with pytest.raises(UnknownContextError):
            rules.resolve("temperature", "vacuum")

    def test_bare_names(self, rules):
        bare = rules.bare_names()
        assert {"temperature", "pressure", "speed", "direction"} <= bare


class TestPlatformResolution:
    def test_met_station_is_air(self, rules):
        assert rules.resolve_for_platform("temperature", "met") == (
            "air_temperature"
        )

    def test_ctd_cast_is_water(self, rules):
        assert rules.resolve_for_platform("temperature", "cast") == (
            "water_temperature"
        )

    def test_cruise_specific_rule_wins(self, rules):
        # Underway cruise temperature is sea-surface temperature.
        assert rules.resolve_for_platform("temperature", "cruise") == (
            "sea_surface_temperature"
        )

    def test_unknown_platform_defaults_to_water(self, rules):
        assert rules.resolve_for_platform("temperature", "rover") == (
            "water_temperature"
        )

    def test_no_rule_returns_none(self, rules):
        assert rules.resolve_for_platform("mystery", "met") is None


class TestCuratorExtension:
    def test_add_rule(self, rules):
        rules.add("flux", "water", "par")
        assert rules.resolve("flux", "water") == "par"

    def test_override_rule(self, rules):
        rules.add("temperature", "water", "sea_surface_temperature")
        assert rules.resolve("temperature", "water") == (
            "sea_surface_temperature"
        )

    def test_default_rules_factory_fresh(self):
        a = default_context_rules()
        b = default_context_rules()
        a[("new", "water")] = "salinity"
        assert ("new", "water") not in b

"""SearchService: admission, backpressure, refresh, drain, telemetry.

The concurrency invariants the serving layer promises:

* every response carries exactly one snapshot version, and a refresh
  never disturbs in-flight requests;
* overload is a typed, pre-execution rejection, not a hang;
* close() drains gracefully;
* concurrent requests' counters/spans merge into the shared registry
  with nothing lost (totals == request count).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.cache import QueryCache
from repro.core.errors import OverloadedError
from repro.core.query import Query, VariableTerm
from repro.geo import BoundingBox, TimeInterval
from repro.serve import (
    SearchService,
    ServeConfig,
    ServiceClosedError,
    run_load,
)


def make_feature(dataset_id: str, row_count: int = 10) -> DatasetFeature:
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=row_count,
        source_directory="stations/x",
        variables=[
            VariableEntry.from_written(
                "salinity", "psu", row_count, 0.0, 30.0, 15.0, 2.0
            )
        ],
    )


QUERY = Query(variables=(VariableTerm(name="salinity"),))


@pytest.fixture()
def catalog():
    store = MemoryCatalog()
    store.upsert_many([make_feature(f"d{i}") for i in range(6)])
    return store


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=-1)
        with pytest.raises(ValueError):
            ServeConfig(shard_threshold=0)
        with pytest.raises(ValueError):
            ServeConfig(cache_size=0)

    def test_admission_capacity(self):
        config = ServeConfig(max_concurrency=3, queue_depth=5)
        assert config.admission_capacity == 8


class TestRequestPath:
    def test_response_carries_snapshot_version(self, catalog):
        with SearchService(catalog) as service:
            response = service.search(QUERY)
            assert response.snapshot_version == catalog.version
            assert len(response.results) == 6
            assert response.results.total_matches == 6
            assert response.total_seconds >= response.queued_seconds

    def test_requests_survive_source_mutation(self, catalog):
        with SearchService(catalog) as service:
            catalog.clear()  # live store emptied; snapshot unaffected
            response = service.search(QUERY)
            assert len(response.results) == 6
            assert service.stats()["staleness"] == 1

    def test_limit_validation_propagates(self, catalog):
        with SearchService(catalog) as service:
            with pytest.raises(ValueError):
                service.search(QUERY, limit=0)

    def test_closed_service_rejects(self, catalog):
        service = SearchService(catalog)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.search(QUERY)


class TestRefresh:
    def test_refresh_noop_on_unchanged_source(self, catalog):
        with SearchService(catalog) as service:
            engine_before = service._engine
            assert service.refresh() is False
            assert service._engine is engine_before

    def test_refresh_installs_new_version(self, catalog):
        with SearchService(catalog) as service:
            catalog.apply_batch([make_feature("new")], ["d0"])
            assert service.refresh() is True
            assert service.snapshot_version == catalog.version
            response = service.search(QUERY)
            ids = [r.dataset_id for r in response.results]
            assert "new" in ids and "d0" not in ids

    def test_cache_shared_across_refresh(self, catalog):
        cache = QueryCache(maxsize=16)
        with SearchService(catalog, cache=cache) as service:
            service.search(QUERY)
            misses_after_first = cache.stats()["misses"]
            # Unchanged source: refresh is a no-op, entry still hits.
            service.refresh()
            service.search(QUERY)
            stats = cache.stats()
            assert stats["misses"] == misses_after_first
            assert stats["hits"] >= 1

    def test_in_flight_requests_keep_their_snapshot(self, catalog):
        # A request that reads the engine before a refresh completes
        # with the old version even if the swap happens mid-flight.
        with SearchService(catalog) as service:
            old_version = service.snapshot_version
            release = threading.Event()
            observed = {}
            engine = service._engine
            original_search = engine.search

            def slow_search(query, limit=10):
                release.wait(timeout=5.0)
                return original_search(query, limit=limit)

            engine.search = slow_search
            worker = threading.Thread(
                target=lambda: observed.setdefault(
                    "response", service.search(QUERY)
                ),
                daemon=True,
            )
            worker.start()
            time.sleep(0.02)  # let the worker pick up the old engine
            catalog.upsert(make_feature("later"))
            assert service.refresh() is True
            release.set()
            worker.join(timeout=5.0)
            assert observed["response"].snapshot_version == old_version
            assert service.snapshot_version == catalog.version
            assert service.snapshot_version != old_version


class TestBackpressure:
    def test_overload_rejects_with_typed_error(self, catalog):
        config = ServeConfig(max_concurrency=1, queue_depth=0)
        service = SearchService(catalog, config=config)
        entered = threading.Event()
        release = threading.Event()
        engine = service._engine
        original_search = engine.search

        def blocking_search(query, limit=10):
            entered.set()
            release.wait(timeout=5.0)
            return original_search(query, limit=limit)

        engine.search = blocking_search
        worker = threading.Thread(
            target=lambda: service.search(QUERY), daemon=True
        )
        worker.start()
        assert entered.wait(timeout=5.0)
        try:
            with pytest.raises(OverloadedError) as excinfo:
                service.search(QUERY)
            assert excinfo.value.capacity == 1
        finally:
            release.set()
            worker.join(timeout=5.0)
            service.close()
        assert service.telemetry.counter("serve.rejected") == 1

    def test_overload_is_transient_in_taxonomy(self):
        from repro.core.errors import (
            ErrorCode,
            classify_exception,
            is_transient,
        )

        error = OverloadedError(in_flight=4, capacity=4)
        assert is_transient(error)
        record = classify_exception(error)
        assert record.code is ErrorCode.OVERLOADED
        assert record.transient

    def test_queue_admits_beyond_concurrency(self, catalog):
        # queue_depth=1: two requests admitted (one runs, one waits),
        # the third rejected.
        config = ServeConfig(max_concurrency=1, queue_depth=1)
        service = SearchService(catalog, config=config)
        entered = threading.Event()
        release = threading.Event()
        engine = service._engine
        original_search = engine.search

        def blocking_search(query, limit=10):
            entered.set()
            release.wait(timeout=5.0)
            return original_search(query, limit=limit)

        engine.search = blocking_search
        outcomes: list[str] = []

        def client():
            try:
                service.search(QUERY)
                outcomes.append("ok")
            except OverloadedError:
                outcomes.append("rejected")

        first = threading.Thread(target=client, daemon=True)
        first.start()
        assert entered.wait(timeout=5.0)
        second = threading.Thread(target=client, daemon=True)
        second.start()
        time.sleep(0.05)  # let the second request occupy the queue slot
        third = threading.Thread(target=client, daemon=True)
        third.start()
        third.join(timeout=5.0)
        release.set()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        service.close()
        assert sorted(outcomes) == ["ok", "ok", "rejected"]


class TestDrain:
    def test_close_waits_for_in_flight(self, catalog):
        service = SearchService(catalog)
        started = threading.Event()
        release = threading.Event()
        engine = service._engine
        original_search = engine.search

        def slow_search(query, limit=10):
            started.set()
            release.wait(timeout=5.0)
            return original_search(query, limit=limit)

        engine.search = slow_search
        done = {}
        worker = threading.Thread(
            target=lambda: done.setdefault(
                "response", service.search(QUERY)
            ),
            daemon=True,
        )
        worker.start()
        assert started.wait(timeout=5.0)
        assert service.close(timeout=0.05) is False  # still in flight
        release.set()
        assert service.drain(timeout=5.0) is True
        worker.join(timeout=5.0)
        assert len(done["response"].results) == 6
        assert service.stats()["in_flight"] == 0

    def test_timed_out_close_keeps_executors_for_in_flight_requests(
        self, catalog
    ):
        """Regression: a ``close()`` whose drain timed out used to shut
        the shard executor down under the still-executing request, which
        then died with ``cannot schedule new futures after shutdown``
        (a traceback/500 instead of a graceful completion).  Executors
        must stay alive until the last in-flight request leaves, and
        that request releases them.
        """
        service = SearchService(
            catalog,
            config=ServeConfig(shard_workers=2, shard_threshold=1),
        )
        started = threading.Event()
        release = threading.Event()
        engine = service._engine
        original_search = engine.search

        def gated_search(query, limit=10):
            started.set()
            release.wait(timeout=10.0)
            # The regression surfaced here: this call fans out onto the
            # service-owned shard executor.
            return original_search(query, limit=limit)

        engine.search = gated_search
        outcome = {}

        def request() -> None:
            try:
                outcome["response"] = service.search(QUERY)
            except Exception as exc:
                outcome["error"] = exc

        worker = threading.Thread(target=request, daemon=True)
        worker.start()
        assert started.wait(timeout=5.0)
        assert service.close(timeout=0.05) is False  # drain timed out
        assert service._shard_executor is not None  # NOT torn down yet
        release.set()
        worker.join(timeout=10.0)
        assert "error" not in outcome, repr(outcome.get("error"))
        assert len(outcome["response"].results) == 6
        # The last request out released the executors.
        assert service._shard_executor is None
        assert service.stats()["in_flight"] == 0


class TestTelemetryInvariant:
    CLIENTS = 8
    PER_CLIENT = 25

    def test_concurrent_counters_and_spans_merge_exactly(self, catalog):
        with SearchService(catalog) as service:
            report = run_load(
                service,
                [QUERY, Query(variables=(VariableTerm(name="salinity"),
                                         VariableTerm(name="salinity")))],
                clients=self.CLIENTS,
                requests_per_client=self.PER_CLIENT,
                seed=3,
            )
            total = self.CLIENTS * self.PER_CLIENT
            assert report.completed == total
            assert report.errors == 0
            telemetry = service.telemetry
            assert telemetry.counter("serve.requests") == total
            spans = [
                s for s in telemetry.spans() if s.name == "serve.request"
            ]
            assert len(spans) == total
            histogram = telemetry.histogram("serve.request_seconds")
            assert histogram is not None and histogram.count == total
            # Engine counters funnelled through the same registry: every
            # request was either a cache hit or a miss.
            hits = telemetry.counter("search.cache_hits")
            misses = telemetry.counter("search.cache_misses")
            assert hits + misses == total

    def test_load_report_accounting(self, catalog):
        with SearchService(catalog) as service:
            report = run_load(
                service,
                [QUERY],
                clients=2,
                requests_per_client=5,
                seed=9,
                live_version=lambda: catalog.version,
            )
            assert report.completed == 10
            assert report.rejected == 0
            assert report.snapshot_versions == [catalog.version]
            assert report.max_staleness == 0
            assert report.qps > 0
            assert (
                report.latency_p50
                <= report.latency_p95
                <= report.latency_p99
            )
            payload = report.to_dict()
            assert payload["completed"] == 10
            assert "latency_p99" in payload


class TestSystemIntegration:
    def test_search_service_from_system(self, tmp_path):
        from repro.archive import generate_archive, render_archive
        from repro.system import DataNearHere, NotWrangledError
        from tests.conftest import SMALL_SPEC

        fs, __ = render_archive(generate_archive(SMALL_SPEC))
        system = DataNearHere(fs)
        with pytest.raises(NotWrangledError):
            system.search_service()
        system.wrangle()
        with system.search_service() as service:
            response = service.search(QUERY)
            assert response.snapshot_version == service.source.version
            # Shared registry: the request landed in the system's.
            assert system.telemetry.counter("serve.requests") == 1
            # Shared cache: a system-level search of the same query and
            # catalog version hits the entry the service warmed.
            before = system.telemetry.counter("search.cache_hits")
            system.search(QUERY)
            assert (
                system.telemetry.counter("search.cache_hits") == before + 1
            )

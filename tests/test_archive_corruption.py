"""Failure-injection tests: the pipeline must degrade gracefully."""

import math

import pytest

from repro.archive import FormatError, parse_file
from repro.archive.corruption import (
    add_stray_files,
    corrupt_archive,
    garble_numbers,
    remove_header,
    truncate_file,
)
from repro.wrangling import ScanArchive, WranglingState, default_chain


class TestInjectors:
    def test_truncate_shrinks_file(self, messy_fs):
        fs, truth = messy_fs
        path = next(iter(truth))
        before = len(fs.get(path).content)
        truncate_file(fs, path, keep_fraction=0.3)
        assert len(fs.get(path).content) < before

    def test_truncate_bad_fraction(self, messy_fs):
        fs, truth = messy_fs
        with pytest.raises(ValueError):
            truncate_file(fs, next(iter(truth)), keep_fraction=1.5)

    def test_garble_introduces_junk(self, messy_fs):
        fs, truth = messy_fs
        path = next(p for p in truth if p.endswith(".csv"))
        garble_numbers(fs, path, rate=0.5, seed=1)
        assert "###" in fs.get(path).content

    def test_remove_header_strips_comments(self, messy_fs):
        fs, truth = messy_fs
        path = next(p for p in truth if p.endswith(".csv"))
        remove_header(fs, path)
        content = fs.get(path).content
        assert not content.startswith("#")
        with pytest.raises(FormatError):
            parse_file(content, path)

    def test_stray_files_added(self, messy_fs):
        fs, __ = messy_fs
        before = len(fs)
        strays = add_stray_files(fs, count=4)
        assert len(fs) == before + 4
        assert all(fs.exists(p) for p in strays)

    def test_corrupt_archive_deterministic(self, messy_fs):
        fs, __ = messy_fs
        report = corrupt_archive(fs, seed=9)
        fs2, __ = __, None  # placeholder to appease readability
        assert report.total > 0


class TestPipelineRobustness:
    def test_scan_survives_corruption(self, messy_fs):
        fs, truth = messy_fs
        report = corrupt_archive(fs, seed=9)
        state = WranglingState(fs=fs)
        scan_report = ScanArchive().execute(state)
        # Broken datasets are reported, not fatal.
        assert any("parse error" in m for m in scan_report.messages)
        # Healthy datasets still catalog.
        healthy = set(truth) - report.broken_datasets
        cataloged = set(state.working.dataset_ids())
        missing_healthy = healthy - cataloged
        # Garbled files may still parse (NaN-tolerant) — but nothing
        # healthy may be lost.
        assert not missing_healthy

    def test_garbled_values_become_nan_or_error(self, messy_fs):
        fs, truth = messy_fs
        path = next(p for p in truth if p.endswith(".csv"))
        garble_numbers(fs, path, rate=0.3, seed=2)
        try:
            dataset = parse_file(fs.get(path).content, path)
        except FormatError:
            return  # rejecting the file outright is acceptable
        values = [
            v for col in dataset.table.columns for v in col.values
        ]
        assert any(math.isnan(v) for v in values) or values

    def test_stray_files_never_cataloged(self, messy_fs):
        fs, __ = messy_fs
        strays = add_stray_files(fs, count=4)
        state = WranglingState(fs=fs)
        ScanArchive().execute(state)
        cataloged = set(state.working.dataset_ids())
        assert not (set(strays) & cataloged)

    def test_full_chain_on_corrupted_archive(self, messy_fs):
        fs, truth = messy_fs
        report = corrupt_archive(fs, seed=9)
        state = WranglingState(fs=fs)
        chain = default_chain()
        run_report = chain.run(state)
        assert len(state.published) >= len(truth) - report.total
        assert run_report.total_changes > 0

    def test_repairing_file_recatalogs_it(self, messy_fs):
        fs, truth = messy_fs
        path = next(p for p in truth if p.endswith(".csv"))
        original = fs.get(path).content
        remove_header(fs, path)
        state = WranglingState(fs=fs)
        scan = ScanArchive()
        scan.execute(state)
        assert path not in state.working.dataset_ids()
        fs.put(path, original)  # curator repairs the file
        scan.execute(state)
        assert path in state.working.dataset_ids()

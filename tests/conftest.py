"""Shared fixtures: small deterministic archives and catalogs."""

from __future__ import annotations

import pytest

from repro.archive import (
    ArchiveSpec,
    MessSpec,
    generate_archive,
    inject_mess,
    render_archive,
)
from repro.catalog import MemoryCatalog
from repro.core import extract_feature

SMALL_SPEC = ArchiveSpec(
    stations=3,
    cruises=2,
    casts=3,
    gliders=1,
    met_stations=1,
    samples_per_station=60,
    samples_per_cruise=40,
    samples_per_cast=25,
    samples_per_glider=50,
    samples_per_met=40,
    years=3.0,
    seed=42,
)


@pytest.fixture(scope="session")
def clean_archive():
    """A small clean synthetic archive (session-scoped, do not mutate)."""
    return generate_archive(SMALL_SPEC)


@pytest.fixture()
def messy_archive():
    """A small messy archive, regenerated per test (safe to mutate)."""
    archive = generate_archive(SMALL_SPEC)
    return inject_mess(archive, MessSpec(seed=99))


@pytest.fixture()
def messy_fs(messy_archive):
    """(filesystem, truth) for the messy archive."""
    return render_archive(messy_archive)


@pytest.fixture()
def raw_catalog(messy_fs):
    """A MemoryCatalog of raw (unwrangled) features from the messy fs."""
    from repro.archive import parse_file

    fs, __ = messy_fs
    catalog = MemoryCatalog()
    for record in fs:
        if record.extension in ("csv", "cdl"):
            dataset = parse_file(record.content, record.path)
            catalog.upsert(
                extract_feature(dataset, content_hash=record.content_hash())
            )
    return catalog

"""Unit tests for repro.core.query."""

import pytest

from repro.core import Query, VariableTerm
from repro.geo import BoundingBox, GeoPoint, TimeInterval


class TestVariableTerm:
    def test_plain_term(self):
        term = VariableTerm("salinity")
        assert not term.has_range

    def test_range_term(self):
        term = VariableTerm("water_temperature", low=5.0, high=10.0)
        assert term.has_range

    def test_half_open_counts_as_range(self):
        assert VariableTerm("depth", low=10.0).has_range
        assert VariableTerm("depth", high=10.0).has_range

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            VariableTerm("x", low=10.0, high=5.0)

    def test_non_positive_weight_raises(self):
        with pytest.raises(ValueError):
            VariableTerm("x", weight=0.0)


class TestQuery:
    def test_empty_query(self):
        query = Query()
        assert query.is_empty
        assert not query.has_spatial
        assert not query.has_temporal

    def test_point_query(self):
        query = Query(location=GeoPoint(45.5, -124.4))
        assert query.has_spatial
        assert not query.is_empty

    def test_region_query(self):
        query = Query(region=BoundingBox(45.0, -125.0, 46.0, -124.0))
        assert query.has_spatial

    def test_point_and_region_conflict(self):
        with pytest.raises(ValueError):
            Query(
                location=GeoPoint(45.5, -124.4),
                region=BoundingBox(45.0, -125.0, 46.0, -124.0),
            )

    def test_bad_radius_raises(self):
        with pytest.raises(ValueError):
            Query(location=GeoPoint(0, 0), radius_km=0)

    def test_variables_coerced_to_tuple(self):
        query = Query(variables=[VariableTerm("salinity")])
        assert isinstance(query.variables, tuple)

    def test_variable_names(self):
        query = Query(
            variables=(VariableTerm("a"), VariableTerm("b"))
        )
        assert query.variable_names() == ["a", "b"]

    def test_frozen(self):
        query = Query()
        with pytest.raises(AttributeError):
            query.radius_km = 10


class TestDescribe:
    def test_paper_example_description(self):
        query = Query(
            location=GeoPoint(45.5, -124.4),
            interval=TimeInterval(0, 86400),
            variables=(VariableTerm("temperature", low=5, high=10),),
        )
        text = query.describe()
        assert "near" in text
        assert "temperature in [5, 10]" in text

    def test_empty_description(self):
        assert Query().describe() == "(match all)"

    def test_half_open_descriptions(self):
        assert ">= 5" in Query(
            variables=(VariableTerm("depth", low=5),)
        ).describe()
        assert "<= 5" in Query(
            variables=(VariableTerm("depth", high=5),)
        ).describe()

    def test_region_description(self):
        query = Query(region=BoundingBox(45.0, -125.0, 46.0, -124.0))
        assert "region" in query.describe()

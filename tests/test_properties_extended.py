"""Property-based tests over the Refine, synonym, catalog-IO and
hierarchy machinery added on top of the core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    DatasetFeature,
    MemoryCatalog,
    VariableEntry,
    dump_catalog,
    load_catalog,
)
from repro.geo import BoundingBox, TimeInterval
from repro.hierarchy import ConceptHierarchy
from repro.refine import (
    MassEditEdit,
    MassEditOperation,
    RefineTable,
    RuleSet,
)
from repro.semantics import SynonymTable

value_text = st.text(
    alphabet="abcdefghij_0123456789 ", min_size=1, max_size=16
).map(str.strip).filter(bool)


@st.composite
def mass_edit_mappings(draw):
    """A from->to mapping with disjoint sources and targets."""
    sources = draw(
        st.lists(value_text, min_size=1, max_size=6, unique=True)
    )
    target = draw(value_text)
    return {s: target for s in sources if s != target}


class TestRuleSetProperties:
    @given(st.lists(mass_edit_mappings(), min_size=1, max_size=4))
    @settings(max_examples=50)
    def test_json_roundtrip_preserves_mapping(self, mappings):
        rules = RuleSet()
        for mapping in mappings:
            if not mapping:
                continue
            rules.append(
                MassEditOperation(
                    column="field",
                    edits=[
                        MassEditEdit((old,), new)
                        for old, new in mapping.items()
                    ],
                )
            )
        reloaded = RuleSet.loads(rules.dumps())
        assert reloaded.rename_mapping() == rules.rename_mapping()

    @given(mass_edit_mappings())
    @settings(max_examples=50)
    def test_apply_realizes_mapping(self, mapping):
        if not mapping:
            return
        table = RefineTable(
            columns=["field"],
            rows=[{"field": value} for value in mapping],
        )
        rules = RuleSet(
            [
                MassEditOperation(
                    column="field",
                    edits=[
                        MassEditEdit((old,), new)
                        for old, new in mapping.items()
                    ],
                )
            ]
        )
        rules.apply(table)
        for row, (old, new) in zip(table.rows, mapping.items()):
            assert row["field"] == new


class TestSynonymTableProperties:
    @given(st.dictionaries(
        st.text(alphabet="abcdef_", min_size=1, max_size=10),
        st.text(alphabet="ghijkl_", min_size=1, max_size=10),
        min_size=0, max_size=8,
    ))
    @settings(max_examples=50)
    def test_dumps_loads_identity(self, pairs):
        table = SynonymTable()
        from repro.text import normalize_name

        for alternate, preferred in pairs.items():
            # Skip pairs whose normalized forms collide with earlier
            # entries (the table rejects genuine conflicts by design).
            if table.resolve(alternate) not in (None, preferred):
                continue
            if normalize_name(alternate) == normalize_name(preferred):
                continue
            try:
                table.add(preferred, alternate)
            except Exception:
                continue
        reloaded = SynonymTable.loads(table.dumps())
        assert list(reloaded) == list(table)

    @given(st.text(alphabet="abc_ ", min_size=1, max_size=12))
    @settings(max_examples=50)
    def test_contains_after_add(self, name):
        from repro.text import normalize_name

        if not normalize_name(name):
            return
        table = SynonymTable()
        table.add(name)
        assert table.contains(name)


def _feature(dataset_id, lat, lon, t0, duration, names):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=dataset_id,
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat, lon),
        interval=TimeInterval(t0, t0 + duration),
        row_count=3,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "m", 3, 0.0, 1.0, 0.5, 0.1)
            for name in names
        ],
    )


class TestCatalogIoProperties:
    @given(st.lists(
        st.tuples(
            st.floats(min_value=-89, max_value=89, allow_nan=False),
            st.floats(min_value=-179, max_value=179, allow_nan=False),
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            st.floats(min_value=0, max_value=1e7, allow_nan=False),
            st.lists(
                st.text(alphabet="abcdef_", min_size=1, max_size=8),
                min_size=1, max_size=4, unique=True,
            ),
        ),
        min_size=0, max_size=6,
    ))
    @settings(max_examples=40)
    def test_roundtrip_any_catalog(self, specs):
        catalog = MemoryCatalog()
        for i, (lat, lon, t0, duration, names) in enumerate(specs):
            catalog.upsert(
                _feature(f"d{i}", lat, lon, t0, duration, names)
            )
        restored = MemoryCatalog()
        count = load_catalog(dump_catalog(catalog), restored)
        assert count == len(catalog)
        for dataset_id in catalog.dataset_ids():
            a, b = catalog.get(dataset_id), restored.get(dataset_id)
            assert a.bbox == b.bbox
            assert a.interval == b.interval
            assert a.variable_names() == b.variable_names()


@st.composite
def random_forests(draw):
    """A random parent assignment that is guaranteed acyclic."""
    size = draw(st.integers(min_value=1, max_value=12))
    names = [f"n{i}" for i in range(size)]
    parents = {}
    for i, name in enumerate(names):
        if i == 0:
            parents[name] = None
        else:
            parent_index = draw(
                st.one_of(st.none(), st.integers(min_value=0, max_value=i - 1))
            )
            parents[name] = (
                None if parent_index is None else names[parent_index]
            )
    return names, parents


class TestHierarchyProperties:
    @given(random_forests(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=50)
    def test_flattened_caps_depth_and_keeps_nodes(self, forest, max_depth):
        names, parents = forest
        hierarchy = ConceptHierarchy()
        for name in names:
            hierarchy.add(name, parent=parents[name])
        flat = hierarchy.flattened(max_depth)
        assert len(flat) == len(hierarchy)
        assert all(depth <= max_depth for __, depth in flat.walk())

    @given(random_forests())
    @settings(max_examples=50)
    def test_expand_contains_only_measurable(self, forest):
        names, parents = forest
        hierarchy = ConceptHierarchy()
        for i, name in enumerate(names):
            hierarchy.add(name, parent=parents[name], measurable=i % 2 == 0)
        for name in names:
            for expanded in hierarchy.expand(name):
                assert hierarchy.node(expanded).measurable

"""Cross-module integration tests: the full poster story end-to-end."""

from datetime import datetime

import pytest

from repro import (
    DataNearHere,
    GeoPoint,
    Query,
    TimeInterval,
    VariableTerm,
)
from repro.archive import (
    VOCABULARY,
    messy_archive_fixture,
    truth_index,
    uniform_mess_spec,
)
from repro.catalog import SqliteCatalog
from repro.curator import (
    CuratorSession,
    SimulatedCurator,
    run_curator_loop,
)
from repro.refine import RuleSet
from repro.wrangling import WranglingState, default_chain
from tests.conftest import SMALL_SPEC


class TestWranglingImprovesSearch:
    """The headline claim: taming the mess makes ranked search better."""

    def test_recall_of_renamed_variables(self, messy_archive, messy_fs):
        fs, truth = messy_fs
        system = DataNearHere(fs)
        system.wrangle()
        ti = truth_index(messy_archive)
        # For every messy (renamed) searchable variable, querying the
        # CANONICAL name must now reach the dataset that carries it.
        misses = 0
        checked = 0
        for (path, written), vt in ti.items():
            if vt.category in ("clean", "excessive") or vt.canonical is None:
                continue
            if vt.auxiliary:
                continue
            checked += 1
            results = system.search(
                Query(variables=(VariableTerm(vt.canonical),)), limit=100
            )
            ids = {
                r.dataset_id
                for r in results
                if r.breakdown.variables[0][1] >= 0.999
            }
            if path not in ids:
                misses += 1
        assert checked > 0
        assert misses / checked < 0.05

    def test_unwrangled_catalog_misses_most(self, messy_fs):
        from repro.archive import parse_file
        from repro.catalog import MemoryCatalog
        from repro.core import SearchEngine, extract_feature

        fs, truth = messy_fs
        raw = MemoryCatalog()
        for record in fs:
            if record.extension in ("csv", "cdl"):
                raw.upsert(
                    extract_feature(parse_file(record.content, record.path))
                )
        engine = SearchEngine(raw)
        wrangled = DataNearHere(fs)
        wrangled.wrangle()
        # Exact-name recall over the raw catalog is poor for messy vars;
        # aggregate over several canonical variables.
        probes = ["salinity", "water_temperature", "dissolved_oxygen",
                  "turbidity", "depth"]
        exact = exact_w = 0
        for name in probes:
            query = Query(variables=(VariableTerm(name),))
            exact += sum(
                1
                for r in engine.search(query, limit=100)
                if r.breakdown.variables[0][1] >= 0.999
            )
            exact_w += sum(
                1
                for r in wrangled.search(query, limit=100)
                if r.breakdown.variables[0][1] >= 0.999
            )
        assert exact_w > exact


class TestSqliteEndToEnd:
    def test_publish_into_sqlite_and_search(self, messy_fs, tmp_path):
        fs, __ = messy_fs
        published = SqliteCatalog(str(tmp_path / "catalog.db"))
        system = DataNearHere(fs, published=published)
        system.wrangle()
        # The SQLite store must actually be the published catalog (a
        # falsy-when-empty store must not be silently replaced).
        assert system.state.published is published
        assert len(published) > 0
        results = system.search(
            Query(location=GeoPoint(46.1, -123.9)), limit=5
        )
        assert results
        published.close()


class TestRefineRoundTripThroughChain:
    def test_exported_rules_replay_on_fresh_state(self, messy_fs):
        fs, __ = messy_fs
        state = WranglingState(fs=fs)
        chain = default_chain()
        chain.run(state)
        rules_json = (
            state.discovered_rules.dumps()
            if state.discovered_rules is not None
            else "[]"
        )
        # A fresh wrangle of the same archive can import those rules
        # instead of re-discovering (the poster's export/replay cycle).
        from repro.wrangling import (
            PerformDiscoveredTransformations,
            PerformKnownTransformations,
            ProcessChain,
            Publish,
            ScanArchive,
        )

        state2 = WranglingState(fs=fs)
        chain2 = ProcessChain(
            components=[
                ScanArchive(),
                PerformKnownTransformations(),
                PerformDiscoveredTransformations(
                    rules=RuleSet.loads(rules_json)
                ),
                Publish(),
            ]
        )
        chain2.run(state2)
        names1 = state.published.variable_name_counts()
        names2 = state2.published.variable_name_counts()
        assert set(names2) == set(names1)


class TestMessRateScaling:
    @pytest.mark.parametrize("rate", [0.0, 0.3, 0.6])
    def test_wrangling_tames_increasing_mess(self, rate):
        fs, truth, archive = messy_archive_fixture(
            spec=SMALL_SPEC, mess_spec=uniform_mess_spec(rate, seed=5)
        )
        system = DataNearHere(fs)
        system.wrangle()
        names = system.engine.catalog.variable_name_counts()
        canonical = sum(
            c for n, c in names.items() if n in VOCABULARY
        )
        total = sum(names.values())
        assert canonical / total > 0.85


class TestFullCuratorStory:
    def test_poster_workflow(self, messy_archive, messy_fs):
        """Activities 1-4 in sequence, ending with a searchable catalog."""
        fs, __ = messy_fs
        session = CuratorSession(fs)  # activity 1 (default composition)
        oracle = {
            written: vt.canonical
            for (__, written), vt in truth_index(messy_archive).items()
        }
        curator = SimulatedCurator(actions_per_iteration=25, oracle=oracle)
        result = run_curator_loop(session, curator, max_iterations=10)
        assert result.converged  # activity 4 passes eventually
        # The published catalog supports the paper's example query.
        from repro.core import SearchEngine

        engine = SearchEngine(
            session.state.published, hierarchy=session.state.hierarchy
        )
        results = engine.search(
            Query(
                location=GeoPoint(45.5, -124.4),
                interval=TimeInterval.from_datetimes(
                    datetime(2010, 5, 1), datetime(2010, 8, 31)
                ),
                variables=(
                    VariableTerm("temperature", low=5.0, high=10.0),
                ),
            ),
            limit=5,
        )
        assert results

"""Unit tests for repro.hierarchy.taxonomy."""

import pytest

from repro.archive import VOCABULARY
from repro.hierarchy import TaxonomyLinks, default_taxonomy_links


class TestTaxonomyLinks:
    def test_add_and_lookup(self):
        links = TaxonomyLinks()
        links.add("water_temperature", "cf", ("water", "temperature"))
        found = links.links_for("water_temperature")
        assert len(found) == 1
        assert found[0].leaf == "temperature"
        assert str(found[0]) == "cf:water > temperature"

    def test_empty_path_raises(self):
        with pytest.raises(ValueError):
            TaxonomyLinks().add("x", "cf", ())

    def test_duplicate_link_raises(self):
        links = TaxonomyLinks()
        links.add("x", "cf", ("a",))
        with pytest.raises(ValueError):
            links.add("x", "cf", ("a",))

    def test_multiple_taxonomies_per_variable(self):
        links = TaxonomyLinks()
        links.add("x", "cf", ("a",))
        links.add("x", "gcmd", ("b", "c"))
        assert links.taxonomies() == ["cf", "gcmd"]
        assert len(links.links_for("x")) == 2

    def test_unlinked_variable_empty(self):
        assert TaxonomyLinks().links_for("ghost") == []

    def test_variables_under_prefix(self):
        links = TaxonomyLinks()
        links.add("a", "gcmd", ("Earth Science", "Oceans", "a"))
        links.add("b", "gcmd", ("Earth Science", "Atmosphere", "b"))
        under = links.variables_under("gcmd", ("Earth Science", "Oceans"))
        assert under == ["a"]

    def test_len_counts_links(self):
        links = TaxonomyLinks()
        links.add("x", "cf", ("a",))
        links.add("y", "cf", ("b",))
        assert len(links) == 2


class TestDefaultLinks:
    def test_every_canonical_variable_linked_twice(self):
        links = default_taxonomy_links()
        for name in VOCABULARY:
            assert len(links.links_for(name)) == 2, name

    def test_air_variables_under_atmosphere(self):
        links = default_taxonomy_links()
        under = links.variables_under(
            "gcmd", ("Earth Science", "Atmosphere")
        )
        assert "air_temperature" in under
        assert "water_temperature" not in under

"""Property test: the fast path is exact.

The pruned-exactness contract — indexes, upper-bound pruning, the
bounded top-k heap and the query cache must return *identical* results
(ids, scores, order) to an unindexed, uncached full scan — holds for
every catalog, query, epsilon and decay shape Hypothesis can dream up.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import DatasetFeature, MemoryCatalog, VariableEntry
from repro.core import Query, ScoringConfig, SearchEngine, VariableTerm
from repro.core.scoring import DECAY_SHAPES
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.hierarchy import vocabulary_hierarchy

HIERARCHY = vocabulary_hierarchy()

# A small pool so random catalogs and queries collide on names —
# exact hits, hierarchy expansions, near-misses and no-matches all occur.
NAME_POOL = (
    "water_temperature", "water_temp", "temperature",
    "salinity", "salnity", "oxygen", "chlorophyll", "depth",
)

latitudes = st.floats(40.0, 50.0, allow_nan=False)
longitudes = st.floats(-128.0, -120.0, allow_nan=False)
times = st.floats(0.0, 1e7, allow_nan=False)


@st.composite
def features(draw, index):
    lat = draw(latitudes)
    lon = draw(longitudes)
    t0 = draw(times)
    n_vars = draw(st.integers(1, 3))
    variables = []
    for __ in range(n_vars):
        lo = draw(st.floats(-10.0, 20.0, allow_nan=False))
        variables.append(
            VariableEntry.from_written(
                draw(st.sampled_from(NAME_POOL)), "u", 10,
                lo, lo + draw(st.floats(0.1, 15.0, allow_nan=False)),
                lo, 1.0,
            )
        )
    return DatasetFeature(
        dataset_id=f"ds_{index:03d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon,
            lat + draw(st.floats(0.0, 0.5, allow_nan=False)),
            lon + draw(st.floats(0.0, 0.5, allow_nan=False)),
        ),
        interval=TimeInterval(
            t0, t0 + draw(st.floats(0.0, 1e6, allow_nan=False))
        ),
        row_count=10,
        source_directory="",
        variables=variables,
    )


@st.composite
def catalogs(draw):
    catalog = MemoryCatalog()
    for i in range(draw(st.integers(0, 30))):
        catalog.upsert(draw(features(i)))
    return catalog


@st.composite
def variable_terms(draw):
    name = draw(st.sampled_from(NAME_POOL))
    if draw(st.booleans()):
        lo = draw(st.floats(-10.0, 20.0, allow_nan=False))
        return VariableTerm(
            name, low=lo, high=lo + draw(st.floats(0.0, 10.0,
                                                   allow_nan=False))
        )
    return VariableTerm(name)


@st.composite
def queries(draw):
    location = region = None
    spatial = draw(st.sampled_from(["point", "region", "none"]))
    if spatial == "point":
        location = GeoPoint(draw(latitudes), draw(longitudes))
    elif spatial == "region":
        lat, lon = draw(latitudes), draw(longitudes)
        region = BoundingBox(lat, lon, lat + 1.0, lon + 1.0)
    interval = None
    if draw(st.booleans()):
        t0 = draw(times)
        interval = TimeInterval(
            t0, t0 + draw(st.floats(0.0, 1e6, allow_nan=False))
        )
    return Query(
        location=location,
        region=region,
        interval=interval,
        variables=tuple(
            draw(st.lists(variable_terms(), max_size=2))
        ),
    )


@settings(max_examples=60, deadline=None)
@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(1, 8),
    epsilon=st.sampled_from([1e-4, 1e-3, 0.05, 0.5]),
    shape=st.sampled_from(DECAY_SHAPES),
    use_hierarchy=st.booleans(),
)
def test_fast_path_identical_to_full_scan(
    catalog, query, limit, epsilon, shape, use_hierarchy
):
    hierarchy = HIERARCHY if use_hierarchy else None
    config = ScoringConfig(decay_shape=shape)
    fast = SearchEngine(
        catalog, hierarchy=hierarchy, config=config, epsilon=epsilon
    )
    fast.build_indexes()
    naive = SearchEngine(
        catalog, hierarchy=hierarchy, config=config, indexes=None,
        cache=False,
    )
    expected = [
        (r.dataset_id, r.score) for r in naive.search(query, limit=limit)
    ]
    for attempt in range(2):  # second pass serves from the cache
        got = [
            (r.dataset_id, r.score)
            for r in fast.search(query, limit=limit)
        ]
        assert got == expected, (
            f"fast path diverged (attempt {attempt}, eps={epsilon}, "
            f"shape={shape}): {got} != {expected}"
        )


@settings(max_examples=30, deadline=None)
@given(
    catalog=catalogs(),
    query=queries(),
    shape=st.sampled_from(DECAY_SHAPES),
)
def test_total_matches_contract(catalog, query, shape):
    """Exact when the page never fills; a lower bound once it does."""
    config = ScoringConfig(decay_shape=shape)
    engine = SearchEngine(catalog, config=config, cache=False)
    exact = sum(
        1 for total in engine.score_all(query).values() if total > 0.0
    )
    full_page = engine.search(query, limit=len(catalog) + 1)
    assert full_page.total_matches == exact
    assert not full_page.truncated
    small_page = engine.search(query, limit=3)
    assert len(small_page) <= small_page.total_matches <= exact
    assert small_page.truncated == (
        small_page.total_matches > len(small_page)
    )

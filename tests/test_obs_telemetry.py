"""Unit tests for the telemetry registry: counters, histograms, spans,
worker merging, and snapshot determinism."""

from __future__ import annotations

import pytest

from repro import DataNearHere
from repro.archive import (
    MessSpec,
    generate_archive,
    inject_mess,
    render_archive,
)
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
    walk_span_tree,
)

from .conftest import SMALL_SPEC


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("x")
        t.count("x", 4)
        assert t.counter("x") == 5

    def test_unknown_counter_is_zero(self):
        assert Telemetry().counter("missing") == 0

    def test_gauge_overwrites(self):
        t = Telemetry()
        t.gauge("size", 10)
        t.gauge("size", 3)
        assert t.snapshot()["gauges"]["size"] == 3

    def test_disabled_registry_records_nothing(self):
        t = Telemetry(enabled=False)
        t.count("x")
        t.gauge("g", 1)
        t.observe("h", 0.5)
        with t.span("s"):
            pass
        snap = t.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx((0.5 + 2.0 + 20.0) / 3)
        assert h.min == 0.5
        assert h.max == 20.0
        assert h.counts == [1, 1, 1]

    def test_merge_adds_buckets(self):
        a = Histogram(bounds=(1.0,))
        b = Histogram(bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.1)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [2, 1]
        assert a.min == 0.1
        assert a.max == 2.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0,))
        b = Histogram(bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_percentiles_are_clamped_and_monotone(self):
        h = Histogram(bounds=DEFAULT_LATENCY_BOUNDS)
        for v in (0.001, 0.002, 0.004, 0.008, 0.2):
            h.observe(v)
        p50 = h.percentile(0.50)
        p95 = h.percentile(0.95)
        assert h.min <= p50 <= p95 <= h.max
        with pytest.raises(ValueError):
            h.percentile(50)

    def test_dict_round_trip(self):
        h = Histogram(bounds=(0.5, 1.5))
        h.observe(0.2)
        h.observe(1.0)
        restored = Histogram.from_dict(h.to_dict())
        assert restored.to_dict() == h.to_dict()

    def test_empty_round_trip(self):
        h = Histogram(bounds=(1.0,))
        payload = h.to_dict()
        assert payload["min"] is None and payload["max"] is None
        restored = Histogram.from_dict(payload)
        assert restored.count == 0
        assert restored.to_dict() == payload


class TestSpans:
    def test_nesting_builds_paths(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
        paths = [record.path for record in t.spans()]
        assert paths == ["outer/inner", "outer"]

    def test_root_covers_children(self):
        t = Telemetry()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        by_path = {r.path: r for r in t.spans()}
        child_total = (
            by_path["root/a"].duration + by_path["root/b"].duration
        )
        assert by_path["root"].duration >= child_total

    def test_error_status_and_propagation(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("nope")
        record = t.spans()[0]
        assert record.status == "error"
        assert "RuntimeError" in record.attrs["exception"]

    def test_span_times_even_when_disabled(self):
        t = Telemetry(enabled=False)
        with t.span("s") as span:
            pass
        assert span.duration >= 0.0
        assert t.spans() == []

    def test_attrs_are_coerced(self):
        t = Telemetry()
        with t.span("s", n=3, ok=True, obj=object()) as span:
            span.set("late", 1.5)
        attrs = t.spans()[0].attrs
        assert attrs["n"] == 3
        assert attrs["ok"] is True
        assert isinstance(attrs["obj"], str)
        assert attrs["late"] == 1.5

    def test_event_is_zero_duration_span(self):
        t = Telemetry()
        with t.span("run"):
            t.event("marker", code="x")
        record = next(r for r in t.spans() if r.name == "marker")
        assert record.path == "run/marker"
        assert record.duration == 0.0
        assert record.attrs["code"] == "x"

    def test_max_spans_cap(self):
        t = Telemetry(max_spans=3)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans()) == 3
        assert t.snapshot()["dropped_spans"] == 2


class TestActiveRegistry:
    def test_default_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_use_telemetry_nests_and_restores(self):
        outer = Telemetry()
        inner = Telemetry()
        with use_telemetry(outer):
            assert get_telemetry() is outer
            with use_telemetry(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is outer
        assert get_telemetry().enabled is False

    def test_set_telemetry_returns_previous(self):
        t = Telemetry()
        previous = set_telemetry(t)
        try:
            assert get_telemetry() is t
        finally:
            set_telemetry(previous)


class TestWorkerMerge:
    def test_merge_reparents_spans_and_adds_counters(self):
        worker = Telemetry()
        with worker.span("chunk"):
            with worker.span("file"):
                pass
        worker.count("files", 2)
        worker.observe("lat", 0.01)

        parent = Telemetry()
        with parent.span("scan"):
            parent.merge_worker(worker.export())
        paths = {r.path for r in parent.spans()}
        assert "scan/chunk" in paths
        assert "scan/chunk/file" in paths
        assert parent.counter("files") == 2
        assert parent.histogram("lat").count == 1

    def test_merge_outside_any_span_keeps_paths(self):
        worker = Telemetry()
        with worker.span("chunk"):
            pass
        parent = Telemetry()
        parent.merge_worker(worker.export())
        assert [r.path for r in parent.spans()] == ["chunk"]

    def test_export_is_plain_data(self):
        import pickle

        t = Telemetry()
        with t.span("s"):
            t.count("c")
        export = pickle.loads(pickle.dumps(t.export()))
        restored = Telemetry()
        restored.merge_worker(export)
        assert restored.counter("c") == 1


def _wrangle_counters(workers: int) -> dict:
    archive = inject_mess(generate_archive(SMALL_SPEC), MessSpec(seed=99))
    fs, __ = render_archive(archive)
    system = DataNearHere(fs, workers=workers)
    system.wrangle()
    return system.telemetry_snapshot()


class TestPipelineTelemetry:
    def test_parallel_totals_equal_serial(self):
        serial = _wrangle_counters(1)
        parallel = _wrangle_counters(4)
        assert serial["counters"] == parallel["counters"]
        assert (
            serial["span_stats"].keys() == parallel["span_stats"].keys()
        )

    def test_snapshot_deterministic_across_identical_runs(self):
        a = _wrangle_counters(1)
        b = _wrangle_counters(1)
        assert a["counters"] == b["counters"]
        assert a["gauges"] == b["gauges"]
        assert [s["path"] for s in a["spans"]] == [
            s["path"] for s in b["spans"]
        ]
        # Bucket placement depends on wall-clock latency; only the
        # observation totals are deterministic under a seeded run.
        hist_counts = lambda snap: {  # noqa: E731
            name: data["count"]
            for name, data in snap["histograms"].items()
        }
        assert hist_counts(a) == hist_counts(b)

    def test_walk_span_tree_in_execution_order(self):
        snapshot = _wrangle_counters(1)
        rows = list(walk_span_tree(snapshot))
        paths = [path for path, __, __, __ in rows]
        assert paths[0] == "wrangle"
        assert paths.index("wrangle/scan-archive") < paths.index(
            "wrangle/publish"
        )
        depths = {path: depth for path, __, depth, __ in rows}
        assert depths["wrangle"] == 0
        assert depths["wrangle/scan-archive"] == 1
        assert depths["wrangle/scan-archive/scan.extract"] == 2

"""Sharded scoring is exactly the serial path, property-tested.

The merge argument (DESIGN note 14): every result in the global
top-``k`` is, within its own shard, still among the best ``k`` — so the
union of per-shard top-``k`` heaps is a superset of the global page, and
pushing each shard's survivors through the global heap reproduces the
serial page exactly.  Hypothesis searches for counterexamples across
random catalogs, query shapes, limits and shard counts; equality is
checked on ids, scores, order AND the full per-term breakdowns.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.query import Query, VariableTerm
from repro.core.search import SearchEngine
from repro.geo import BoundingBox, GeoPoint, TimeInterval

VARIABLE_POOL = [
    "water_temperature",
    "salinity",
    "dissolved_oxygen",
    "chlorophyll",
    "wind_speed",
]

finite_lat = st.floats(
    min_value=42.0, max_value=49.0, allow_nan=False, allow_infinity=False
)
finite_lon = st.floats(
    min_value=-127.0, max_value=-121.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def features(draw, index: int):
    lat = draw(finite_lat)
    lon = draw(finite_lon)
    start = draw(st.floats(min_value=0.0, max_value=1e7))
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return DatasetFeature(
        dataset_id=f"ds_{index:04d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon, lat + draw(st.floats(0.0, 0.5)),
            lon + draw(st.floats(0.0, 0.5)),
        ),
        interval=TimeInterval(start, start + draw(st.floats(0.0, 1e6))),
        row_count=draw(st.integers(1, 500)),
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
            for name in names
        ],
    )


@st.composite
def catalogs(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    catalog = MemoryCatalog()
    catalog.upsert_many(
        [draw(features(index)) for index in range(count)]
    )
    return catalog


@st.composite
def queries(draw):
    location = None
    radius = 50.0
    if draw(st.booleans()):
        location = GeoPoint(draw(finite_lat), draw(finite_lon))
        radius = draw(st.floats(min_value=1.0, max_value=500.0))
    interval = None
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=1e7))
        interval = TimeInterval(
            start, start + draw(st.floats(0.0, 1e6))
        )
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=0 if (location or interval) else 1,
            max_size=2,
            unique=True,
        )
    )
    return Query(
        location=location,
        radius_km=radius,
        interval=interval,
        variables=tuple(VariableTerm(name=name) for name in names),
    )


def page(results):
    return [
        (r.dataset_id, r.score, r.breakdown) for r in results
    ]


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
    workers=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_sharded_page_equals_serial_page(catalog, query, limit, workers):
    serial = SearchEngine(catalog, cache=False)
    sharded = SearchEngine(
        catalog, cache=False, shard_workers=workers, shard_threshold=1
    )
    try:
        expected = serial.search(query, limit=limit)
        actual = sharded.search(query, limit=limit)
        assert page(actual) == page(expected)
    finally:
        sharded.close()


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=20, deadline=None)
def test_sharded_with_indexes_equals_serial(catalog, query, limit):
    # Sharding composes with index pruning and the remainder rescan.
    serial = SearchEngine(catalog, cache=False)
    serial.build_indexes()
    sharded = SearchEngine(
        catalog, cache=False, shard_workers=3, shard_threshold=1
    )
    sharded.build_indexes()
    try:
        expected = serial.search(query, limit=limit)
        actual = sharded.search(query, limit=limit)
        assert page(actual) == page(expected)
    finally:
        sharded.close()


def test_below_threshold_stays_serial():
    catalog = MemoryCatalog()
    feature = DatasetFeature(
        dataset_id="only",
        title="only",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(
                "salinity", "psu", 10, 0.0, 30.0, 15.0, 5.0
            )
        ],
    )
    catalog.upsert(feature)
    engine = SearchEngine(
        catalog, cache=False, shard_workers=4, shard_threshold=1000
    )
    try:
        results = engine.search(
            Query(variables=(VariableTerm(name="salinity"),))
        )
        assert [r.dataset_id for r in results] == ["only"]
        # The executor is created lazily; under-threshold queries never
        # touch it.
        assert engine._executor is None
    finally:
        engine.close()


def test_shard_worker_validation():
    catalog = MemoryCatalog()
    import pytest

    with pytest.raises(ValueError):
        SearchEngine(catalog, shard_threshold=0)

"""Unit tests for repro.semantics.review (the semi-curated queue)."""

import pytest

from repro.semantics import (
    Resolution,
    ResolutionMethod,
    SynonymTable,
    TermResolver,
)
from repro.semantics.review import (
    ReviewQueue,
    ReviewVerdict,
    queue_from_catalog,
)


def fuzzy(written="salinty", canonical="salinity"):
    return Resolution(
        written=written,
        canonical=canonical,
        method=ResolutionMethod.FUZZY,
        note="edit d=1",
    )


def exact(written="salinity"):
    return Resolution(
        written=written, canonical=written, method=ResolutionMethod.EXACT
    )


class TestIntake:
    def test_fuzzy_is_queued(self):
        queue = ReviewQueue()
        assert queue.offer(fuzzy())
        assert len(queue) == 1

    def test_exact_passes_through(self):
        queue = ReviewQueue()
        assert not queue.offer(exact())
        assert len(queue) == 0

    def test_unresolved_not_queued(self):
        queue = ReviewQueue()
        assert not queue.offer(
            Resolution(written="x", canonical=None,
                       method=ResolutionMethod.UNRESOLVED)
        )

    def test_duplicates_bump_occurrences(self):
        queue = ReviewQueue()
        queue.offer(fuzzy())
        queue.offer(fuzzy())
        assert len(queue) == 1
        assert queue.pending()[0].occurrences == 2

    def test_evidence_method_queued(self):
        queue = ReviewQueue()
        assert queue.offer(
            Resolution(written="temp", canonical="water_temperature",
                       method=ResolutionMethod.AMBIGUITY_EVIDENCE)
        )


class TestDisposal:
    def test_approve_learns_synonym(self):
        queue = ReviewQueue()
        queue.offer(fuzzy())
        table = SynonymTable()
        table.add("salinity")
        item = queue.approve("salinty", "salinity", synonyms=table)
        assert item.verdict is ReviewVerdict.APPROVED
        assert table.resolve("salinty") == "salinity"
        assert queue.pending() == []

    def test_reject_blocks_requeue(self):
        queue = ReviewQueue()
        queue.offer(fuzzy())
        queue.reject("salinty", "salinity")
        assert not queue.offer(fuzzy())
        assert queue.counts()["rejected"] == 1

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            ReviewQueue().approve("a", "b")

    def test_approve_all(self):
        queue = ReviewQueue()
        queue.offer(fuzzy())
        queue.offer(fuzzy("turbididy", "turbidity"))
        table = SynonymTable()
        assert queue.approve_all(synonyms=table) == 2
        assert table.resolve("turbididy") == "turbidity"

    def test_pending_ordering_by_frequency(self):
        queue = ReviewQueue()
        queue.offer(fuzzy("a_typo", "salinity"))
        for __ in range(3):
            queue.offer(fuzzy("b_typo", "turbidity"))
        assert queue.pending()[0].written == "b_typo"


class TestRendering:
    def test_render_lists_items(self):
        queue = ReviewQueue()
        queue.offer(fuzzy())
        text = queue.render()
        assert "'salinty' -> 'salinity'" in text
        assert "fuzzy" in text

    def test_render_empty(self):
        assert "(empty)" in ReviewQueue().render()


class TestQueueFromCatalog:
    def test_catalog_fuzzy_resolutions_queued(self, raw_catalog):
        queue = queue_from_catalog(raw_catalog, TermResolver())
        # The messy fixture contains misspellings -> fuzzy proposals.
        assert len(queue) > 0
        for item in queue.pending():
            assert item.method in ("fuzzy", "ambiguity-evidence")

    def test_approving_queue_makes_resolutions_known(self, raw_catalog):
        resolver = TermResolver()
        queue = queue_from_catalog(raw_catalog, resolver)
        # Pick a fuzzy proposal: those are safe to learn globally
        # (ambiguity-evidence items are context-dependent by design).
        sample = next(
            item for item in queue.pending() if item.method == "fuzzy"
        )
        queue.approve(
            sample.written, sample.proposed, synonyms=resolver.synonyms
        )
        res = resolver.resolve_name(sample.written)
        assert res.method in (
            ResolutionMethod.SYNONYM, ResolutionMethod.EXACT,
        )
        assert res.canonical == sample.proposed


class TestAmbiguousFormsNotLearned:
    def test_ambiguous_approval_skips_synonym_table(self):
        queue = ReviewQueue()
        queue.offer(
            Resolution(written="pres", canonical="water_pressure",
                       method=ResolutionMethod.AMBIGUITY_EVIDENCE)
        )
        table = SynonymTable()
        item = queue.approve("pres", "water_pressure", synonyms=table)
        assert item.verdict is ReviewVerdict.APPROVED
        assert not table.contains("pres")
        assert "context-dependent" in item.note

    def test_mixed_context_approvals_do_not_conflict(self):
        # 'pres' proposed as water_pressure on a CTD and air_pressure on
        # a met station: both approvals succeed, neither poisons the
        # table (the original motivating failure).
        queue = ReviewQueue()
        queue.offer(
            Resolution(written="pres", canonical="water_pressure",
                       method=ResolutionMethod.AMBIGUITY_EVIDENCE)
        )
        queue.offer(
            Resolution(written="pres", canonical="air_pressure",
                       method=ResolutionMethod.AMBIGUITY_EVIDENCE)
        )
        table = SynonymTable()
        assert queue.approve_all(synonyms=table) == 2
        assert not table.contains("pres")

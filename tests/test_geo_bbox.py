"""Unit tests for repro.geo.bbox."""

import pytest

from repro.geo import BoundingBox, EmptyBoundingBoxError, GeoPoint


@pytest.fixture()
def estuary_box():
    return BoundingBox(46.0, -124.2, 46.3, -123.5)


class TestConstruction:
    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(46.3, -124.2, 46.0, -123.5)
        with pytest.raises(ValueError):
            BoundingBox(46.0, -123.5, 46.3, -124.2)

    def test_from_point_is_degenerate(self):
        box = BoundingBox.from_point(GeoPoint(45.5, -124.4))
        assert box.is_point
        assert box.center == GeoPoint(45.5, -124.4)

    def test_from_points_tightest(self):
        box = BoundingBox.from_points(
            [GeoPoint(45.0, -125.0), GeoPoint(46.0, -124.0),
             GeoPoint(45.5, -124.5)]
        )
        assert box.as_tuple() == (45.0, -125.0, 46.0, -124.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(EmptyBoundingBoxError):
            BoundingBox.from_points([])

    def test_from_points_accepts_generator(self):
        box = BoundingBox.from_points(
            GeoPoint(44.0 + i, -120.0) for i in range(3)
        )
        assert box.max_lat == 46.0


class TestGeometry:
    def test_contains_point_inside(self, estuary_box):
        assert estuary_box.contains_point(GeoPoint(46.1, -124.0))

    def test_contains_point_on_border(self, estuary_box):
        assert estuary_box.contains_point(GeoPoint(46.0, -124.2))

    def test_contains_point_outside(self, estuary_box):
        assert not estuary_box.contains_point(GeoPoint(45.0, -124.0))

    def test_intersects_overlapping(self, estuary_box):
        other = BoundingBox(46.2, -123.8, 46.5, -123.0)
        assert estuary_box.intersects(other)
        assert other.intersects(estuary_box)

    def test_intersects_touching_border(self, estuary_box):
        other = BoundingBox(46.3, -123.5, 46.6, -123.0)
        assert estuary_box.intersects(other)

    def test_intersects_disjoint(self, estuary_box):
        other = BoundingBox(47.0, -123.0, 47.5, -122.0)
        assert not estuary_box.intersects(other)

    def test_union_covers_both(self, estuary_box):
        other = BoundingBox(47.0, -123.0, 47.5, -122.0)
        union = estuary_box.union(other)
        assert union.as_tuple() == (46.0, -124.2, 47.5, -122.0)

    def test_expand_grows_every_side(self, estuary_box):
        grown = estuary_box.expand(0.1)
        assert grown.min_lat == pytest.approx(45.9)
        assert grown.max_lon == pytest.approx(-123.4)

    def test_expand_clamps_at_poles(self):
        box = BoundingBox(89.5, 0.0, 89.9, 1.0)
        assert box.expand(1.0).max_lat == 90.0

    def test_expand_negative_raises(self, estuary_box):
        with pytest.raises(ValueError):
            estuary_box.expand(-0.1)


class TestDistance:
    def test_distance_zero_inside(self, estuary_box):
        assert estuary_box.distance_km_to_point(GeoPoint(46.1, -124.0)) == 0.0

    def test_distance_positive_outside(self, estuary_box):
        assert estuary_box.distance_km_to_point(GeoPoint(45.0, -124.0)) > 0

    def test_closest_point_clamps(self, estuary_box):
        nearest = estuary_box.closest_point_to(GeoPoint(45.0, -125.0))
        assert nearest == GeoPoint(46.0, -124.2)

    def test_distance_south_of_box_is_latitude_gap(self, estuary_box):
        d = estuary_box.distance_km_to_point(GeoPoint(45.0, -124.0))
        assert d == pytest.approx(111.2, abs=1.0)  # 1 degree latitude

    def test_box_to_box_zero_when_intersecting(self, estuary_box):
        assert estuary_box.distance_km_to_box(estuary_box) == 0.0

    def test_box_to_box_positive_when_disjoint(self, estuary_box):
        other = BoundingBox(48.0, -124.0, 48.5, -123.5)
        d = estuary_box.distance_km_to_box(other)
        assert d == pytest.approx(111.2 * 1.7, rel=0.05)

    def test_box_to_box_symmetric(self, estuary_box):
        other = BoundingBox(48.0, -124.0, 48.5, -123.5)
        assert estuary_box.distance_km_to_box(other) == pytest.approx(
            other.distance_km_to_box(estuary_box)
        )


class TestAccessors:
    def test_center(self, estuary_box):
        center = estuary_box.center
        assert center.lat == pytest.approx(46.15)
        assert center.lon == pytest.approx(-123.85)

    def test_width_height(self, estuary_box):
        assert estuary_box.width_degrees == pytest.approx(0.7)
        assert estuary_box.height_degrees == pytest.approx(0.3)

"""Unit tests for repro.text.phonetic."""

from repro.text import metaphone, soundex


class TestSoundex:
    def test_classic_examples(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Tymczak") == "T522"

    def test_same_code_for_similar(self):
        assert soundex("salinity") == soundex("salinitee")

    def test_padded_to_four(self):
        assert len(soundex("ray")) == 4

    def test_digits_preserved(self):
        assert soundex("fluores375").endswith("375")
        assert soundex("fluores375") != soundex("fluores400")

    def test_empty(self):
        assert soundex("") == ""

    def test_only_digits(self):
        assert soundex("375") == "375"


class TestMetaphone:
    def test_misspelling_family_collides(self):
        assert metaphone("temperature") == metaphone("temperatoor")

    def test_ph_is_f(self):
        assert metaphone("phosphate") == metaphone("fosfate")

    def test_kn_silent_k(self):
        assert metaphone("knight")[0] == "N"

    def test_ck_single_k(self):
        assert metaphone("back") == metaphone("bak")

    def test_digits_preserved_and_distinguish(self):
        assert metaphone("fluores375") != metaphone("fluores400")

    def test_empty(self):
        assert metaphone("") == ""

    def test_doubled_letters_collapse(self):
        assert metaphone("fall") == metaphone("fal")

    def test_distinct_words_differ(self):
        assert metaphone("salinity") != metaphone("turbidity")

    def test_deterministic(self):
        assert metaphone("conductivity") == metaphone("conductivity")

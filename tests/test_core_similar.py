"""Unit tests for repro.core.similar (search by example)."""

import pytest

from repro.catalog import DatasetNotFoundError, MemoryCatalog
from repro.core.similar import feature_similarity, similar_datasets
from repro.hierarchy import vocabulary_hierarchy

from tests.test_core_search import feature


@pytest.fixture()
def catalog():
    cat = MemoryCatalog()
    # seed: estuary station, summer, temperature+salinity
    cat.upsert(feature("seed", 46.1, -123.9, 0, 1000,
                       [("water_temperature", 5, 15), ("salinity", 0, 30)]))
    # twin: same place/time/variables
    cat.upsert(feature("twin", 46.1, -123.9, 500, 1500,
                       [("water_temperature", 6, 14), ("salinity", 5, 28)]))
    # same place, different season
    cat.upsert(feature("later", 46.1, -123.9, 5e7, 5.1e7,
                       [("water_temperature", 5, 15), ("salinity", 0, 30)]))
    # same time, far away
    cat.upsert(feature("far", 30.0, -140.0, 0, 1000,
                       [("water_temperature", 5, 15), ("salinity", 0, 30)]))
    # same place/time, unrelated variables
    cat.upsert(feature("othervars", 46.1, -123.9, 0, 1000,
                       [("wind_speed", 0, 20)]))
    return cat


class TestSimilarDatasets:
    def test_twin_ranks_first(self, catalog):
        results = similar_datasets(catalog, "seed", limit=4)
        assert results[0].dataset_id == "twin"
        assert results[0].score > results[-1].score

    def test_seed_excluded(self, catalog):
        results = similar_datasets(catalog, "seed", limit=10)
        assert all(r.dataset_id != "seed" for r in results)

    def test_limit(self, catalog):
        assert len(similar_datasets(catalog, "seed", limit=2)) == 2

    def test_bad_limit_raises(self, catalog):
        with pytest.raises(ValueError):
            similar_datasets(catalog, "seed", limit=0)

    def test_unknown_seed_raises(self, catalog):
        with pytest.raises(DatasetNotFoundError):
            similar_datasets(catalog, "ghost")

    def test_dimension_breakdowns(self, catalog):
        results = {r.dataset_id: r for r in
                   similar_datasets(catalog, "seed", limit=10)}
        assert results["far"].spatial < results["twin"].spatial
        assert results["later"].temporal < results["twin"].temporal
        assert results["othervars"].variables < results["twin"].variables

    def test_explain(self, catalog):
        result = similar_datasets(catalog, "seed", limit=1)[0]
        text = result.explain()
        assert "spatial=" in text and "temporal=" in text


class TestFeatureSimilarity:
    def test_self_similarity_is_one(self, catalog):
        seed = catalog.get("seed")
        total, spatial, temporal, variables = feature_similarity(seed, seed)
        assert total == pytest.approx(1.0)
        assert (spatial, temporal, variables) == (1.0, 1.0, 1.0)

    def test_symmetric(self, catalog):
        a, b = catalog.get("seed"), catalog.get("far")
        assert feature_similarity(a, b) == feature_similarity(b, a)

    def test_hierarchy_groups_related_variables(self, catalog):
        catalog.upsert(feature("fluor1", 46.1, -123.9, 0, 1000,
                               [("fluorescence_375nm", 0, 5)]))
        catalog.upsert(feature("fluor2", 46.1, -123.9, 0, 1000,
                               [("chlorophyll", 0, 20)]))
        a, b = catalog.get("fluor1"), catalog.get("fluor2")
        __, ___, ____, without = feature_similarity(a, b, hierarchy=None)
        __, ___, ____, with_h = feature_similarity(
            a, b, hierarchy=vocabulary_hierarchy()
        )
        assert without == 0.0
        assert with_h == 1.0  # both roll up to 'fluorescence'

    def test_in_unit_interval(self, catalog):
        ids = catalog.dataset_ids()
        for a_id in ids:
            for b_id in ids:
                total, *parts = feature_similarity(
                    catalog.get(a_id), catalog.get(b_id)
                )
                assert 0.0 <= total <= 1.0
                for part in parts:
                    assert 0.0 <= part <= 1.0

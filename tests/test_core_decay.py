"""Unit tests for the decay-shape machinery in repro.core.scoring."""

import math

import pytest

from repro.catalog import MemoryCatalog
from repro.core import (
    DECAY_SHAPES,
    Query,
    ScoringConfig,
    SearchEngine,
    decay,
    decay_horizon,
    score_feature,
)
from repro.geo import GeoPoint, TimeInterval

from tests.test_core_search import feature


class TestDecayFunctions:
    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    def test_zero_distance_is_one(self, shape):
        assert decay(0.0, shape) == 1.0

    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    def test_monotone_non_increasing(self, shape):
        values = [decay(d, shape) for d in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    def test_in_unit_interval(self, shape):
        for d in (0.0, 0.1, 1.0, 10.0, 100.0):
            assert 0.0 <= decay(d, shape) <= 1.0

    def test_linear_cuts_off(self):
        assert decay(1.0, "linear") == 0.0
        assert decay(2.0, "linear") == 0.0

    def test_reciprocal_heavy_tail(self):
        assert decay(10.0, "reciprocal") > decay(10.0, "exponential")

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            decay(-1.0, "exponential")

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            decay(1.0, "sinusoidal")


class TestDecayHorizon:
    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    @pytest.mark.parametrize("epsilon", [1e-1, 1e-3, 1e-6])
    def test_horizon_is_correct_inverse(self, shape, epsilon):
        horizon = decay_horizon(epsilon, shape)
        assert decay(horizon, shape) <= epsilon + 1e-12
        # Just inside the horizon the similarity exceeds epsilon
        # (except linear at its hard cutoff boundary).
        if shape != "linear":
            assert decay(horizon * 0.99, shape) > epsilon

    def test_bad_epsilon_raises(self):
        with pytest.raises(ValueError):
            decay_horizon(0.0, "exponential")
        with pytest.raises(ValueError):
            decay_horizon(1.0, "exponential")

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            decay_horizon(0.1, "sinusoidal")


class TestShapedScoring:
    def test_config_rejects_unknown_shape(self):
        with pytest.raises(ValueError):
            ScoringConfig(decay_shape="bogus")

    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    def test_scores_stay_in_unit_interval(self, shape):
        config = ScoringConfig(decay_shape=shape)
        f = feature("d", 46.0, -124.0, 0, 1000,
                    [("salinity", 0, 30)])
        query = Query(
            location=GeoPoint(40.0, -124.0),
            interval=TimeInterval(1e6, 2e6),
        )
        total = score_feature(query, f, config=config).total
        assert 0.0 <= total <= 1.0

    def test_linear_zeroes_far_datasets(self):
        config = ScoringConfig(decay_shape="linear",
                               location_decay_km=100.0)
        f = feature("d", 46.0, -124.0, 0, 1000, [("salinity", 0, 30)])
        far = Query(location=GeoPoint(20.0, -124.0))  # thousands of km
        assert score_feature(far, f, config=config).total == 0.0

    @pytest.mark.parametrize("shape", DECAY_SHAPES)
    def test_indexed_search_exact_for_every_shape(self, shape):
        catalog = MemoryCatalog()
        for i in range(40):
            catalog.upsert(
                feature(f"d{i:02d}", 44.0 + i * 0.1, -124.0,
                        i * 1e5, i * 1e5 + 1e4, [("salinity", 0, 30)])
            )
        config = ScoringConfig(decay_shape=shape)
        indexed = SearchEngine(catalog, config=config)
        indexed.build_indexes()
        plain = SearchEngine(catalog, config=config)
        query = Query(
            location=GeoPoint(45.0, -124.0),
            interval=TimeInterval(2e5, 4e5),
        )
        a = [(r.dataset_id, round(r.score, 12))
             for r in indexed.search(query, limit=10)]
        b = [(r.dataset_id, round(r.score, 12))
             for r in plain.search(query, limit=10)]
        assert a == b

"""Unit tests for repro.wrangling.validate (curatorial activity 4)."""

import pytest

from repro.wrangling import (
    AmbiguousRemaining,
    DirectoryFormatConsistency,
    ExpectedDatasets,
    ScanArchive,
    SynonymCoverage,
    UnknownUnits,
    UnresolvedNames,
    PerformKnownTransformations,
    WranglingState,
    validate,
)


@pytest.fixture()
def state(messy_fs):
    fs, __ = messy_fs
    s = WranglingState(fs=fs)
    ScanArchive().execute(s)
    return s


class TestDirectoryFormatConsistency:
    def test_consistent_archive_passes(self, state):
        report = validate(state, checks=[DirectoryFormatConsistency()])
        assert report.ok

    def test_mixed_directory_fails(self, state):
        # Force a CDL twin into a CSV directory.
        feature = state.working.get(state.working.dataset_ids()[0])
        twin = feature.copy()
        twin.dataset_id = feature.dataset_id + ".twin"
        twin.file_format = "cdl" if feature.file_format == "csv" else "csv"
        state.working.upsert(twin)
        report = validate(state, checks=[DirectoryFormatConsistency()])
        assert not report.ok
        assert report.failures[0].check == "directory-format-consistency"


class TestSynonymCoverage:
    def test_messy_names_fail_before_curation(self, state):
        report = validate(state, checks=[SynonymCoverage()])
        assert not report.ok  # misspellings are not in the table

    def test_failures_name_the_written_form(self, state):
        report = validate(state, checks=[SynonymCoverage()])
        for failure in report.failures:
            assert failure.subject in failure.message

    def test_adding_synonyms_fixes(self, state):
        report = validate(state, checks=[SynonymCoverage()])
        for failure in report.failures:
            state.resolver.synonyms.add("salinity", failure.subject)
        assert validate(state, checks=[SynonymCoverage()]).ok


class TestExpectedDatasets:
    def test_present_ids_pass(self, state):
        check = ExpectedDatasets(
            expected_ids=state.working.dataset_ids()[:3]
        )
        assert validate(state, checks=[check]).ok

    def test_missing_id_fails(self, state):
        check = ExpectedDatasets(expected_ids=["ghost/dataset.csv"])
        report = validate(state, checks=[check])
        assert len(report.failures) == 1

    def test_minimum_count(self, state):
        ok = ExpectedDatasets(minimum_count=1)
        assert validate(state, checks=[ok]).ok
        too_many = ExpectedDatasets(minimum_count=10_000)
        assert not validate(state, checks=[too_many]).ok


class TestUnresolvedAndAmbiguous:
    def test_unresolved_before_wrangling(self, state):
        report = validate(state, checks=[UnresolvedNames()])
        assert not report.ok

    def test_fewer_unresolved_after_known_transforms(self, state):
        before = len(validate(state, checks=[UnresolvedNames()]).failures)
        PerformKnownTransformations().execute(state)
        after = len(validate(state, checks=[UnresolvedNames()]).failures)
        assert after < before

    def test_ambiguous_flagged_after_known_transforms(self, state):
        PerformKnownTransformations().execute(state)
        report = validate(state, checks=[AmbiguousRemaining()])
        # The phantom 'temp' columns should be flagged (fixture-dependent
        # but the small spec produces at least one).
        for failure in report.failures:
            assert "temp" in failure.subject


class TestUnknownUnits:
    def test_known_units_pass(self, state):
        PerformKnownTransformations().execute(state)
        assert validate(state, checks=[UnknownUnits()]).ok

    def test_alien_unit_fails(self, state):
        feature = state.working.get(state.working.dataset_ids()[0])
        feature.variables[0].unit = "cubits"
        state.working.upsert(feature)
        report = validate(state, checks=[UnknownUnits()])
        assert not report.ok
        assert report.failures[0].subject == "cubits"


class TestReport:
    def test_default_checks_all_run(self, state):
        report = validate(state)
        assert report.checks_run == 5

    def test_count_by_check(self, state):
        report = validate(state)
        counts = report.count_by_check()
        assert sum(counts.values()) == len(report.failures)

    def test_summary_ok(self, state):
        PerformKnownTransformations().execute(state)
        report = validate(state, checks=[UnknownUnits()])
        assert "passed" in report.summary()

    def test_summary_failures(self, state):
        report = validate(state)
        assert "failures" in report.summary()

    def test_failures_for(self, state):
        report = validate(state)
        for failure in report.failures_for("synonym-coverage"):
            assert failure.check == "synonym-coverage"

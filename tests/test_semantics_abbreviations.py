"""Unit tests for repro.semantics.abbreviations."""

import pytest

from repro.semantics import (
    AbbreviationConflictError,
    AbbreviationTable,
    acronym_candidates,
    looks_like_abbreviation,
    vocabulary_abbreviation_table,
)


class TestAbbreviationTable:
    def test_add_and_expand(self):
        table = AbbreviationTable()
        table.add("MWHLA", "wave_height")
        assert table.expand("MWHLA") == "wave_height"

    def test_case_insensitive_lookup(self):
        table = AbbreviationTable()
        table.add("SST", "sea_surface_temperature")
        assert table.expand("sst") == "sea_surface_temperature"

    def test_unknown_none(self):
        assert AbbreviationTable().expand("XYZ") is None

    def test_conflict_raises(self):
        table = AbbreviationTable()
        table.add("DO", "dissolved_oxygen")
        with pytest.raises(AbbreviationConflictError):
            table.add("DO", "depth")

    def test_idempotent_rebind_same(self):
        table = AbbreviationTable()
        table.add("DO", "dissolved_oxygen")
        table.add("DO", "dissolved_oxygen")
        assert len(table) == 1

    def test_contains(self):
        table = AbbreviationTable()
        table.add("SAL", "salinity")
        assert "SAL" in table
        assert "sal" in table
        assert "XYZ" not in table

    def test_items_sorted(self):
        table = AbbreviationTable()
        table.add("WT", "water_temperature")
        table.add("AT", "air_temperature")
        assert [a for a, __ in table.items()] == ["AT", "WT"]


class TestLooksLikeAbbreviation:
    @pytest.mark.parametrize("name", ["SST", "MWHLA", "DO", "QA"])
    def test_positive(self, name):
        assert looks_like_abbreviation(name)

    @pytest.mark.parametrize(
        "name", ["salinity", "fluores375", "Temp", "x", "TOOLONGABBREV"]
    )
    def test_negative(self, name):
        assert not looks_like_abbreviation(name)


class TestAcronymCandidates:
    NAMES = [
        "sea_surface_temperature",
        "salinity",
        "wind_speed",
        "water_temperature",
        "wave_height",
    ]

    def test_sst_matches_sea_surface_temperature(self):
        candidates = acronym_candidates("SST", self.NAMES)
        assert candidates
        assert candidates[0].canonical == "sea_surface_temperature"

    def test_wspd_matches_wind_speed(self):
        candidates = acronym_candidates("WSPD", self.NAMES)
        names = [c.canonical for c in candidates]
        assert "wind_speed" in names

    def test_first_letter_must_match(self):
        candidates = acronym_candidates("XST", self.NAMES)
        assert candidates == []

    def test_empty_abbreviation(self):
        assert acronym_candidates("123", self.NAMES) == []

    def test_deterministic_ordering(self):
        a = acronym_candidates("WT", self.NAMES)
        b = acronym_candidates("WT", self.NAMES)
        assert [c.canonical for c in a] == [c.canonical for c in b]


class TestVocabularyTable:
    def test_paper_abbreviations_present(self):
        table = vocabulary_abbreviation_table()
        assert table.expand("MWHLA") == "wave_height"
        assert table.expand("SST") == "sea_surface_temperature"
        assert table.expand("DO") == "dissolved_oxygen"

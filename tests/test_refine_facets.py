"""Unit tests for repro.refine.facets."""

import pytest

from repro.refine import (
    EngineConfig,
    FacetConfigError,
    ListFacet,
    TextFacet,
    facet_from_json,
)


class TestListFacet:
    def test_matches_selection(self):
        facet = ListFacet(column="field", selection=("airtemp", "salinity"))
        assert facet.matches({"field": "airtemp"})
        assert not facet.matches({"field": "depth"})

    def test_invert(self):
        facet = ListFacet(column="field", selection=("airtemp",), invert=True)
        assert not facet.matches({"field": "airtemp"})
        assert facet.matches({"field": "depth"})

    def test_missing_column_no_match(self):
        facet = ListFacet(column="field", selection=("x",))
        assert not facet.matches({"other": "x"})

    def test_json_roundtrip(self):
        facet = ListFacet(column="field", selection=("a", "b"))
        parsed = facet_from_json(facet.to_json())
        assert parsed == facet


class TestTextFacet:
    def test_substring_case_insensitive(self):
        facet = TextFacet(column="field", query="TEMP")
        assert facet.matches({"field": "airtemp"})

    def test_case_sensitive(self):
        facet = TextFacet(column="field", query="TEMP", case_sensitive=True)
        assert not facet.matches({"field": "airtemp"})
        assert facet.matches({"field": "AIRTEMP"})

    def test_regex_mode(self):
        facet = TextFacet(column="field", query=r"^qa_", mode="regex")
        assert facet.matches({"field": "qa_level"})
        assert not facet.matches({"field": "aqua"})

    def test_bad_mode_raises(self):
        with pytest.raises(FacetConfigError):
            TextFacet(column="f", query="x", mode="fuzzy")

    def test_none_value_no_match(self):
        facet = TextFacet(column="field", query="x")
        assert not facet.matches({"field": None})

    def test_json_roundtrip(self):
        facet = TextFacet(column="field", query="qa", mode="regex")
        parsed = facet_from_json(facet.to_json())
        assert parsed == facet


class TestEngineConfig:
    def test_empty_matches_all(self):
        assert EngineConfig().matches({"anything": 1})

    def test_all_facets_must_match(self):
        config = EngineConfig(
            facets=(
                ListFacet(column="field", selection=("airtemp",)),
                TextFacet(column="unit", query="deg"),
            )
        )
        assert config.matches({"field": "airtemp", "unit": "degC"})
        assert not config.matches({"field": "airtemp", "unit": "PSU"})

    def test_from_json_none(self):
        assert EngineConfig.from_json(None).facets == ()

    def test_from_json_poster_shape(self):
        config = EngineConfig.from_json(
            {"facets": [], "mode": "row-based"}
        )
        assert config.mode == "row-based"

    def test_json_roundtrip(self):
        config = EngineConfig(
            facets=(ListFacet(column="field", selection=("a",)),)
        )
        parsed = EngineConfig.from_json(config.to_json())
        assert parsed == config

    def test_facet_without_column_raises(self):
        with pytest.raises(FacetConfigError):
            facet_from_json({"type": "list"})

    def test_unknown_facet_type_raises(self):
        with pytest.raises(FacetConfigError):
            facet_from_json({"type": "timeline", "columnName": "x"})

    def test_plain_selection_values_accepted(self):
        facet = facet_from_json(
            {"type": "list", "columnName": "f", "selection": ["a", "b"]}
        )
        assert facet.selection == ("a", "b")

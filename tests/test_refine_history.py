"""Unit tests for repro.refine.history (rule sets and JSON round-trips)."""

import json

import pytest

from repro.refine import (
    MassEditEdit,
    MassEditOperation,
    OperationError,
    RefineTable,
    RuleSet,
    TextTransformOperation,
)


def mass_edit(mapping: dict[str, str]) -> MassEditOperation:
    return MassEditOperation(
        column="field",
        edits=[
            MassEditEdit((old,), new) for old, new in mapping.items()
        ],
    )


class TestRuleSet:
    def test_apply_in_order(self):
        rules = RuleSet()
        rules.append(mass_edit({"a": "b"}))
        rules.append(mass_edit({"b": "c"}))
        table = RefineTable(columns=["field"], rows=[{"field": "a"}])
        rules.apply(table)
        assert table.rows[0]["field"] == "c"

    def test_len_and_extend(self):
        rules = RuleSet()
        rules.extend([mass_edit({"a": "b"}), mass_edit({"c": "d"})])
        assert len(rules) == 2

    def test_dumps_loads_roundtrip(self):
        rules = RuleSet()
        rules.append(mass_edit({"ATastn": "sea surface temperature"}))
        rules.append(
            TextTransformOperation(
                column="field", expression="value.trim()"
            )
        )
        loaded = RuleSet.loads(rules.dumps())
        assert len(loaded) == 2
        assert loaded.rename_mapping() == rules.rename_mapping()

    def test_loads_single_object(self):
        text = json.dumps(mass_edit({"a": "b"}).to_json())
        assert len(RuleSet.loads(text)) == 1

    def test_loads_non_history_raises(self):
        with pytest.raises(OperationError):
            RuleSet.loads('"just a string"')

    def test_dumps_is_valid_json_array(self):
        rules = RuleSet([mass_edit({"a": "b"})])
        data = json.loads(rules.dumps())
        assert isinstance(data, list)
        assert data[0]["op"] == "core/mass-edit"


class TestRenameMapping:
    def test_simple(self):
        rules = RuleSet([mass_edit({"a": "b", "x": "y"})])
        assert rules.rename_mapping() == {"a": "b", "x": "y"}

    def test_composition_across_operations(self):
        rules = RuleSet([mass_edit({"a": "b"}), mass_edit({"b": "c"})])
        mapping = rules.rename_mapping()
        assert mapping["a"] == "c"
        assert mapping["b"] == "c"

    def test_identity_dropped(self):
        rules = RuleSet([mass_edit({"a": "b"}), mass_edit({"b": "a"})])
        mapping = rules.rename_mapping()
        assert "a" not in mapping  # a->b->a collapses to identity

    def test_non_mass_edit_ops_ignored(self):
        rules = RuleSet(
            [TextTransformOperation(column="f", expression="value")]
        )
        assert rules.rename_mapping() == {}

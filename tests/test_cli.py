"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture()
def archive_dir(tmp_path):
    directory = str(tmp_path / "archive")
    code = main(["generate", directory, "--datasets", "12", "--seed", "3"])
    assert code == 0
    return directory


@pytest.fixture()
def catalog_path(archive_dir, tmp_path):
    path = str(tmp_path / "catalog.db")
    code = main(["wrangle", archive_dir, "--catalog", path])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_files(self, archive_dir, capsys):
        files = []
        for root, __, names in os.walk(archive_dir):
            files.extend(names)
        assert len(files) > 10

    def test_mess_rate_flag(self, tmp_path, capsys):
        directory = str(tmp_path / "clean")
        assert main(["generate", directory, "--mess", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_bad_mess_rate(self, tmp_path, capsys):
        assert main(
            ["generate", str(tmp_path / "x"), "--mess", "1.5"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestWrangle:
    def test_publishes_catalog(self, catalog_path, capsys):
        assert os.path.exists(catalog_path)
        assert os.path.getsize(catalog_path) > 0

    def test_empty_directory_errors(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        assert main(["wrangle", empty]) == 2
        assert "error" in capsys.readouterr().err

    def test_reports_validation(self, archive_dir, tmp_path, capsys):
        path = str(tmp_path / "cat2.db")
        main(["wrangle", archive_dir, "--catalog", path])
        out = capsys.readouterr().out
        assert "validation:" in out
        assert "published" in out


class TestSearch:
    def test_query_returns_page(self, catalog_path, capsys):
        code = main([
            "search", catalog_path,
            "near 46.1, -123.9 with salinity", "--limit", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Data Near Here" in out
        assert "score" in out or "1." in out

    def test_paper_query_text(self, catalog_path, capsys):
        code = main([
            "search", catalog_path,
            "near 45.5, -124.4 in mid-2010 with temperature "
            "between 5 and 10",
        ])
        assert code == 0

    def test_bad_query_errors(self, catalog_path, capsys):
        assert main(["search", catalog_path, "gibberish text"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_catalog_errors(self, tmp_path, capsys):
        empty = str(tmp_path / "empty.db")
        assert main(["search", empty, "with salinity"]) == 2


class TestSummary:
    def test_shows_dataset(self, catalog_path, capsys):
        from repro.catalog import SqliteCatalog

        with SqliteCatalog(catalog_path) as catalog:
            dataset_id = catalog.dataset_ids()[0]
        assert main(["summary", catalog_path, dataset_id]) == 0
        out = capsys.readouterr().out
        assert "Dataset summary:" in out

    def test_unknown_dataset_errors(self, catalog_path, capsys):
        assert main(["summary", catalog_path, "ghost.csv"]) == 2


class TestValidate:
    def test_messy_archive_fails_validation(self, archive_dir, capsys):
        code = main(["validate", archive_dir])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "failures" in out or "passed" in out


class TestMenu:
    def test_prints_hierarchy(self, catalog_path, capsys):
        assert main(["menu", catalog_path]) == 0
        out = capsys.readouterr().out
        assert "- " in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestExport:
    def test_export_to_file(self, catalog_path, tmp_path, capsys):
        out = str(tmp_path / "catalog.json")
        assert main(["export", catalog_path, out]) == 0
        import json

        with open(out) as fh:
            payload = json.load(fh)
        assert payload["format"] == "repro-metadata-catalog"
        assert payload["datasets"]

    def test_export_stdout(self, catalog_path, capsys):
        assert main(["export", catalog_path, "-"]) == 0
        assert "repro-metadata-catalog" in capsys.readouterr().out

    def test_export_roundtrip_via_load(self, catalog_path, tmp_path):
        from repro.catalog import MemoryCatalog, SqliteCatalog, load_catalog

        out = str(tmp_path / "catalog.json")
        main(["export", catalog_path, out])
        restored = MemoryCatalog()
        with open(out) as fh:
            count = load_catalog(fh.read(), restored)
        with SqliteCatalog(catalog_path) as original:
            assert count == len(original)


class TestFacets:
    def test_facets_output(self, catalog_path, capsys):
        assert main(["facets", catalog_path]) == 0
        out = capsys.readouterr().out
        assert "platforms:" in out
        assert "variable menu:" in out


class TestWrangleConfig:
    def test_save_and_reload_config(self, archive_dir, tmp_path, capsys):
        config = str(tmp_path / "process.json")
        cat1 = str(tmp_path / "c1.db")
        cat2 = str(tmp_path / "c2.db")
        assert main(["wrangle", archive_dir, "--catalog", cat1,
                     "--save-config", config]) == 0
        assert os.path.exists(config)
        assert main(["wrangle", archive_dir, "--catalog", cat2,
                     "--config", config]) == 0
        out = capsys.readouterr().out
        assert "loaded process config" in out
        from repro.catalog import SqliteCatalog

        with SqliteCatalog(cat1) as a, SqliteCatalog(cat2) as b:
            assert a.variable_name_counts() == b.variable_name_counts()

    def test_bad_config_path_errors(self, archive_dir, tmp_path, capsys):
        assert main([
            "wrangle", archive_dir,
            "--catalog", str(tmp_path / "c.db"),
            "--config", str(tmp_path / "missing.json"),
        ]) == 2
        assert "cannot load config" in capsys.readouterr().err


class TestWrangleWorkers:
    def test_workers_flag_matches_serial(self, archive_dir, tmp_path,
                                          capsys):
        from repro.catalog import SqliteCatalog

        serial = str(tmp_path / "serial.db")
        parallel = str(tmp_path / "parallel.db")
        assert main(["wrangle", archive_dir, "--catalog", serial,
                     "--workers", "1"]) == 0
        assert main(["wrangle", archive_dir, "--catalog", parallel,
                     "--workers", "2"]) == 0
        from repro.catalog.io import feature_to_dict

        with SqliteCatalog(serial) as a, SqliteCatalog(parallel) as b:
            assert (
                [feature_to_dict(f) for f in a.features()]
                == [feature_to_dict(f) for f in b.features()]
            )

    def test_bad_workers_errors(self, archive_dir, tmp_path, capsys):
        assert main([
            "wrangle", archive_dir,
            "--catalog", str(tmp_path / "c.db"),
            "--workers", "0",
        ]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_timings_flag(self, archive_dir, tmp_path, capsys):
        assert main(["wrangle", archive_dir,
                     "--catalog", str(tmp_path / "t.db"),
                     "--timings"]) == 0
        out = capsys.readouterr().out
        assert "scan-archive" in out
        assert "publish" in out
        # The span-tree view: component spans show their sub-stages.
        assert "Span timings" in out
        assert "scan.extract" in out

    def test_default_output_is_compact(self, archive_dir, tmp_path,
                                       capsys):
        assert main(["wrangle", archive_dir,
                     "--catalog", str(tmp_path / "t.db")]) == 0
        out = capsys.readouterr().out
        assert "wrangle run #" in out
        assert "--timings for the span-tree breakdown" in out
        assert "Span timings" not in out


class TestTelemetrySurfaces:
    def test_wrangle_trace_out_is_valid_jsonl(self, archive_dir, tmp_path,
                                              capsys):
        from repro.obs import read_trace, validate_trace_file

        trace = str(tmp_path / "wrangle.jsonl")
        assert main(["wrangle", archive_dir,
                     "--catalog", str(tmp_path / "t.db"),
                     "--trace-out", trace]) == 0
        out = capsys.readouterr().out
        assert "events written to" in out
        assert validate_trace_file(trace) == []
        snapshot = read_trace(trace)
        assert "wrangle" in snapshot["span_stats"]
        assert snapshot["counters"]["scan.seen"] > 0

    def test_wrangle_stats_report(self, archive_dir, tmp_path, capsys):
        assert main(["wrangle", archive_dir,
                     "--catalog", str(tmp_path / "t.db"),
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out
        assert "scan.seen" in out
        assert "Latency histograms" in out

    def test_search_trace_and_stats(self, catalog_path, tmp_path, capsys):
        from repro.obs import read_trace, validate_trace_file

        trace = str(tmp_path / "search.jsonl")
        assert main(["search", catalog_path, "with salinity",
                     "--repeat", "3", "--stats",
                     "--trace-out", trace]) == 0
        out = capsys.readouterr().out
        assert "search.queries" in out
        assert validate_trace_file(trace) == []
        snapshot = read_trace(trace)
        assert snapshot["counters"]["search.queries"] == 3
        assert snapshot["counters"]["search.cache_hits"] == 2


class TestSearchValidation:
    def test_limit_zero_rejected(self, catalog_path, capsys):
        assert main(["search", catalog_path, "with salinity",
                     "--limit", "0"]) == 2
        err = capsys.readouterr().err
        assert "--limit must be >= 1" in err

    def test_limit_negative_rejected(self, catalog_path, capsys):
        assert main(["search", catalog_path, "with salinity",
                     "--limit", "-3"]) == 2
        assert "--limit must be >= 1" in capsys.readouterr().err

    def test_nonfinite_radius_rejected(self, catalog_path, capsys):
        assert main(["search", catalog_path,
                     "near 45.0, -124.0 within inf km"]) == 2
        err = capsys.readouterr().err
        assert "radius must be positive and finite" in err

    def test_nonfinite_latitude_rejected(self, catalog_path, capsys):
        assert main(["search", catalog_path,
                     "near nan, -124.0 within 50 km"]) == 2
        err = capsys.readouterr().err
        assert "latitude and longitude must be finite" in err


class TestServeBench:
    def test_happy_path_reports(self, catalog_path, capsys):
        assert main(["serve-bench", catalog_path,
                     "--clients", "2", "--requests", "5",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Serve load report" in out
        assert "throughput" in out
        assert "rejected" in out
        assert "p99" in out

    def test_explicit_queries_and_sharding(self, catalog_path, capsys):
        assert main(["serve-bench", catalog_path,
                     "--query", "with salinity",
                     "--query", "within 100 km of 45.0, -124.0",
                     "--clients", "2", "--requests", "4",
                     "--shard-workers", "2",
                     "--shard-threshold", "1"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--clients", "0"],
            ["--requests", "0"],
            ["--limit", "0"],
            ["--concurrency", "0"],
            ["--queue-depth", "-1"],
            ["--shard-workers", "0"],
            ["--shard-threshold", "0"],
            ["--think-ms", "-1"],
            ["--zipf", "-0.5"],
        ],
    )
    def test_bad_flags_rejected(self, catalog_path, capsys, flags):
        assert main(["serve-bench", catalog_path, *flags]) == 2
        assert capsys.readouterr().err.strip()

    def test_bad_query_rejected(self, catalog_path, capsys):
        assert main(["serve-bench", catalog_path,
                     "--query", "near 45.0, -124.0 within inf km"]) == 2
        assert "radius" in capsys.readouterr().err

    def test_missing_catalog_rejected(self, tmp_path, capsys):
        assert main(["serve-bench", str(tmp_path / "nope.db")]) == 2
        assert capsys.readouterr().err.strip()


class TestServe:
    def test_boot_and_drain_with_observability_outputs(
        self, catalog_path, tmp_path, capsys
    ):
        """`repro serve --max-seconds 0`: boot, drain, dump, validate.

        The HTTP routes themselves are exercised in test_serve_http /
        test_serve_trace; here the CLI wiring is pinned — banner, SLO
        report on shutdown, flight-recorder dump, access-log file that
        the standard validator accepts.
        """
        access = str(tmp_path / "access.jsonl")
        flight = str(tmp_path / "flight.json")
        assert main(["serve", catalog_path, "--port", "0",
                     "--max-seconds", "0",
                     "--access-log", access,
                     "--flight-out", flight]) == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "/metrics" in out and "/debug/slow" in out
        assert "shutdown: drained=True" in out
        assert "SLO report" in out
        assert f"-> {flight}" in out
        assert f"-> {access}" in out

        import json

        from repro.obs import validate_trace_lines

        payload = json.load(open(flight))
        assert payload["captured"] == 0  # no requests were served
        with open(access) as fh:
            lines = fh.read().splitlines()
        assert validate_trace_lines(lines) == []
        assert json.loads(lines[0])["stream"] == "access-log"

    @pytest.mark.parametrize(
        "flags",
        [
            ["--port", "-1"],
            ["--drain-seconds", "-1"],
            ["--slo-p95-ms", "0"],
            ["--slo-error-rate", "1.5"],
            ["--slo-error-rate", "-0.1"],
            ["--slo-availability", "0"],
            ["--slo-availability", "1.5"],
            ["--concurrency", "0"],
        ],
    )
    def test_bad_flags_rejected(self, catalog_path, capsys, flags):
        assert main(["serve", catalog_path, *flags]) == 2
        assert capsys.readouterr().err.strip()

    def test_missing_catalog_rejected(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.db")]) == 2
        assert capsys.readouterr().err.strip()

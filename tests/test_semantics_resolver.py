"""Unit tests for repro.semantics.resolver (the combined pipeline)."""

import math

import pytest

from repro.catalog import VariableEntry
from repro.semantics import (
    MisspellingResolver,
    ResolutionMethod,
    SynonymTable,
    TermResolver,
    vocabulary_synonym_table,
)


@pytest.fixture()
def resolver():
    return TermResolver()


class TestMethodOrder:
    def test_exact(self, resolver):
        res = resolver.resolve_name("salinity")
        assert res.canonical == "salinity"
        assert res.method is ResolutionMethod.EXACT

    def test_synonym(self, resolver):
        res = resolver.resolve_name("salt")
        assert res.canonical == "salinity"
        assert res.method is ResolutionMethod.SYNONYM

    def test_abbreviation_table_via_synonyms(self, resolver):
        # Vocabulary abbreviations live in the synonym table too; either
        # method is acceptable as long as the target is right.
        res = resolver.resolve_name("MWHLA")
        assert res.canonical == "wave_height"
        assert res.method in (
            ResolutionMethod.SYNONYM, ResolutionMethod.ABBREVIATION,
        )

    def test_context_beats_abstract_vocabulary_entry(self, resolver):
        res = resolver.resolve_name("temperature", platform="met")
        assert res.canonical == "air_temperature"
        assert res.method is ResolutionMethod.CONTEXT

    def test_context_water_platform(self, resolver):
        res = resolver.resolve_name("temperature", platform="cast")
        assert res.canonical == "water_temperature"

    def test_fuzzy_last(self, resolver):
        res = resolver.resolve_name("air_temperatrue")
        assert res.canonical == "air_temperature"
        assert res.method is ResolutionMethod.FUZZY

    def test_unresolvable(self, resolver):
        res = resolver.resolve_name("completely_unknown_thing_xyz")
        assert res.canonical is None
        assert res.method is ResolutionMethod.UNRESOLVED

    def test_auxiliary_flagged(self, resolver):
        res = resolver.resolve_name("qa_level")
        assert res.auxiliary
        res = resolver.resolve_name("salinity")
        assert not res.auxiliary


class TestAmbiguousNames:
    def test_bare_temp_without_evidence_stays_flagged(self, resolver):
        # 'temp' could be 'temporary': with no unit/value evidence the
        # Table's answer is to expose it to the curator, and it must
        # never fall through to fuzzy matching.
        res = resolver.resolve_name("temp", platform="station")
        assert res.canonical is None
        assert res.ambiguous
        assert res.method is ResolutionMethod.UNRESOLVED

    def test_entry_evidence_used(self, resolver):
        ok = VariableEntry.from_written(
            "temp", "degC", 10, 5.0, 15.0, 10.0, 1.0
        )
        res = resolver.resolve_entry(ok, "met", "d1")
        assert res.canonical == "air_temperature"
        assert res.method is ResolutionMethod.AMBIGUITY_EVIDENCE

    def test_phantom_entry_stays_flagged(self, resolver):
        phantom = VariableEntry.from_written(
            "temp", "1", 10, 0.0, 16.0, 8.0, 5.0
        )
        res = resolver.resolve_entry(phantom, "station", "d1")
        assert res.canonical is None
        assert res.ambiguous


class TestAblation:
    def test_empty_synonym_table_breaks_synonyms_only(self):
        resolver = TermResolver(
            synonyms=SynonymTable(),
        )
        assert resolver.resolve_name("salt").canonical is None
        # Misspellings still resolve via fuzzy.
        assert resolver.resolve_name("salinty").canonical == "salinity"

    def test_no_fuzzy(self):
        resolver = TermResolver(use_fuzzy=False)
        assert resolver.resolve_name("salinty").canonical is None

    def test_partial_table_without_abbreviations(self):
        resolver = TermResolver(
            synonyms=vocabulary_synonym_table(include_abbreviations=False),
        )
        # The dedicated abbreviation table still expands it.
        res = resolver.resolve_name("MWHLA")
        assert res.canonical == "wave_height"
        assert res.method is ResolutionMethod.ABBREVIATION

    def test_custom_fuzzy_resolver(self):
        resolver = TermResolver(
            fuzzy=MisspellingResolver(["salinity"], max_distance=1)
        )
        assert resolver.resolve_name("salinit").canonical == "salinity"


class TestResolutionRecord:
    def test_resolved_property(self, resolver):
        assert resolver.resolve_name("salinity").resolved
        assert not resolver.resolve_name("zzz_unknown").resolved

    def test_note_for_fuzzy(self, resolver):
        res = resolver.resolve_name("air_temperatrue")
        assert "d=" in res.note or res.note

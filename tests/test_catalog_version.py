"""The catalog stores' monotonic version counter (staleness detection)."""

import pytest

from repro.catalog import (
    DatasetFeature,
    MemoryCatalog,
    SqliteCatalog,
    VariableEntry,
)
from repro.geo import BoundingBox, TimeInterval


def feature(dataset_id, name="water_temperature", lat=45.0):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=dataset_id,
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, -124.0, lat + 0.1, -123.9),
        interval=TimeInterval(0.0, 1000.0),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "degC", 10, 0.0, 10.0, 5.0, 1.0)
        ],
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield MemoryCatalog()
    else:
        with SqliteCatalog() as catalog:
            yield catalog


class TestVersionCounter:
    def test_fresh_store_starts_at_zero(self, store):
        assert store.version == 0

    def test_upsert_bumps(self, store):
        store.upsert(feature("a"))
        assert store.version == 1
        store.upsert(feature("b"))
        assert store.version == 2

    def test_same_size_replacement_bumps(self, store):
        """The staleness signal a length comparison cannot see."""
        store.upsert(feature("a", lat=45.0))
        before = store.version
        store.upsert(feature("a", lat=48.0))
        assert len(store) == 1
        assert store.version > before

    def test_remove_bumps(self, store):
        store.upsert(feature("a"))
        before = store.version
        store.remove("a")
        assert store.version > before

    def test_failed_remove_does_not_bump(self, store):
        store.upsert(feature("a"))
        before = store.version
        with pytest.raises(KeyError):
            store.remove("missing")
        assert store.version == before

    def test_clear_bumps(self, store):
        store.upsert(feature("a"))
        before = store.version
        store.clear()
        assert store.version > before

    def test_rename_variables_bumps_only_on_change(self, store):
        store.upsert(feature("a", name="water_temp"))
        before = store.version
        assert store.rename_variables({"water_temp": "water_temperature"})
        bumped = store.version
        assert bumped > before
        assert store.rename_variables({"absent": "whatever"}) == 0
        assert store.version == bumped

    def test_set_excluded_bumps_only_on_change(self, store):
        store.upsert(feature("a", name="qa_level"))
        before = store.version
        assert store.set_excluded(["qa_level"]) == 1
        bumped = store.version
        assert bumped > before
        # Already excluded: nothing changes, no bump.
        assert store.set_excluded(["qa_level"]) == 0
        assert store.version == bumped

    def test_rename_units_and_ambiguous_bump(self, store):
        store.upsert(feature("a"))
        before = store.version
        assert store.rename_units({"degC": "celsius"}) == 1
        assert store.version > before
        before = store.version
        assert store.set_ambiguous(["water_temperature"]) == 1
        assert store.version > before


class TestSqlitePersistence:
    def test_version_survives_reconnect(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as catalog:
            catalog.upsert(feature("a"))
            catalog.upsert(feature("b"))
            persisted = catalog.version
        with SqliteCatalog(path) as reopened:
            assert reopened.version == persisted

    def test_second_connection_sees_bumps(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as writer, SqliteCatalog(path) as reader:
            before = reader.version
            writer.upsert(feature("a"))
            assert reader.version > before

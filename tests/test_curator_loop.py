"""Closed-loop tests: the poster's implied claim that run-improve-rerun
converges (benchmark C1's correctness backstop)."""

import pytest

from repro.archive import truth_index
from repro.curator import (
    CuratorSession,
    SimulatedCurator,
    run_curator_loop,
)


def make_oracle(archive):
    oracle = {}
    for (__, written), vt in truth_index(archive).items():
        oracle[written] = vt.canonical
    return oracle


class TestLoopConvergence:
    def test_converges_with_oracle(self, messy_archive, messy_fs):
        fs, __ = messy_fs
        session = CuratorSession(fs)
        curator = SimulatedCurator(
            actions_per_iteration=20, oracle=make_oracle(messy_archive)
        )
        result = run_curator_loop(session, curator, max_iterations=15)
        assert result.converged
        assert result.failure_counts[-1] == 0

    def test_failures_monotone_nonincreasing(self, messy_archive, messy_fs):
        fs, __ = messy_fs
        session = CuratorSession(fs)
        curator = SimulatedCurator(
            actions_per_iteration=10, oracle=make_oracle(messy_archive)
        )
        result = run_curator_loop(session, curator, max_iterations=15)
        for before, after in zip(
            result.failure_counts, result.failure_counts[1:]
        ):
            assert after <= before

    def test_capped_actions_slow_convergence(self, messy_archive, messy_fs):
        fs, truth = messy_fs
        oracle = make_oracle(messy_archive)
        fast = run_curator_loop(
            CuratorSession(fs),
            SimulatedCurator(actions_per_iteration=50, oracle=oracle),
            max_iterations=15,
        )
        # Fresh filesystem state for the slow run.
        slow = run_curator_loop(
            CuratorSession(fs),
            SimulatedCurator(actions_per_iteration=3, oracle=oracle),
            max_iterations=30,
        )
        assert fast.iterations_run <= slow.iterations_run

    def test_without_oracle_still_improves(self, messy_fs):
        fs, __ = messy_fs
        session = CuratorSession(fs)
        curator = SimulatedCurator(actions_per_iteration=20, oracle=None)
        result = run_curator_loop(session, curator, max_iterations=10)
        assert result.failure_counts[-1] < result.failure_counts[0]

    def test_loop_stops_when_actions_dry_up(self, messy_fs):
        fs, __ = messy_fs
        session = CuratorSession(fs)
        # A curator that can do nothing.
        curator = SimulatedCurator(
            actions_per_iteration=0, oracle=None, hide_phantoms=False
        )
        result = run_curator_loop(session, curator, max_iterations=10)
        assert result.iterations_run == 1
        assert not result.converged


class TestLoopQuality:
    def test_final_catalog_matches_truth(self, messy_archive, messy_fs):
        fs, truth = messy_fs
        session = CuratorSession(fs)
        curator = SimulatedCurator(
            actions_per_iteration=30, oracle=make_oracle(messy_archive)
        )
        run_curator_loop(session, curator, max_iterations=15)
        ti = truth_index(messy_archive)
        correct = total = 0
        for feature in session.state.working:
            for entry in feature.variables:
                vt = ti.get((feature.dataset_id, entry.written_name))
                if vt is None or vt.canonical is None:
                    continue
                total += 1
                if entry.name == vt.canonical:
                    correct += 1
        assert total > 0
        assert correct / total > 0.95

"""Unit tests for repro.core.facets."""

import pytest

from repro.catalog import MemoryCatalog
from repro.core import (
    compute_facets,
    hierarchy_counts,
    render_facet_sidebar,
    render_menu_with_counts,
)
from repro.hierarchy import ConceptHierarchy, vocabulary_hierarchy

from tests.test_core_search import feature  # reuse the feature factory


@pytest.fixture()
def catalog():
    cat = MemoryCatalog()
    cat.upsert(feature("a", 46.0, -124.0, 0, 86400 * 400,
                       [("water_temperature", 5, 15), ("salinity", 0, 30)]))
    cat.upsert(feature("b", 46.1, -124.0, 0, 1000,
                       [("salinity", 0, 30),
                        ("fluorescence_375nm", 0, 5)]))
    cat.upsert(feature("c", 46.2, -124.0, 0, 1000,
                       [("fluorescence_400nm", 0, 5)]))
    return cat


class TestComputeFacets:
    def test_variable_counts(self, catalog):
        facets = compute_facets(catalog)
        assert facets.variables["salinity"] == 2
        assert facets.variables["water_temperature"] == 1

    def test_platform_counts(self, catalog):
        facets = compute_facets(catalog)
        assert facets.platforms == {"station": 3}

    def test_year_span_counts_every_year(self, catalog):
        facets = compute_facets(catalog)
        # dataset 'a' spans 400 days from epoch: 1970 and 1971.
        assert facets.years[1970] == 3
        assert facets.years[1971] == 1

    def test_excluded_variables_not_counted(self, catalog):
        f = catalog.get("a")
        f.variables[0].excluded = True
        catalog.upsert(f)
        facets = compute_facets(catalog)
        assert "water_temperature" not in facets.variables

    def test_top_variables_ordering(self, catalog):
        facets = compute_facets(catalog)
        top = facets.top_variables(2)
        assert top[0] == ("salinity", 2)


class TestHierarchyCounts:
    def test_rollup_counts_datasets_once(self, catalog):
        counts = hierarchy_counts(catalog, vocabulary_hierarchy())
        # 'fluorescence' covers datasets b and c (one each), not the
        # variable count.
        assert counts["fluorescence"] == 2

    def test_parent_includes_child_datasets(self, catalog):
        counts = hierarchy_counts(catalog, vocabulary_hierarchy())
        assert counts["temperature"] == 1  # dataset 'a'

    def test_unknown_names_ignored(self, catalog):
        f = catalog.get("c")
        f.variables[0].name = "mystery_sensor"
        catalog.upsert(f)
        counts = hierarchy_counts(catalog, vocabulary_hierarchy())
        assert "mystery_sensor" not in counts


class TestRendering:
    def test_menu_with_counts(self, catalog):
        menu = render_menu_with_counts(catalog, vocabulary_hierarchy())
        assert "- salinity (2)" in menu
        assert "fluorescence * (2)" in menu
        # Variables absent from the catalog are collapsed away.
        assert "wind_speed" not in menu

    def test_menu_empty_catalog(self):
        menu = render_menu_with_counts(
            MemoryCatalog(), vocabulary_hierarchy()
        )
        assert menu == ""

    def test_sidebar_sections(self, catalog):
        sidebar = render_facet_sidebar(catalog)
        assert "platforms:" in sidebar
        assert "years:" in sidebar
        assert "top variables:" in sidebar
        assert "station" in sidebar

    def test_menu_with_custom_hierarchy(self, catalog):
        hierarchy = ConceptHierarchy()
        hierarchy.add("optics", measurable=False)
        hierarchy.add("fluorescence_375nm", parent="optics")
        menu = render_menu_with_counts(catalog, hierarchy)
        assert "- optics * (1)" in menu

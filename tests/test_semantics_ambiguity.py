"""Unit tests for repro.semantics.ambiguity."""

import pytest

from repro.catalog import VariableEntry
from repro.semantics import (
    AmbiguityAction,
    AmbiguityDecision,
    analyze_ambiguity,
    is_ambiguous_form,
)


def entry(name, unit, lo, hi, count=10):
    return VariableEntry.from_written(
        name, unit, count, lo, hi, (lo + hi) / 2, 1.0
    )


class TestDetection:
    @pytest.mark.parametrize("name", ["temp", "pres", "do", "dir", "speed"])
    def test_known_forms(self, name):
        assert is_ambiguous_form(name)

    @pytest.mark.parametrize("name", ["temperature", "salinity", "qa_level"])
    def test_non_forms(self, name):
        assert not is_ambiguous_form(name)

    def test_non_form_returns_none(self):
        assert analyze_ambiguity(
            "d", "station", entry("salinity", "PSU", 0, 30)
        ) is None


class TestEvidence:
    def test_unit_plus_context_clarifies_temp(self):
        # 'temp' with degC on a met platform: air_temperature.
        finding = analyze_ambiguity(
            "d", "met", entry("temp", "degC", 2.0, 25.0)
        )
        assert finding is not None
        assert finding.suggested == "air_temperature"

    def test_unit_plus_water_context(self):
        finding = analyze_ambiguity(
            "d", "station", entry("temp", "C", 8.0, 15.0)
        )
        assert finding.suggested == "water_temperature"

    def test_unit_synonym_spelling_counts(self):
        # 'Centigrade' must be recognized as degC evidence.
        finding = analyze_ambiguity(
            "d", "station", entry("temp", "Centigrade", 8.0, 15.0)
        )
        assert finding.suggested == "water_temperature"

    def test_phantom_temp_stays_unresolved(self):
        # Dimensionless saw-tooth values: could be 'temporary'; range fits
        # several temperature candidates -> no auto-clarification.
        finding = analyze_ambiguity(
            "d", "station", entry("temp", "1", 0.0, 16.0)
        )
        assert finding is not None
        assert finding.suggested is None
        assert None in finding.candidates

    def test_context_resolves_dir(self):
        finding = analyze_ambiguity(
            "d", "met", entry("dir", "degrees", 0.0, 360.0)
        )
        assert finding.suggested == "wind_direction"
        finding = analyze_ambiguity(
            "d", "glider", entry("dir", "degrees", 0.0, 360.0)
        )
        assert finding.suggested == "current_direction"

    def test_pres_by_unit(self):
        finding = analyze_ambiguity(
            "d", "cast", entry("pres", "dbar", 0.0, 150.0)
        )
        assert finding.suggested == "water_pressure"
        finding = analyze_ambiguity(
            "d", "met", entry("pres", "mbar", 990.0, 1030.0)
        )
        assert finding.suggested == "air_pressure"

    def test_do_with_unit(self):
        finding = analyze_ambiguity(
            "d", "station", entry("do", "mg/L", 4.0, 10.0)
        )
        assert finding.suggested == "dissolved_oxygen"


class TestDecision:
    def test_clarify_needs_canonical(self):
        with pytest.raises(ValueError):
            AmbiguityDecision(name="temp", action=AmbiguityAction.CLARIFY)

    def test_scope_matching(self):
        decision = AmbiguityDecision(
            name="temp", action=AmbiguityAction.HIDE, scope="stations/"
        )
        assert decision.applies_to("stations/x/x.csv")
        assert not decision.applies_to("cruises/c/c.csv")

    def test_global_scope(self):
        decision = AmbiguityDecision(name="temp", action=AmbiguityAction.LEAVE)
        assert decision.applies_to("anything")

"""Unit tests for the robustness primitives: the error taxonomy, the
bounded-retry layer, deterministic fault schedules and the two
injectable fault wrappers (flaky archive, flaky catalog store)."""

import sqlite3

import pytest

from repro.archive import VirtualArchive
from repro.archive.flaky import FlakyArchive
from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.catalog.flaky import FlakyCatalogStore
from repro.core.errors import (
    ErrorCode,
    ErrorRecord,
    StoreBusyError,
    TransientError,
    TransientReadError,
    WorkerFailure,
    classify_exception,
    is_transient,
)
from repro.core.faults import FaultSchedule
from repro.core.retry import RetryPolicy, retry_call
from repro.geo import BoundingBox, TimeInterval
from repro.catalog import DatasetFeature, VariableEntry


def make_feature(dataset_id="d1"):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(46.0, -124.0, 46.2, -123.8),
        interval=TimeInterval(100.0, 200.0),
        row_count=50,
        source_directory="stations/x",
        attributes={"station": "x"},
        variables=[
            VariableEntry.from_written(
                "salinity", "PSU", 50, 0.0, 30.0, 15.0, 2.0
            )
        ],
    )


class TestTaxonomy:
    def test_is_transient_family(self):
        assert is_transient(TransientError("x"))
        assert is_transient(TransientReadError("x"))
        assert is_transient(StoreBusyError("x"))

    def test_is_transient_sqlite_busy_and_locked(self):
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(sqlite3.OperationalError("database is busy"))

    def test_real_sql_errors_are_not_transient(self):
        assert not is_transient(sqlite3.OperationalError("no such table: t"))
        assert not is_transient(ValueError("nope"))
        assert not is_transient(KeyError("nope"))

    def test_classify_read_fault(self):
        record = classify_exception(
            TransientReadError("gone"), path="a/b.csv", attempts=3
        )
        assert record.code is ErrorCode.TRANSIENT_READ
        assert record.transient
        assert record.path == "a/b.csv"
        assert record.attempts == 3

    def test_classify_store_fault(self):
        for exc in (
            StoreBusyError("busy"),
            sqlite3.OperationalError("database is locked"),
        ):
            record = classify_exception(exc)
            assert record.code is ErrorCode.STORE_BUSY
            assert record.transient

    def test_classify_unknown_exception(self):
        record = classify_exception(RuntimeError("boom"), path="p")
        assert record.code is ErrorCode.WORKER_ERROR
        assert not record.transient
        assert "RuntimeError" in record.message

    def test_error_record_rendering(self):
        record = ErrorRecord(
            code=ErrorCode.TRANSIENT_READ,
            message="gone",
            path="a.csv",
            transient=True,
            attempts=3,
        )
        text = str(record)
        assert "transient-read" in text
        assert "a.csv" in text
        assert "3 attempts" in text

    def test_worker_failure_wraps_exception(self):
        failure = WorkerFailure.from_exception("a.csv", ValueError("bad"))
        assert failure.path == "a.csv"
        assert failure.error_type == "ValueError"
        assert "bad" in str(failure)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            attempts=5,
            base_delay=0.01,
            multiplier=4.0,
            max_delay=0.05,
            jitter=0.0,
        )
        delays = [policy.delay(a) for a in (1, 2, 3, 4)]
        assert delays == [0.01, 0.04, 0.05, 0.05]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        first = policy.delay(1, key="k")
        assert first == policy.delay(1, key="k")
        assert 0.01 <= first <= 0.015
        # Different keys decorrelate.
        assert policy.delay(1, key="k") != policy.delay(1, key="other")

    def test_zero_base_delay_means_no_pause(self):
        policy = RetryPolicy(base_delay=0.0, jitter=0.5)
        assert policy.delay(1) == 0.0


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientReadError("flake")
            return "ok"

        pauses = []
        result = retry_call(
            flaky,
            RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
            sleep=pauses.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(pauses) == 2

    def test_non_transient_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            retry_call(broken, RetryPolicy(attempts=5, base_delay=0.0))
        assert calls["n"] == 1

    def test_budget_exhaustion_raises_last_fault(self):
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise TransientReadError(f"flake {calls['n']}")

        with pytest.raises(TransientReadError, match="flake 3"):
            retry_call(always, RetryPolicy(attempts=3, base_delay=0.0))
        assert calls["n"] == 3

    def test_on_retry_observes_absorbed_faults(self):
        calls = {"n": 0}
        seen = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise StoreBusyError("busy")
            return 42

        retry_call(
            flaky,
            RetryPolicy(attempts=3, base_delay=0.0),
            on_retry=lambda attempt, exc, pause: seen.append(attempt),
        )
        assert seen == [1]


class TestFaultSchedule:
    def test_deterministic_across_replays(self):
        def play(schedule):
            return [
                schedule.should_fail("read", f"k{i % 3}") for i in range(40)
            ]

        first = FaultSchedule(seed=7, rate=0.5)
        second = FaultSchedule(seed=7, rate=0.5)
        assert play(first) == play(second)
        assert first.injected == second.injected

    def test_max_consecutive_caps_per_key(self):
        schedule = FaultSchedule(seed=1, rate=1.0, max_consecutive=2)
        outcomes = [schedule.should_fail("read", "k") for __ in range(3)]
        assert outcomes == [True, True, False]

    def test_limit_bounds_total_faults(self):
        schedule = FaultSchedule(
            seed=1, rate=1.0, max_consecutive=1, limit=2
        )
        fired = sum(
            schedule.should_fail("read", f"k{i}") for i in range(10)
        )
        assert fired == 2

    def test_ops_filter(self):
        schedule = FaultSchedule(
            seed=1, rate=1.0, max_consecutive=99, ops=frozenset({"list"})
        )
        assert not schedule.should_fail("read", "k")
        assert schedule.should_fail("list", "")

    def test_zero_rate_never_fires(self):
        schedule = FaultSchedule(seed=1, rate=0.0)
        assert not any(
            schedule.should_fail("read", "k") for __ in range(20)
        )
        assert schedule.total_injected == 0


class TestFlakyArchive:
    def _archive(self):
        fs = VirtualArchive()
        fs.put("a.csv", "content-a")
        fs.put("dir/b.csv", "content-b")
        return fs

    def test_reads_fail_then_recover(self):
        fs = self._archive()
        flaky = FlakyArchive(
            fs, FaultSchedule(seed=3, rate=1.0, max_consecutive=2)
        )
        with pytest.raises(TransientReadError):
            flaky.get("a.csv")
        with pytest.raises(TransientReadError):
            flaky.get("a.csv")
        assert flaky.get("a.csv").content == "content-a"

    def test_listing_faults(self):
        fs = self._archive()
        flaky = FlakyArchive(
            fs,
            FaultSchedule(
                seed=3, rate=1.0, max_consecutive=1, ops=frozenset({"list"})
            ),
        )
        with pytest.raises(TransientReadError):
            flaky.list_directory("", recursive=True)
        assert len(flaky.list_directory("", recursive=True)) == 2

    def test_passthroughs_never_fault(self):
        fs = self._archive()
        flaky = FlakyArchive(fs, FaultSchedule(seed=3, rate=1.0))
        assert len(flaky) == 2
        assert flaky.exists("a.csv")
        assert sorted(f.path for f in flaky) == ["a.csv", "dir/b.csv"]
        flaky.put("c.csv", "new")
        flaky.remove("c.csv")
        assert "dir" in flaky.directories()


class TestFlakyCatalogStore:
    def test_writes_fault_with_real_sqlite_error(self):
        store = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=2, rate=1.0, max_consecutive=1),
        )
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.upsert_many([make_feature()])
        # Fault fires before the delegate: nothing was written.
        assert len(store) == 0
        assert store.upsert_many([make_feature()]) == 1
        assert len(store) == 1

    def test_reads_clean_by_default(self):
        store = FlakyCatalogStore(
            MemoryCatalog(), FaultSchedule(seed=2, rate=1.0)
        )
        inner_feature = make_feature()
        store.inner.upsert(inner_feature)
        assert store.get("d1").dataset_id == "d1"
        assert store.dataset_ids() == ["d1"]
        assert [f.dataset_id for f in store.features()] == ["d1"]

    def test_version_delegates(self):
        inner = MemoryCatalog()
        store = FlakyCatalogStore(inner, FaultSchedule(seed=2, rate=0.0))
        before = store.version
        store.upsert(make_feature())
        assert store.version == inner.version > before


class TestSqliteResilience:
    def test_busy_timeout_applied_on_file_backed(self, tmp_path):
        with SqliteCatalog(
            str(tmp_path / "cat.db"), busy_timeout_ms=1234
        ) as store:
            (timeout,) = store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout == 1234

    def test_memory_store_ignores_busy_timeout(self):
        # A private in-memory database cannot be contended by another
        # connection; the pragma is left at the sqlite3 connect default.
        with SqliteCatalog(busy_timeout_ms=1234) as store:
            (timeout,) = store._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout != 1234

    def test_write_retries_transient_busy(self, monkeypatch):
        store = SqliteCatalog()
        store._retry = RetryPolicy(attempts=3, base_delay=0.0)
        original = store._write_feature
        calls = {"n": 0}

        def busy_once(feature):
            calls["n"] += 1
            if calls["n"] == 1:
                raise sqlite3.OperationalError("database is locked")
            original(feature)

        monkeypatch.setattr(store, "_write_feature", busy_once)
        store.upsert(make_feature())
        assert calls["n"] == 2
        assert store.get("d1").dataset_id == "d1"
        # The aborted first transaction must not have bumped the version.
        assert store.version == 1
        store.close()

    def test_real_sql_errors_never_retry(self, monkeypatch):
        store = SqliteCatalog()
        store._retry = RetryPolicy(attempts=3, base_delay=0.0)
        calls = {"n": 0}

        def broken(feature):
            calls["n"] += 1
            raise sqlite3.OperationalError("no such table: datasets")

        monkeypatch.setattr(store, "_write_feature", broken)
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            store.upsert(make_feature())
        assert calls["n"] == 1
        store.close()

    def test_upsert_many_accepts_generator_under_retry(self, monkeypatch):
        store = SqliteCatalog()
        store._retry = RetryPolicy(attempts=3, base_delay=0.0)
        original = store._write_feature
        calls = {"n": 0}

        def busy_once(feature):
            calls["n"] += 1
            if calls["n"] == 1:
                raise sqlite3.OperationalError("database is locked")
            original(feature)

        monkeypatch.setattr(store, "_write_feature", busy_once)
        count = store.upsert_many(
            make_feature(f"d{i}") for i in range(3)
        )
        assert count == 3
        assert len(store) == 3
        store.close()

"""Unit tests for repro.core.qparser (the textual query language)."""

from datetime import datetime, timezone

import pytest

from repro.core.qparser import QueryParseError, parse_query
from repro.geo import GeoPoint


def utc(*args):
    return datetime(*args, tzinfo=timezone.utc).timestamp()


class TestPosterExample:
    def test_paper_information_need(self):
        query = parse_query(
            "near 45.5, -124.4 in mid-2010 with temperature between 5 and 10"
        )
        assert query.location == GeoPoint(45.5, -124.4)
        assert query.interval.start == utc(2010, 5, 1)
        assert query.interval.end == pytest.approx(
            utc(2010, 8, 31, 23, 59, 59)
        )
        term = query.variables[0]
        assert term.name == "temperature"
        assert (term.low, term.high) == (5.0, 10.0)

    def test_lat_lon_prefixes_allowed(self):
        query = parse_query("near lat=45.5, lon=-124.4")
        assert query.location == GeoPoint(45.5, -124.4)


class TestLocation:
    def test_near(self):
        assert parse_query("near 46.1, -123.9").location == GeoPoint(
            46.1, -123.9
        )

    def test_within_radius(self):
        query = parse_query("near 46, -124 within 10 km")
        assert query.radius_km == 10.0

    def test_region(self):
        query = parse_query("in region 45, -125 to 47, -124")
        assert query.region.as_tuple() == (45.0, -125.0, 47.0, -124.0)

    def test_region_corner_order_normalized(self):
        query = parse_query("in region 47, -124 to 45, -125")
        assert query.region.as_tuple() == (45.0, -125.0, 47.0, -124.0)

    def test_near_and_region_conflict(self):
        with pytest.raises(QueryParseError):
            parse_query("near 45, -124 in region 45, -125 to 47, -124")

    def test_out_of_range_latitude(self):
        with pytest.raises(QueryParseError):
            parse_query("near 95, -124")


class TestTime:
    def test_from_to_days(self):
        query = parse_query("from 2010-05-01 to 2010-08-31")
        assert query.interval.start == utc(2010, 5, 1)

    def test_from_to_months(self):
        query = parse_query("from 2010-05 to 2010-06")
        assert query.interval.end == pytest.approx(
            utc(2010, 6, 30, 23, 59, 59)
        )

    def test_from_to_years(self):
        query = parse_query("from 2009 to 2010")
        assert query.interval.start == utc(2009, 1, 1)

    def test_during_year(self):
        query = parse_query("during 2010")
        assert query.interval.start == utc(2010, 1, 1)
        assert query.interval.end == pytest.approx(
            utc(2010, 12, 31, 23, 59, 59)
        )

    def test_during_month(self):
        query = parse_query("during 2010-02")
        assert query.interval.end == pytest.approx(
            utc(2010, 2, 28, 23, 59, 59)
        )

    @pytest.mark.parametrize(
        "season,start_month,end_month",
        [("early", 1, 4), ("mid", 5, 8), ("late", 9, 12)],
    )
    def test_seasons(self, season, start_month, end_month):
        query = parse_query(f"in {season}-2011")
        assert query.interval.start == utc(2011, start_month, 1)

    def test_reversed_window_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("from 2011 to 2010")

    def test_bad_date_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("from 2010-13 to 2010-14")


class TestVariables:
    def test_bare_variable(self):
        query = parse_query("with salinity")
        assert query.variables[0].name == "salinity"
        assert not query.variables[0].has_range

    def test_multiple_variables(self):
        query = parse_query("with salinity, turbidity below 20")
        assert [t.name for t in query.variables] == [
            "salinity", "turbidity",
        ]
        assert query.variables[1].high == 20.0

    def test_above(self):
        term = parse_query("with depth above 50").variables[0]
        assert term.low == 50.0 and term.high is None

    def test_below(self):
        term = parse_query("with ph below 8").variables[0]
        assert term.high == 8.0 and term.low is None

    def test_equals(self):
        term = parse_query("with qa_level = 2").variables[0]
        assert term.low == term.high == 2.0

    def test_name_normalized(self):
        term = parse_query("with Water Temperature between 5 and 10")
        assert term.variables[0].name == "water_temperature"

    def test_empty_clause_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("with salinity, , turbidity")


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_gibberish(self):
        with pytest.raises(QueryParseError):
            parse_query("fetch me the comfy chair")

    def test_clause_order_free(self):
        a = parse_query("with salinity near 46, -124 during 2010")
        b = parse_query("near 46, -124 during 2010 with salinity")
        assert a.location == b.location
        assert a.interval == b.interval
        assert a.variables == b.variables


class TestNonFiniteRejection:
    """inf/nan tokens are parse errors, not silently dropped clauses."""

    @pytest.mark.parametrize(
        "text",
        [
            "near inf, -124.0",
            "near 45.0, -inf",
            "near nan, -124.0 within 50 km",
            "near NaN, nan",
        ],
    )
    def test_nonfinite_coordinates(self, text):
        with pytest.raises(QueryParseError, match="finite"):
            parse_query(text)

    def test_nonfinite_radius(self):
        with pytest.raises(QueryParseError, match="radius"):
            parse_query("near 45.0, -124.0 within inf km")

    def test_nonfinite_region_corner(self):
        with pytest.raises(QueryParseError, match="finite"):
            parse_query("in region 45.0, -125.0 to inf, -124.0")

    @pytest.mark.parametrize(
        "text",
        [
            "with salinity above inf",
            "with salinity below nan",
            "with salinity between 0 and inf",
            "with salinity = nan",
        ],
    )
    def test_nonfinite_variable_bounds(self, text):
        with pytest.raises(QueryParseError, match="finite"):
            parse_query(text)

    def test_finite_queries_still_parse(self):
        query = parse_query("near 45.0, -124.0 within 50 km with salinity")
        assert query.location == GeoPoint(45.0, -124.0)
        assert query.radius_km == 50.0

"""Unit tests for repro.refine.bridge (catalog <-> Refine round-trip)."""

import pytest

from repro.archive import VOCABULARY
from repro.refine import (
    FIELD_COLUMN,
    DiscoverySession,
    apply_rules_to_catalog,
    catalog_to_table,
    make_canonical_chooser,
)


class TestCatalogExport:
    def test_one_row_per_variable(self, raw_catalog):
        table = catalog_to_table(raw_catalog)
        expected = sum(
            len(f.variables) for f in raw_catalog
        )
        assert len(table) == expected

    def test_columns(self, raw_catalog):
        table = catalog_to_table(raw_catalog)
        assert FIELD_COLUMN in table.columns
        assert "dataset_id" in table.columns
        assert "platform" in table.columns

    def test_platform_filled(self, raw_catalog):
        table = catalog_to_table(raw_catalog)
        platforms = set(table.column_values("platform"))
        assert "" not in platforms


class TestDiscoverySession:
    def test_fingerprint_session_finds_variants(self, raw_catalog):
        session = DiscoverySession(
            method="fingerprint",
            seed_values={name: 1 for name in VOCABULARY},
            chooser=make_canonical_chooser(
                set(VOCABULARY), fallback_to_most_common=False
            ),
        )
        rules = session.discover_from_catalog(raw_catalog)
        mapping = rules.rename_mapping()
        for target in mapping.values():
            assert target in VOCABULARY

    def test_nn_session_finds_typos(self, raw_catalog):
        session = DiscoverySession(
            method="nn-levenshtein",
            radius=2.0,
            seed_values={name: 1 for name in VOCABULARY},
            chooser=make_canonical_chooser(
                set(VOCABULARY), fallback_to_most_common=False
            ),
        )
        rules = session.discover_from_catalog(raw_catalog)
        mapping = rules.rename_mapping()
        assert mapping, "nearest-neighbour should discover something"
        for target in mapping.values():
            assert target in VOCABULARY

    def test_apply_rules_renames_catalog(self, raw_catalog):
        session = DiscoverySession(
            method="nn-levenshtein",
            seed_values={name: 1 for name in VOCABULARY},
            chooser=make_canonical_chooser(
                set(VOCABULARY), fallback_to_most_common=False
            ),
        )
        rules = session.discover_from_catalog(raw_catalog)
        mapping = rules.rename_mapping()
        before = raw_catalog.variable_name_counts()
        renamed = apply_rules_to_catalog(rules, raw_catalog)
        after = raw_catalog.variable_name_counts()
        assert renamed == sum(before[old] for old in mapping if old in before)
        for old in mapping:
            assert old not in after

    def test_empty_rules_apply_zero(self, raw_catalog):
        from repro.refine import RuleSet

        assert apply_rules_to_catalog(RuleSet(), raw_catalog) == 0

    def test_provenance_recorded(self, raw_catalog):
        session = DiscoverySession(
            method="nn-levenshtein",
            seed_values={name: 1 for name in VOCABULARY},
            chooser=make_canonical_chooser(
                set(VOCABULARY), fallback_to_most_common=False
            ),
        )
        rules = session.discover_from_catalog(raw_catalog)
        mapping = rules.rename_mapping()
        if not mapping:
            pytest.skip("no discoveries on this fixture")
        apply_rules_to_catalog(rules, raw_catalog, resolution="refine")
        resolutions = {
            entry.resolution
            for __, entry in raw_catalog.iter_variables()
            if entry.name in set(mapping.values())
            and entry.written_name in mapping
        }
        assert "refine" in resolutions


class TestChoosers:
    def test_canonical_chooser_prefers_vocabulary(self):
        from repro.refine import ValueCluster

        cluster = ValueCluster(
            values=("salinty", "salinity"), counts=(5, 2), method="nn"
        )
        chooser = make_canonical_chooser({"salinity"})
        assert chooser(cluster) == "salinity"

    def test_canonical_chooser_fallback(self):
        from repro.refine import ValueCluster

        cluster = ValueCluster(
            values=("varA", "varB"), counts=(5, 2), method="nn"
        )
        assert make_canonical_chooser(set())(cluster) == "varA"
        assert make_canonical_chooser(
            set(), fallback_to_most_common=False
        )(cluster) is None


class TestCanonicalCollisionGuard:
    def test_two_canonicals_never_merged(self):
        from repro.refine import ValueCluster

        cluster = ValueCluster(
            values=("ph", "par"), counts=(5, 3), method="nn-levenshtein"
        )
        chooser = make_canonical_chooser({"ph", "par"})
        assert chooser(cluster) is None

    def test_chain_never_renames_one_canonical_into_another(
        self, messy_fs
    ):
        from repro.archive import VALUE_RANGES, VOCABULARY
        from repro.wrangling import WranglingState, default_chain

        fs, __ = messy_fs
        state = WranglingState(fs=fs)
        default_chain().run(state)
        for __, entry in state.working.iter_variables():
            var = VOCABULARY.get(entry.name)
            if var is None or entry.count == 0:
                continue
            assert entry.unit == var.unit, (entry.name, entry.unit)
            lo, hi = VALUE_RANGES[entry.name]
            assert entry.minimum >= lo - 1.0, (entry.name, entry.minimum)
            assert entry.maximum <= hi + 1.0, (entry.name, entry.maximum)

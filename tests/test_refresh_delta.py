"""O(changed) refresh == full rebuild, property-tested.

DESIGN note 18's exactness chain, machine-checked end to end: a
copy-on-write snapshot built from a stamped :class:`PublishDelta` must
be indistinguishable from a from-scratch :meth:`snapshot`, an
incremental columnar refreeze must lay out the same rows as a cold
freeze, and a serving refresh that takes the whole delta path — COW
snapshot, spliced columns, migrated indexes, carried cache entries —
must produce the exact page (ids, scores, order, breakdowns, totals) a
cold engine over a fresh snapshot produces.  Hypothesis searches for
counterexamples across random catalogs, publish deltas and query
shapes, on the memory store, the SQLite store, and through
:class:`FlakyCatalogStore`.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.catalog.flaky import FlakyCatalogStore
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.columnar import ColumnarSnapshot
from repro.core.faults import FaultSchedule
from repro.core.query import Query, VariableTerm
from repro.core.search import SearchEngine
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.hierarchy.tree import ConceptHierarchy
from repro.obs import Telemetry, use_telemetry
from repro.serve import ProcessPoolScorer, SearchService, ServeConfig
from repro.wrangling.state import PublishDelta

VARIABLE_POOL = [
    "water_temperature",
    "salinity",
    "dissolved_oxygen",
    "chlorophyll",
    "wind_speed",
]

finite_lat = st.floats(
    min_value=42.0, max_value=49.0, allow_nan=False, allow_infinity=False
)
finite_lon = st.floats(
    min_value=-127.0, max_value=-121.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def features(draw, index: int):
    lat = draw(finite_lat)
    lon = draw(finite_lon)
    start = draw(st.floats(min_value=0.0, max_value=1e7))
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return DatasetFeature(
        dataset_id=f"ds_{index:04d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon, lat + draw(st.floats(0.0, 0.5)),
            lon + draw(st.floats(0.0, 0.5)),
        ),
        interval=TimeInterval(start, start + draw(st.floats(0.0, 1e6))),
        row_count=draw(st.integers(1, 500)),
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
            for name in names
        ],
    )


@st.composite
def queries(draw):
    location = None
    radius = 50.0
    if draw(st.booleans()):
        location = GeoPoint(draw(finite_lat), draw(finite_lon))
        radius = draw(st.floats(min_value=1.0, max_value=500.0))
    interval = None
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=1e7))
        interval = TimeInterval(
            start, start + draw(st.floats(0.0, 1e6))
        )
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=0 if (location or interval) else 1,
            max_size=2,
            unique=True,
        )
    )
    return Query(
        location=location,
        radius_km=radius,
        interval=interval,
        variables=tuple(VariableTerm(name=name) for name in names),
    )


def page(results):
    return [(r.dataset_id, r.score, r.breakdown) for r in results]


def make_store(kind):
    """A fresh store of the parametrized kind (close after use)."""
    if kind == "memory":
        return MemoryCatalog()
    if kind == "sqlite":
        return SqliteCatalog()
    # Delegation through the fault wrapper with the schedule quiet:
    # the COW path must survive the indirection unchanged (the faulted
    # variant is exercised separately with a retry loop).
    return FlakyCatalogStore(MemoryCatalog(), FaultSchedule(rate=0.0))


def close_store(store):
    close = getattr(store, "close", None)
    if close is not None:
        close()


def seed_store(draw, kind):
    count = draw(st.integers(min_value=2, max_value=25))
    store = make_store(kind)
    store.apply_batch([draw(features(i)) for i in range(count)], ())
    return store, count


def publish_delta(draw, store, count):
    """Apply one random batch and return its stamped delta."""
    changed = draw(
        st.lists(
            st.integers(0, count - 1), min_size=0, max_size=4, unique=True,
        )
    )
    removed = draw(
        st.lists(
            st.integers(0, count - 1), min_size=0, max_size=2, unique=True,
        )
    )
    added = draw(st.integers(min_value=0, max_value=2))
    upserts = [
        draw(features(i)) for i in changed if i not in removed
    ] + [draw(features(count + i)) for i in range(added)]
    removed_ids = [f"ds_{i:04d}" for i in removed]
    base = store.version
    store.apply_batch(upserts, removed_ids)
    return PublishDelta(
        upserted=[f.dataset_id for f in upserts],
        removed=removed_ids,
        base_version=base,
        published_version=store.version,
    )


STORE_KINDS = ["memory", "sqlite", "flaky"]


# -- the COW snapshot ------------------------------------------------------


@pytest.mark.parametrize("kind", STORE_KINDS)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_cow_snapshot_equals_full_snapshot(kind, data):
    store, count = seed_store(data.draw, kind)
    try:
        previous = store.snapshot()
        delta = publish_delta(data.draw, store, count)
        if not delta.changed:
            return  # version unchanged; nothing to compare
        assert delta.spans(previous.version, store.version)
        cow = store.snapshot_cow(
            previous,
            delta.upserted,
            delta.removed,
            expect_version=delta.published_version,
        )
        full = store.snapshot()
        assert cow is not None
        assert cow.version == full.version
        assert cow.dataset_ids() == full.dataset_ids()
        for dataset_id in full.dataset_ids():
            assert cow.get(dataset_id) == full.get(dataset_id)
        # Structural sharing is the whole point: every untouched
        # feature object is *the same object* the previous snapshot
        # holds, not a copy.
        touched = set(delta.upserted) | set(delta.removed)
        for dataset_id in previous.dataset_ids():
            if dataset_id not in touched:
                assert cow._features[dataset_id] is (
                    previous._features[dataset_id]
                )
    finally:
        close_store(store)


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_cow_snapshot_version_guard(kind):
    store = make_store(kind)
    try:
        store.apply_batch(
            [_feature("ds_0000"), _feature("ds_0001")], ()
        )
        previous = store.snapshot()
        store.apply_batch([_feature("ds_0000", temp=9.0)], ())
        # Wrong expectation: a second (unseen) publish happened.
        assert store.snapshot_cow(
            previous, ["ds_0000"], [], expect_version=previous.version
        ) is None
        # Unchanged store: COW hands the previous snapshot back.
        fresh = store.snapshot()
        assert store.snapshot_cow(
            fresh, [], [], expect_version=store.version
        ) is fresh
        # Upserted ids missing from the store are treated as removed.
        cow = store.snapshot_cow(
            previous, ["ds_0000", "ds_gone"], [],
            expect_version=store.version,
        )
        assert cow is not None
        assert "ds_gone" not in cow.dataset_ids()
    finally:
        close_store(store)


def test_publish_delta_spans_requirements():
    stamped = PublishDelta(
        upserted=["a"], base_version=4, published_version=5
    )
    assert stamped.spans(4, 5)
    assert not stamped.spans(3, 5)  # wrong base
    assert not stamped.spans(4, 6)  # wrong target
    # An unstamped delta never spans anything.
    assert not PublishDelta(upserted=["a"]).spans(4, 5)
    # A full-copy publish invalidates incremental application.
    assert not PublishDelta(
        full_copy=True, base_version=4, published_version=5
    ).spans(4, 5)
    # More than one bump means a foreign write slipped in between.
    assert not PublishDelta(
        upserted=["a"], base_version=4, published_version=6
    ).spans(4, 6)


def test_cow_through_faulted_store_retries_to_exact():
    inner = MemoryCatalog()
    store = FlakyCatalogStore(
        inner,
        FaultSchedule(seed=7, rate=0.6, max_consecutive=2),
        fail_reads=True,
    )
    _retry(
        lambda: store.apply_batch(
            [_feature(f"ds_{i:04d}") for i in range(6)], ()
        )
    )
    previous = _retry(store.snapshot)
    _retry(
        lambda: store.apply_batch(
            [_feature("ds_0002", temp=50.0)], ["ds_0005"]
        )
    )
    cow = _retry(
        lambda: store.snapshot_cow(
            previous, ["ds_0002"], ["ds_0005"],
            expect_version=store.version,
        )
    )
    full = inner.snapshot()
    assert cow is not None
    assert cow.dataset_ids() == full.dataset_ids()
    for dataset_id in full.dataset_ids():
        assert cow.get(dataset_id) == full.get(dataset_id)
    assert store.schedule.total_injected > 0  # the faults really fired


def _retry(call, attempts: int = 10):
    for _ in range(attempts - 1):
        try:
            return call()
        except sqlite3.OperationalError:
            continue
    return call()


def _feature(dataset_id: str, temp: float = 30.0, name: str = "salinity"):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=dataset_id,
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, temp, 15.0, 5.0)
        ],
    )


# -- the incremental refreeze ----------------------------------------------


def _rows(view: ColumnarSnapshot):
    """Layout rows with name ids resolved — name-table order is
    allowed to differ between a cold freeze and a splice."""
    out = []
    for row, dataset_id in enumerate(view.ids):
        lo, hi = view.var_offsets[row], view.var_offsets[row + 1]
        out.append((
            dataset_id,
            view.min_lat[row], view.min_lon[row],
            view.max_lat[row], view.max_lon[row],
            view.t_start[row], view.t_end[row],
            [
                (view.names[view.var_name_ids[k]], view.var_counts[k],
                 view.var_mins[k], view.var_maxs[k])
                for k in range(lo, hi)
            ],
        ))
    return out


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_freeze_from_equals_cold_freeze(data):
    store = MemoryCatalog()
    count = data.draw(st.integers(min_value=2, max_value=25))
    store.apply_batch(
        [data.draw(features(i)) for i in range(count)], ()
    )
    base_view = ColumnarSnapshot(
        list(store.features()), version=store.version
    )
    delta = publish_delta(data.draw, store, count)
    upserted = [
        store.get(dataset_id)
        for dataset_id in delta.upserted
        if dataset_id not in delta.removed
    ]
    spliced = ColumnarSnapshot.freeze_from(
        base_view, upserted, delta.removed, version=store.version
    )
    cold = ColumnarSnapshot(
        list(store.features()), version=store.version
    )
    assert spliced.version == cold.version
    assert spliced.ids == cold.ids
    assert _rows(spliced) == _rows(cold)


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_delta_refresh_page_equals_cold_engine(kind, data):
    """The whole handoff: COW snapshot + spliced columns + migrated
    indexes + carried cache, versus a cold engine on a fresh snapshot."""
    store, count = seed_store(data.draw, kind)
    query = data.draw(queries())
    limit = data.draw(st.integers(min_value=1, max_value=10))
    service = SearchService(
        store,
        config=ServeConfig(max_concurrency=2, queue_depth=4),
    )
    try:
        service.search(query, limit=limit)  # seed cache + hotness ring
        delta = publish_delta(data.draw, store, count)
        if not delta.changed:
            return
        assert service.refresh(delta=delta) is True
        assert service.telemetry.counter("refresh.delta_applied") == 1
        assert service.telemetry.counter("refresh.full_rebuilds") == 0
        actual = service.search(query, limit=limit)
        cold = SearchEngine(store.snapshot(), cache=False)
        cold.build_indexes()
        expected = cold.search(query, limit=limit)
        assert page(actual.results) == page(expected)
        assert actual.results.total_matches == expected.total_matches
        assert actual.snapshot_version == store.version
    finally:
        service.close()
        close_store(store)


# -- the freeze race -------------------------------------------------------


def test_concurrent_first_freeze_happens_once():
    store = MemoryCatalog()
    store.apply_batch(
        [_feature(f"ds_{i:04d}") for i in range(20)], ()
    )
    snapshot = store.snapshot()
    telemetry = Telemetry()
    workers = 6
    barrier = threading.Barrier(workers + 1)
    views = []

    def hammer():
        with use_telemetry(telemetry):
            barrier.wait()
            views.append(snapshot.columnar())

    threads = [
        threading.Thread(target=hammer) for _ in range(workers)
    ]
    for thread in threads:
        thread.start()
    # Hold the freeze lock until every thread has passed the lock-free
    # fast path (the view is still None) and queued on the lock: the
    # race is then deterministic, not scheduler luck.
    with snapshot._freeze_lock:
        barrier.wait()
        time.sleep(0.05)
    for thread in threads:
        thread.join()
    assert len(views) == workers
    assert all(view is views[0] for view in views)  # ONE freeze
    assert telemetry.counter("columnar.freeze_races_avoided") >= 1


# -- hierarchy content equality --------------------------------------------


def _hierarchy(order_flipped: bool = False) -> ConceptHierarchy:
    hierarchy = ConceptHierarchy()
    names = ["salinity", "water_temperature"]
    if order_flipped:
        names.reverse()
    for name in names:
        hierarchy.add(name, parent="ocean", measurable=True)
    return hierarchy


def test_refresh_with_equal_hierarchy_keeps_engine():
    store = MemoryCatalog()
    store.apply_batch([_feature("ds_0000")], ())
    original = _hierarchy()
    service = SearchService(store, hierarchy=original)
    try:
        engine = service._engine
        replacement = _hierarchy(order_flipped=True)
        assert replacement is not original
        assert replacement.fingerprint() == original.fingerprint()
        # Equal content, unchanged source: no rebuild, old object kept
        # (its id keys every warm cache entry).
        assert service.refresh(hierarchy=replacement) is False
        assert service._engine is engine
        assert service.hierarchy is original
    finally:
        service.close()


def test_refresh_with_different_hierarchy_rebuilds():
    store = MemoryCatalog()
    store.apply_batch([_feature("ds_0000")], ())
    service = SearchService(store, hierarchy=_hierarchy())
    try:
        engine = service._engine
        changed = _hierarchy()
        changed.add("chlorophyll", parent="ocean")
        assert service.refresh(hierarchy=changed) is True
        assert service._engine is not engine
        assert service.hierarchy is changed
    finally:
        service.close()


# -- cache migration and warming -------------------------------------------


def test_refresh_carries_unaffected_cache_entries():
    store = MemoryCatalog()
    store.apply_batch(
        [_feature(f"ds_{i:04d}") for i in range(5)]
        + [_feature("ds_wind", name="wind_speed")],
        (),
    )
    service = SearchService(
        store,
        config=ServeConfig(
            max_concurrency=2, queue_depth=4, warm_queries=0
        ),
    )
    try:
        query = Query(variables=(VariableTerm(name="salinity"),))
        first = service.search(query, limit=5)
        base = store.version
        store.apply_batch([_feature("ds_wind", name="wind_speed")], ())
        delta = PublishDelta(
            upserted=["ds_wind"],
            base_version=base,
            published_version=store.version,
        )
        assert service.refresh(delta=delta) is True
        carried = service.telemetry.counter(
            "refresh.cache_entries_carried"
        )
        assert carried >= 1
        hits = service.cache.stats()["hits"]
        second = service.search(query, limit=5)
        # The touched dataset scores 0.0 for this query under both its
        # old and new state, so the carried entry is provably exact …
        assert service.cache.stats()["hits"] == hits + 1
        assert page(second.results) == page(first.results)
        # … and matches a cold engine over the fresh snapshot.
        cold = SearchEngine(store.snapshot(), cache=False)
        assert page(second.results) == page(cold.search(query, limit=5))
    finally:
        service.close()


def test_refresh_invalidates_affected_cache_entries():
    store = MemoryCatalog()
    store.apply_batch(
        [_feature(f"ds_{i:04d}") for i in range(5)], ()
    )
    service = SearchService(
        store,
        config=ServeConfig(
            max_concurrency=2, queue_depth=4, warm_queries=0
        ),
    )
    try:
        query = Query(variables=(VariableTerm(name="salinity"),))
        service.search(query, limit=5)
        base = store.version
        store.apply_batch([], ["ds_0002"])  # scored nonzero: must drop
        delta = PublishDelta(
            removed=["ds_0002"],
            base_version=base,
            published_version=store.version,
        )
        assert service.refresh(delta=delta) is True
        hits = service.cache.stats()["hits"]
        fresh = service.search(query, limit=5)
        assert service.cache.stats()["hits"] == hits  # recomputed
        assert "ds_0002" not in [
            r.dataset_id for r in fresh.results
        ]
        cold = SearchEngine(store.snapshot(), cache=False)
        assert page(fresh.results) == page(cold.search(query, limit=5))
    finally:
        service.close()


def test_refresh_warms_hottest_queries():
    store = MemoryCatalog()
    store.apply_batch(
        [_feature(f"ds_{i:04d}") for i in range(5)], ()
    )
    service = SearchService(
        store,
        config=ServeConfig(
            max_concurrency=2, queue_depth=4, warm_queries=2
        ),
    )
    try:
        query = Query(variables=(VariableTerm(name="salinity"),))
        for _ in range(3):
            service.search(query, limit=5)
        base = store.version
        store.apply_batch([_feature("ds_0001", temp=99.0)], ())
        delta = PublishDelta(
            upserted=["ds_0001"],
            base_version=base,
            published_version=store.version,
        )
        assert service.refresh(delta=delta) is True
        assert service.telemetry.counter("refresh.warmed_queries") >= 1
        # The hot query was pre-executed against the new engine before
        # the swap: the first post-swap request is a cache hit.
        hits = service.cache.stats()["hits"]
        warmed = service.search(query, limit=5)
        assert service.cache.stats()["hits"] == hits + 1
        cold = SearchEngine(store.snapshot(), cache=False)
        assert page(warmed.results) == page(cold.search(query, limit=5))
    finally:
        service.close()


# -- the process-pool delta handoff ----------------------------------------


def test_procpool_delta_install_scores_exactly():
    store = MemoryCatalog()
    store.apply_batch(
        [_feature(f"ds_{i:04d}", temp=float(i + 1)) for i in range(12)],
        (),
    )
    pool = ProcessPoolScorer(workers=2, min_rows=1)
    try:
        engine_v1 = SearchEngine(store, cache=False, procpool=pool)
        pool.install(engine_v1.columnar_view())
        base_version = store.version
        store.apply_batch(
            [_feature("ds_0003", temp=77.0)], ["ds_0009"]
        )
        snapshot = store.snapshot()
        view = snapshot.columnar()
        pool.install(
            view,
            delta=(
                base_version,
                [snapshot.get("ds_0003")],
                ["ds_0009"],
            ),
        )
        assert pool.stats()["delta_installs"] == 1
        pooled = SearchEngine(snapshot, cache=False, procpool=pool)
        serial = SearchEngine(snapshot, cache=False)
        query = Query(variables=(VariableTerm(name="salinity"),))
        expected = serial.search(query, limit=8)
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            actual = pooled.search(query, limit=8)
        # The delta-installed payload really served the query …
        counters = telemetry.snapshot()["counters"]
        assert counters.get("procpool.queries") == 1
        assert "procpool.degraded" not in counters
        # … and the workers' freeze_from rebuild scored the exact page
        # (totals are not compared: the pool rung reports full match
        # counts where the in-process rung may stop at the limit, a
        # pre-existing difference the procpool suite documents).
        assert page(actual) == page(expected)
    finally:
        pool.close()
        close_store(store)

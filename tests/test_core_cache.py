"""The query cache, version-keyed invalidation, and staleness fixes."""

import pytest

from repro.catalog import DatasetFeature, MemoryCatalog, VariableEntry
from repro.core import (
    Query,
    QueryCache,
    ScoringConfig,
    SearchEngine,
    VariableTerm,
)
from repro.geo import BoundingBox, GeoPoint, TimeInterval


def feature(dataset_id, lat, lon, t0=0.0, t1=1000.0,
            name="water_temperature"):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=dataset_id,
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat, lon),
        interval=TimeInterval(t0, t1),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 10.0, 5.0, 1.0)
        ],
    )


@pytest.fixture()
def catalog():
    cat = MemoryCatalog()
    cat.upsert(feature("near_a", 45.5, -124.4))
    cat.upsert(feature("near_b", 45.6, -124.3))
    cat.upsert(feature("far_c", 48.0, -120.0))
    return cat


def query():
    return Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval(0.0, 1000.0),
        variables=(VariableTerm("water_temperature"),),
    )


class TestQueryCacheUnit:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # freshen a; b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_clear_keeps_counters(self):
        cache = QueryCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)

    def test_hit_rate(self):
        cache = QueryCache()
        assert cache.stats()["hit_rate"] == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats()["hit_rate"] == pytest.approx(0.5)


class TestEngineCache:
    def test_repeat_query_hits_cache(self, catalog):
        engine = SearchEngine(catalog)
        engine.build_indexes()
        first = engine.search(query())
        second = engine.search(query())
        assert [r.dataset_id for r in first] == [
            r.dataset_id for r in second
        ]
        stats = engine.stats()["cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_mutation_invalidates_cache_and_indexes(self, catalog):
        """Any upsert bumps the version: cached pages and index candidate
        sets from before the edit can no longer be served."""
        engine = SearchEngine(catalog)
        engine.build_indexes()
        before = engine.search(query(), limit=3)
        assert "far_c" != before[0].dataset_id
        # Move the far dataset onto the query point (same-size mutation).
        catalog.upsert(feature("far_c", 45.5, -124.4))
        assert not engine.stats()["indexes_current"]
        after = engine.search(query(), limit=3)
        assert after[0].score == pytest.approx(1.0)
        assert {r.dataset_id for r in after if r.score > 0.99} >= {"far_c"}
        stats = engine.stats()["cache"]
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_same_size_replacement_not_served_stale(self, catalog):
        """Regression: `len(indexes) != len(catalog)` missed same-size
        replacements, silently serving stale candidates."""
        engine = SearchEngine(catalog, cache=False)
        engine.build_indexes()
        engine.search(query(), limit=3)
        # Replace near_a with a far-away dataset: catalog size unchanged.
        catalog.upsert(feature("near_a", 49.0, -121.0))
        assert len(engine.indexes) == len(catalog)
        assert not engine.stats()["indexes_current"]
        spatial_only = Query(location=GeoPoint(49.0, -121.0), radius_km=5.0)
        results = engine.search(spatial_only, limit=1)
        assert results[0].dataset_id == "near_a"
        assert results[0].score == pytest.approx(1.0)

    def test_refresh_indexes_restores_currency(self, catalog):
        engine = SearchEngine(catalog, cache=False)
        engine.build_indexes()
        catalog.upsert(feature("near_a", 49.0, -121.0))
        engine.refresh_indexes(updated=[catalog.get("near_a")])
        assert engine.stats()["indexes_current"]
        spatial_only = Query(location=GeoPoint(49.0, -121.0), radius_km=5.0)
        assert engine.search(spatial_only, limit=1)[0].dataset_id == "near_a"

    def test_cache_disabled(self, catalog):
        engine = SearchEngine(catalog, cache=False)
        assert engine.cache is None
        assert engine.stats()["cache"] is None
        assert engine.search(query())

    def test_shared_cache_instance(self, catalog):
        shared = QueryCache(maxsize=8)
        a = SearchEngine(catalog, cache=shared)
        b = SearchEngine(catalog, cache=shared)
        a.search(query())
        b.search(query())
        assert shared.hits == 1

    def test_different_limits_cached_separately(self, catalog):
        engine = SearchEngine(catalog)
        one = engine.search(query(), limit=1)
        three = engine.search(query(), limit=3)
        assert len(one) == 1
        assert len(three) == 3
        assert engine.cache.stats()["misses"] == 2


class TestMicroFixes:
    def test_zero_total_weight_no_crash(self, catalog):
        """All term weights zero: pruning must bail out, not divide by
        zero; every dataset scores the neutral 1.0."""
        config = ScoringConfig(
            location_weight=0.0, time_weight=0.0, variable_weight=0.0
        )
        engine = SearchEngine(catalog, config=config, cache=False)
        engine.build_indexes()
        results = engine.search(query(), limit=10)
        assert len(results) == 3
        assert all(r.score == pytest.approx(1.0) for r in results)

    def test_decay_horizon_memoized(self, catalog):
        engine = SearchEngine(catalog, cache=False)
        engine.build_indexes()
        engine.search(query())
        key = (engine.epsilon, engine.config.decay_shape)
        assert key in engine._horizons
        assert engine._decay_horizon(
            engine.config.decay_shape
        ) == engine._horizons[key]


class TestCacheConcurrency:
    """N threads hammer one cache; accounting must never tear."""

    THREADS = 8
    OPS = 400

    def test_concurrent_lookups_account_exactly(self):
        import threading

        cache = QueryCache(maxsize=64)
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            barrier.wait()
            for op in range(self.OPS):
                key = (index * 7 + op) % 96  # force hits AND misses
                if cache.get(key) is None:
                    cache.put(key, ("value", key))

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        stats = cache.stats()
        # Every lookup was counted exactly once, no lost increments.
        assert stats["hits"] + stats["misses"] == self.THREADS * self.OPS
        assert len(cache) <= 64
        assert stats["hit_rate"] == pytest.approx(
            stats["hits"] / (self.THREADS * self.OPS)
        )

    def test_concurrent_clear_keeps_counters_consistent(self):
        import threading

        cache = QueryCache(maxsize=32)
        stop = threading.Event()

        def clearer() -> None:
            while not stop.is_set():
                cache.clear()

        thread = threading.Thread(target=clearer, daemon=True)
        thread.start()
        lookups = 0
        try:
            for op in range(2000):
                key = op % 40
                if cache.get(key) is None:
                    cache.put(key, op)
                lookups += 1
        finally:
            stop.set()
            thread.join(timeout=10.0)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == lookups
        assert len(cache) <= 32

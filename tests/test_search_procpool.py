"""Process-pool scoring == sharded threads == serial, property-tested.

DESIGN note 16's exactness argument, machine-checked the way
``test_search_sharded.py`` checks thread shards: worker processes score
contiguous row ranges of the shipped snapshot through bounded top-k
heaps, the parent merges the survivors, and the page (ids, scores,
order, full breakdowns) must equal the serial engine's on every random
catalog/query/limit Hypothesis can find.  The degradation ladder —
pool -> threads -> serial — is pinned too: a stale or broken pool must
answer ``None`` and the query must still produce the exact page.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.query import Query, VariableTerm
from repro.core.search import SearchEngine
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.obs import Telemetry, use_telemetry
from repro.serve import ProcessPoolScorer

VARIABLE_POOL = [
    "water_temperature",
    "salinity",
    "dissolved_oxygen",
    "chlorophyll",
    "wind_speed",
]

finite_lat = st.floats(
    min_value=42.0, max_value=49.0, allow_nan=False, allow_infinity=False
)
finite_lon = st.floats(
    min_value=-127.0, max_value=-121.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def features(draw, index: int):
    lat = draw(finite_lat)
    lon = draw(finite_lon)
    start = draw(st.floats(min_value=0.0, max_value=1e7))
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    return DatasetFeature(
        dataset_id=f"ds_{index:04d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon, lat + draw(st.floats(0.0, 0.5)),
            lon + draw(st.floats(0.0, 0.5)),
        ),
        interval=TimeInterval(start, start + draw(st.floats(0.0, 1e6))),
        row_count=draw(st.integers(1, 500)),
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
            for name in names
        ],
    )


@st.composite
def catalogs(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    catalog = MemoryCatalog()
    catalog.upsert_many(
        [draw(features(index)) for index in range(count)]
    )
    return catalog


@st.composite
def queries(draw):
    location = None
    radius = 50.0
    if draw(st.booleans()):
        location = GeoPoint(draw(finite_lat), draw(finite_lon))
        radius = draw(st.floats(min_value=1.0, max_value=500.0))
    interval = None
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=1e7))
        interval = TimeInterval(
            start, start + draw(st.floats(0.0, 1e6))
        )
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=0 if (location or interval) else 1,
            max_size=2,
            unique=True,
        )
    )
    return Query(
        location=location,
        radius_km=radius,
        interval=interval,
        variables=tuple(VariableTerm(name=name) for name in names),
    )


def page(results):
    return [(r.dataset_id, r.score, r.breakdown) for r in results]


@pytest.fixture(scope="module")
def pool():
    # One worker pool for the whole module: Hypothesis drives many
    # examples through it, which is exactly the serving pattern (one
    # pool, many installs).
    scorer = ProcessPoolScorer(workers=2, min_rows=1)
    yield scorer
    scorer.close()


def pooled_engine(catalog, pool) -> SearchEngine:
    engine = SearchEngine(catalog, cache=False, procpool=pool)
    view = engine.columnar_view()
    pool.install(view)
    return engine


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=15),
)
@settings(max_examples=12, deadline=None)
def test_pool_page_equals_threads_equals_serial(catalog, query, limit, pool):
    serial = SearchEngine(catalog, cache=False)
    threaded = SearchEngine(
        catalog, cache=False, shard_workers=3, shard_threshold=1
    )
    pooled = pooled_engine(catalog, pool)
    telemetry = Telemetry()
    try:
        expected = page(serial.search(query, limit=limit))
        assert page(threaded.search(query, limit=limit)) == expected
        with use_telemetry(telemetry):
            assert page(pooled.search(query, limit=limit)) == expected
    finally:
        threaded.close()
    # The pool really served (nothing silently degraded to threads).
    counters = telemetry.snapshot()["counters"]
    assert counters.get("procpool.queries") == 1
    assert "procpool.degraded" not in counters


@given(
    catalog=catalogs(),
    query=queries(),
    limit=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=8, deadline=None)
def test_pool_with_indexes_equals_serial(catalog, query, limit, pool):
    # The pool rung composes with index pruning and the remainder
    # rescan exactly like the thread rung does.
    serial = SearchEngine(catalog, cache=False)
    serial.build_indexes()
    pooled = pooled_engine(catalog, pool)
    pooled.build_indexes()
    expected = page(serial.search(query, limit=limit))
    assert page(pooled.search(query, limit=limit)) == expected


def small_catalog(n: int = 12) -> MemoryCatalog:
    catalog = MemoryCatalog()
    catalog.upsert_many(
        [
            DatasetFeature(
                dataset_id=f"d{i:03d}",
                title=f"d{i}",
                platform="station",
                file_format="csv",
                bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
                interval=TimeInterval(0.0, 1000.0 + i),
                row_count=10,
                source_directory="",
                variables=[
                    VariableEntry.from_written(
                        "salinity", "psu", 10, 0.0, 30.0, 15.0, 2.0
                    )
                ],
            )
            for i in range(n)
        ]
    )
    return catalog


QUERY = Query(variables=(VariableTerm(name="salinity"),))


def test_stale_version_is_a_miss_not_a_wrong_page(pool):
    catalog = small_catalog()
    engine = pooled_engine(catalog, pool)
    baseline = page(engine.search(QUERY, limit=5))
    # Mutate the catalog: the engine's next view has a version the pool
    # has never been shipped -> wants() is False, the query degrades to
    # the serial rung, and the page tracks the *new* catalog state.
    catalog.remove("d000")
    serial = SearchEngine(catalog, cache=False)
    assert not pool.wants(catalog.version, len(catalog))
    degraded = page(engine.search(QUERY, limit=5))
    assert degraded == page(serial.search(QUERY, limit=5))
    assert degraded != baseline
    # Direct contract: an unshipped version answers None.
    assert pool.score(QUERY, 5, version=10_000, rows=range(5)) is None


def test_min_rows_gate(pool):
    assert not pool.wants(1, 0)
    gated = ProcessPoolScorer(workers=2, min_rows=500)
    try:
        assert not gated.wants(1, 499)
    finally:
        gated.close()


@pytest.fixture()
def own_pool():
    # Lifecycle tests ship versions from their own catalog lineage; a
    # private pool keeps those version numbers from colliding with the
    # module pool's (one pool serves one catalog in real serving).
    scorer = ProcessPoolScorer(workers=2, min_rows=1)
    yield scorer
    scorer.close()


def test_install_retains_current_and_previous_version_only(own_pool):
    pool = own_pool
    catalog = small_catalog()
    engine = SearchEngine(catalog, cache=False)
    installed = []
    for _ in range(3):
        view = engine.columnar_view()
        pool.install(view)
        installed.append(view.version)
        catalog.upsert(catalog.get("d001"))  # bump the version
        engine = SearchEngine(catalog, cache=False)
    shipped = pool.stats()["versions_shipped"]
    # Current + previous only: the staleness <= 1 retention window.
    assert shipped == sorted(installed)[-2:]


def test_broken_pool_degrades_to_exact_page_and_recovers(own_pool):
    pool = own_pool
    catalog = small_catalog()
    engine = pooled_engine(catalog, pool)
    serial = SearchEngine(catalog, cache=False)
    expected = page(serial.search(QUERY, limit=5))

    class _Boom:
        def submit(self, *args, **kwargs):
            raise RuntimeError("worker pool is gone")

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    alive = pool._pool
    pool._pool = _Boom()
    telemetry = Telemetry()
    try:
        with use_telemetry(telemetry):
            got = page(engine.search(QUERY, limit=5))
        assert got == expected  # degraded rung, identical page
        counters = telemetry.snapshot()["counters"]
        assert counters.get("procpool.degraded") == 1
        assert pool.stats()["failures"] >= 1
    finally:
        # Restore a live executor; a fresh install resets the failure
        # budget (a new snapshot is a new chance).
        pool._pool = alive
    pool.install(engine.columnar_view())
    assert pool.stats()["failures"] == 0
    assert page(engine.search(QUERY, limit=5)) == expected


def test_engine_validation_and_defaults():
    with pytest.raises(ValueError):
        ProcessPoolScorer(workers=1)
    with pytest.raises(ValueError):
        ProcessPoolScorer(workers=2, min_rows=0)


def test_closed_pool_refuses_install_and_score():
    scorer = ProcessPoolScorer(workers=2, min_rows=1)
    scorer.close()
    scorer.close()  # idempotent
    assert not scorer.wants(1, 100)
    assert scorer.score(QUERY, 5, version=1, rows=range(5)) is None
    catalog = small_catalog(3)
    engine = SearchEngine(catalog, cache=False)
    with pytest.raises(RuntimeError):
        scorer.install(engine.columnar_view())

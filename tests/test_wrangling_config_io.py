"""Unit tests for process-configuration serialization."""

import json

import pytest

from repro.curator import AddScanTarget, AddSynonym, DecideAmbiguity
from repro.semantics import AmbiguityAction
from repro.wrangling import WranglingState, default_chain
from repro.wrangling.config_io import (
    ProcessConfigError,
    dump_process_config,
    load_process_config,
)


@pytest.fixture()
def configured(messy_fs):
    """A chain+state after a run and some curator improvements."""
    fs, __ = messy_fs
    state = WranglingState(fs=fs)
    chain = default_chain()
    chain.run(state)
    AddSynonym("salinity", "salznity").apply(chain, state)
    AddScanTarget("extra_dir", "*.csv").apply(chain, state)
    DecideAmbiguity(
        "temp", AmbiguityAction.HIDE
    ).apply(chain, state)
    return chain, state, fs


class TestDump:
    def test_valid_json_with_marker(self, configured):
        chain, state, __ = configured
        payload = json.loads(dump_process_config(chain, state))
        assert payload["format"] == "repro-process-config"
        assert payload["components"] == chain.names()

    def test_contains_curated_knowledge(self, configured):
        chain, state, __ = configured
        payload = json.loads(dump_process_config(chain, state))
        assert ["salznity", "salinity"] in payload["synonyms"]
        assert any(
            t["directory"] == "extra_dir" for t in payload["scan_targets"]
        )
        assert any(d["name"] == "temp" for d in payload["decisions"])

    def test_discovered_rules_included(self, configured):
        chain, state, __ = configured
        payload = json.loads(dump_process_config(chain, state))
        assert isinstance(payload["discovered_rules"], list)


class TestLoad:
    def test_roundtrip_restores_knowledge(self, configured):
        chain, state, fs = configured
        text = dump_process_config(chain, state)
        chain2, state2 = load_process_config(text, fs=fs)
        assert state2.resolver.synonyms.resolve("salznity") == "salinity"
        assert any(d.name == "temp" for d in state2.decisions)
        scan = chain2.component("scan-archive")
        assert any(t.directory == "extra_dir" for t in scan.targets)

    def test_roundtrip_reproduces_published_catalog(self, configured):
        chain, state, fs = configured
        # Re-run the original to settle post-improvement state.
        chain.run(state)
        text = dump_process_config(chain, state)
        chain2, state2 = load_process_config(text, fs=fs)
        chain2.run(state2)
        names1 = state.published.variable_name_counts()
        names2 = state2.published.variable_name_counts()
        assert names2 == names1

    def test_not_json(self):
        with pytest.raises(ProcessConfigError):
            load_process_config("nope")

    def test_missing_marker(self):
        with pytest.raises(ProcessConfigError):
            load_process_config('{"version": 1}')

    def test_wrong_version(self):
        text = json.dumps(
            {"format": "repro-process-config", "version": 42}
        )
        with pytest.raises(ProcessConfigError):
            load_process_config(text)

    def test_unknown_component_rejected(self):
        text = json.dumps(
            {
                "format": "repro-process-config",
                "version": 1,
                "components": ["quantum-dedup"],
            }
        )
        with pytest.raises(ProcessConfigError):
            load_process_config(text)

    def test_bad_synonym_row(self):
        text = json.dumps(
            {
                "format": "repro-process-config",
                "version": 1,
                "synonyms": ["not-a-pair"],
            }
        )
        with pytest.raises(ProcessConfigError):
            load_process_config(text)

    def test_empty_config_gives_default_chain(self):
        text = json.dumps(
            {"format": "repro-process-config", "version": 1}
        )
        chain, state = load_process_config(text)
        assert chain.names()[0] == "scan-archive"
        assert len(state.decisions) == 0

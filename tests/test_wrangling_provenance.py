"""Unit tests for repro.wrangling.provenance."""

import pytest

from repro.wrangling import (
    PerformKnownTransformations,
    ScanArchive,
    WranglingState,
)
from repro.wrangling.provenance import ProvenanceJournal


@pytest.fixture()
def state(messy_fs):
    fs, __ = messy_fs
    s = WranglingState(fs=fs)
    ScanArchive().execute(s)
    return s


class TestSnapshot:
    def test_first_snapshot_records_nothing_for_raw(self, state):
        journal = ProvenanceJournal()
        new = journal.snapshot(state.working)
        # Raw catalog: names equal written names, nothing excluded.
        renames = [e for e in journal if e.kind == "rename"]
        assert renames == []
        assert new == len(journal)

    def test_known_transforms_produce_events(self, state):
        journal = ProvenanceJournal()
        journal.snapshot(state.working)
        PerformKnownTransformations().execute(state)
        new = journal.snapshot(state.working)
        assert new > 0
        renames = [e for e in journal if e.kind == "rename"]
        assert renames
        for event in renames:
            assert event.old_name != event.new_name
            assert event.run_number == 2

    def test_exclusion_events(self, state):
        journal = ProvenanceJournal()
        journal.snapshot(state.working)
        PerformKnownTransformations().execute(state)
        journal.snapshot(state.working)
        excludes = [e for e in journal if e.kind == "exclude"]
        assert excludes  # QA columns were excluded

    def test_stable_rerun_adds_no_events(self, state):
        journal = ProvenanceJournal()
        journal.snapshot(state.working)
        PerformKnownTransformations().execute(state)
        journal.snapshot(state.working)
        before = len(journal)
        assert journal.snapshot(state.working) == 0
        assert len(journal) == before

    def test_methods_recorded(self, state):
        journal = ProvenanceJournal()
        journal.snapshot(state.working)
        PerformKnownTransformations().execute(state)
        journal.snapshot(state.working)
        methods = journal.events_by_method()
        assert methods
        known = {"exact", "synonym", "abbreviation", "context",
                 "ambiguity-evidence", "fuzzy", "curator", "unknown"}
        assert set(methods) <= known


class TestQueries:
    @pytest.fixture()
    def journal(self, state):
        journal = ProvenanceJournal()
        journal.snapshot(state.working)
        PerformKnownTransformations().execute(state)
        journal.snapshot(state.working)
        return journal

    def test_events_for_variable(self, journal):
        event = next(e for e in journal if e.kind == "rename")
        events = journal.events_for(event.dataset_id, event.written_name)
        assert event in events

    def test_audit_trail_text(self, journal):
        event = next(e for e in journal if e.kind == "rename")
        trail = journal.audit_trail(event.dataset_id, event.written_name)
        assert event.dataset_id in trail
        assert "->" in trail

    def test_audit_trail_untouched_variable(self, journal):
        trail = journal.audit_trail("no/such.csv", "ghost")
        assert "no transformations" in trail

    def test_describe_kinds(self, journal):
        for event in journal:
            text = event.describe()
            assert f"run {event.run_number}" in text

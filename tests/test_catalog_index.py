"""Unit tests for repro.catalog.index."""

import random

import pytest

from repro.catalog import (
    CatalogIndexes,
    IntervalIndex,
    SpatialGridIndex,
)
from repro.geo import BoundingBox, GeoPoint, TimeInterval


class TestSpatialGridIndex:
    def test_insert_and_find(self):
        index = SpatialGridIndex()
        index.insert("a", BoundingBox(46.0, -124.0, 46.1, -123.9))
        hits = index.candidates_near(GeoPoint(46.05, -123.95), 10.0)
        assert "a" in hits

    def test_far_point_misses(self):
        index = SpatialGridIndex()
        index.insert("a", BoundingBox(46.0, -124.0, 46.1, -123.9))
        hits = index.candidates_near(GeoPoint(0.0, 0.0), 10.0)
        assert hits == set()

    def test_conservative_never_misses(self):
        # Against a brute-force distance check, the index may return
        # extra candidates but must include every true hit.
        rng = random.Random(4)
        index = SpatialGridIndex(cell_degrees=0.5)
        boxes = {}
        for i in range(200):
            lat = rng.uniform(40.0, 50.0)
            lon = rng.uniform(-130.0, -120.0)
            box = BoundingBox(lat, lon, lat + rng.uniform(0, 0.5),
                              lon + rng.uniform(0, 0.5))
            boxes[f"d{i}"] = box
            index.insert(f"d{i}", box)
        for __ in range(20):
            point = GeoPoint(rng.uniform(41, 49), rng.uniform(-129, -121))
            radius = rng.uniform(5, 200)
            candidates = index.candidates_near(point, radius)
            for dataset_id, box in boxes.items():
                if box.distance_km_to_point(point) <= radius:
                    assert dataset_id in candidates, (dataset_id, radius)

    def test_remove(self):
        index = SpatialGridIndex()
        index.insert("a", BoundingBox(46.0, -124.0, 46.1, -123.9))
        index.remove("a")
        assert len(index) == 0
        assert index.candidates_near(GeoPoint(46.05, -123.95), 50.0) == set()

    def test_remove_absent_is_noop(self):
        SpatialGridIndex().remove("ghost")

    def test_reinsert_moves(self):
        index = SpatialGridIndex()
        index.insert("a", BoundingBox(46.0, -124.0, 46.0, -124.0))
        index.insert("a", BoundingBox(10.0, 10.0, 10.0, 10.0))
        assert index.candidates_near(GeoPoint(46.0, -124.0), 5.0) == set()
        assert "a" in index.candidates_near(GeoPoint(10.0, 10.0), 5.0)

    def test_box_spanning_many_cells(self):
        index = SpatialGridIndex(cell_degrees=0.25)
        index.insert("wide", BoundingBox(44.0, -126.0, 48.0, -120.0))
        assert "wide" in index.candidates_near(GeoPoint(46.0, -123.0), 1.0)
        assert "wide" in index.candidates_near(GeoPoint(44.1, -125.9), 1.0)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            SpatialGridIndex().candidates_near(GeoPoint(0, 0), -1.0)

    def test_bad_cell_size_raises(self):
        with pytest.raises(ValueError):
            SpatialGridIndex(cell_degrees=0.0)


class TestIntervalIndex:
    def test_overlap_found(self):
        index = IntervalIndex()
        index.insert("a", TimeInterval(100, 200))
        assert "a" in index.candidates_overlapping(TimeInterval(150, 300))

    def test_disjoint_missed(self):
        index = IntervalIndex()
        index.insert("a", TimeInterval(100, 200))
        assert index.candidates_overlapping(TimeInterval(300, 400)) == set()

    def test_margin_widens(self):
        index = IntervalIndex()
        index.insert("a", TimeInterval(100, 200))
        assert index.candidates_overlapping(
            TimeInterval(300, 400), margin_seconds=100
        ) == {"a"}

    def test_matches_brute_force(self):
        rng = random.Random(9)
        index = IntervalIndex()
        intervals = {}
        for i in range(300):
            start = rng.uniform(0, 10000)
            iv = TimeInterval(start, start + rng.uniform(0, 500))
            intervals[f"d{i}"] = iv
            index.insert(f"d{i}", iv)
        for __ in range(25):
            start = rng.uniform(0, 10000)
            query = TimeInterval(start, start + rng.uniform(0, 800))
            margin = rng.choice([0.0, 50.0])
            got = index.candidates_overlapping(query, margin_seconds=margin)
            expected = {
                did
                for did, iv in intervals.items()
                if iv.gap_seconds(query) <= margin
            }
            assert got == expected

    def test_remove(self):
        index = IntervalIndex()
        index.insert("a", TimeInterval(0, 10))
        index.remove("a")
        assert len(index) == 0

    def test_reinsert_updates(self):
        index = IntervalIndex()
        index.insert("a", TimeInterval(0, 10))
        index.insert("a", TimeInterval(1000, 1010))
        assert index.candidates_overlapping(TimeInterval(0, 10)) == set()
        assert index.candidates_overlapping(TimeInterval(1005, 1006)) == {"a"}

    def test_negative_margin_raises(self):
        index = IntervalIndex()
        with pytest.raises(ValueError):
            index.candidates_overlapping(TimeInterval(0, 1), -5.0)


class TestCatalogIndexes:
    def test_build_from_features(self, raw_catalog):
        indexes = CatalogIndexes.build(list(raw_catalog))
        assert len(indexes) == len(raw_catalog)

    def test_insert_remove_lockstep(self, raw_catalog):
        indexes = CatalogIndexes()
        feature = next(iter(raw_catalog))
        indexes.insert(feature)
        assert len(indexes) == 1
        indexes.remove(feature.dataset_id)
        assert len(indexes) == 0

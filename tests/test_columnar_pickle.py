"""ColumnarSnapshot pickling: the snapshot-shipping wire format.

Worker processes (serve/procpool.py) receive the frozen view by pickle;
these tests pin that the round trip is lossless on every column, that
scoring over an unpickled view is bit-identical, and that the payload
for a catalog-scale freeze stays within a size/time budget (``row_of``
is rebuilt on unpickle, not serialized).
"""

from __future__ import annotations

import pickle
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.columnar import ColumnarScorer, ColumnarSnapshot
from repro.core.query import Query, VariableTerm
from repro.core.scoring import QueryScorer
from repro.geo import BoundingBox, TimeInterval

VARIABLE_POOL = [
    "water_temperature",
    "salinity",
    "dissolved_oxygen",
    "chlorophyll",
]

finite_lat = st.floats(
    min_value=42.0, max_value=49.0, allow_nan=False, allow_infinity=False
)
finite_lon = st.floats(
    min_value=-127.0, max_value=-121.0,
    allow_nan=False, allow_infinity=False,
)


@st.composite
def features(draw, index: int):
    lat = draw(finite_lat)
    lon = draw(finite_lon)
    start = draw(st.floats(min_value=0.0, max_value=1e7))
    names = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    return DatasetFeature(
        dataset_id=f"ds_{index:04d}",
        title=f"dataset {index}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(
            lat, lon, lat + draw(st.floats(0.0, 0.5)),
            lon + draw(st.floats(0.0, 0.5)),
        ),
        interval=TimeInterval(start, start + draw(st.floats(0.0, 1e6))),
        row_count=draw(st.integers(1, 500)),
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, 0.0, 30.0, 15.0, 5.0)
            for name in names
        ],
    )


@st.composite
def snapshots(draw):
    count = draw(st.integers(min_value=0, max_value=30))
    feats = [draw(features(index)) for index in range(count)]
    return ColumnarSnapshot(feats, version=draw(st.integers(1, 99)))


COLUMN_SLOTS = [
    "version", "ids", "row_of",
    "min_lat", "min_lon", "max_lat", "max_lon",
    "t_start", "t_end",
    "var_offsets", "var_name_ids", "var_counts", "var_mins", "var_maxs",
    "names",
]


@given(view=snapshots())
@settings(max_examples=30, deadline=None)
def test_pickle_roundtrip_equal_on_every_column(view):
    clone = pickle.loads(pickle.dumps(view))
    assert len(clone) == len(view)
    for slot in COLUMN_SLOTS:
        assert getattr(clone, slot) == getattr(view, slot), slot


@given(view=snapshots())
@settings(max_examples=15, deadline=None)
def test_pickle_roundtrip_scores_identically(view):
    clone = pickle.loads(pickle.dumps(view))
    query = Query(
        variables=(
            VariableTerm(name="salinity"),
            VariableTerm(name="water_temperature"),
        )
    )
    original = ColumnarScorer(QueryScorer(query), view)
    unpickled = ColumnarScorer(QueryScorer(query), clone)
    for row in range(len(view)):
        assert unpickled.score_row(row) == original.score_row(row)


def _synthetic_features(n: int) -> list[DatasetFeature]:
    names = VARIABLE_POOL
    return [
        DatasetFeature(
            dataset_id=f"ds_{i:05d}",
            title=f"dataset {i}",
            platform="station",
            file_format="csv",
            bbox=BoundingBox(
                42.0 + (i % 70) * 0.1, -127.0 + (i % 60) * 0.1,
                42.5 + (i % 70) * 0.1, -126.5 + (i % 60) * 0.1,
            ),
            interval=TimeInterval(i * 1e4, i * 1e4 + 5e4),
            row_count=100,
            source_directory="",
            variables=[
                VariableEntry.from_written(
                    names[(i + j) % len(names)], "u", 10,
                    0.0, 30.0, 15.0, 5.0,
                )
                for j in range(1 + i % 3)
            ],
        )
        for i in range(n)
    ]


def test_5k_freeze_pickle_budget():
    """The shipping cost that bounds refresh latency at catalog scale.

    5k datasets must pickle + unpickle inside a small, stable budget:
    flat array columns serialize as single bytes blobs, and the derived
    ``row_of`` dict must NOT be on the wire at all.
    """
    view = ColumnarSnapshot(_synthetic_features(5000), version=1)
    started = time.monotonic()
    blob = pickle.dumps(view, protocol=pickle.HIGHEST_PROTOCOL)
    clone = pickle.loads(blob)
    elapsed = time.monotonic() - started
    # ~65 bytes/row of numeric columns + the id strings; 2 MB leaves
    # headroom without letting per-row object pickling sneak back in.
    assert len(blob) < 2_000_000, f"payload too large: {len(blob)} bytes"
    assert elapsed < 2.0, f"round trip too slow: {elapsed:.3f}s"
    assert b"row_of" not in blob
    assert clone.row_of == view.row_of
    assert clone.ids == view.ids
    assert clone.var_offsets == view.var_offsets


def test_row_of_rebuilt_consistently():
    view = ColumnarSnapshot(_synthetic_features(50), version=3)
    clone = pickle.loads(pickle.dumps(view))
    for dataset_id, row in view.row_of.items():
        assert clone.row_of[dataset_id] == row
        assert clone.ids[row] == dataset_id


def test_catalog_snapshot_columnar_is_picklable():
    # The serving layer ships the *snapshot's* cached freeze.
    catalog = MemoryCatalog()
    catalog.upsert_many(_synthetic_features(20))
    view = catalog.snapshot().columnar()
    clone = pickle.loads(pickle.dumps(view))
    assert clone.version == view.version
    assert clone.ids == view.ids

"""Unit tests for repro.core.metrics."""

import pytest

from repro.core import (
    average_precision,
    dcg_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)

RANKING = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_precision_perfect(self):
        assert precision_at_k(RANKING, {"a", "b", "c"}, 3) == 1.0

    def test_precision_half(self):
        assert precision_at_k(RANKING, {"a", "c"}, 4) == 0.5

    def test_precision_empty_ranking(self):
        assert precision_at_k([], {"a"}, 5) == 0.0

    def test_precision_bad_k(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKING, {"a"}, 0)

    def test_recall(self):
        assert recall_at_k(RANKING, {"a", "z"}, 5) == 0.5

    def test_recall_nothing_relevant(self):
        assert recall_at_k(RANKING, set(), 5) == 1.0

    def test_recall_all_found(self):
        assert recall_at_k(RANKING, {"a", "e"}, 5) == 1.0


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_interleaved(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2
        ap = average_precision(["a", "x", "b"], {"a", "b"})
        assert ap == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_nothing_relevant(self):
        assert average_precision(RANKING, set()) == 1.0

    def test_missing_relevant_penalized(self):
        assert average_precision(["x"], {"a"}) == 0.0


class TestNdcg:
    def test_perfect_order(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], relevance, 3) == pytest.approx(1.0)

    def test_reversed_order_lower(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], relevance, 3) < 1.0

    def test_in_unit_interval(self):
        relevance = {"a": 1.0, "q": 3.0}
        value = ndcg_at_k(RANKING, relevance, 5)
        assert 0.0 <= value <= 1.0

    def test_no_relevance_is_one(self):
        assert ndcg_at_k(RANKING, {}, 5) == 1.0

    def test_dcg_bad_k(self):
        with pytest.raises(ValueError):
            dcg_at_k(RANKING, {}, 0)

    def test_graded_beats_binary_placement(self):
        relevance = {"a": 3.0, "b": 1.0}
        good = ndcg_at_k(["a", "b"], relevance, 2)
        bad = ndcg_at_k(["b", "a"], relevance, 2)
        assert good > bad

"""Unit tests for repro.archive.observations."""

import math

import pytest

from repro.archive import (
    ColumnStats,
    InconsistentLengthError,
    ObservationColumn,
    ObservationTable,
)


class TestColumnStats:
    def test_basic_statistics(self):
        stats = ColumnStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.mean == pytest.approx(2.5)
        assert stats.stddev == pytest.approx(math.sqrt(1.25))

    def test_nan_values_ignored(self):
        stats = ColumnStats.from_values([1.0, float("nan"), 3.0])
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            ColumnStats.from_values([float("nan"), float("nan")])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ColumnStats.from_values([])

    def test_single_value(self):
        stats = ColumnStats.from_values([5.0])
        assert stats.stddev == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_overlaps_range(self):
        stats = ColumnStats.from_values([5.0, 10.0])
        assert stats.overlaps_range(8.0, 20.0)
        assert stats.overlaps_range(0.0, 5.0)  # touching
        assert not stats.overlaps_range(11.0, 20.0)


class TestObservationTable:
    def _table(self):
        return ObservationTable(
            times=[0.0, 60.0, 120.0],
            lats=[46.1] * 3,
            lons=[-123.9] * 3,
            columns=[
                ObservationColumn("salinity", "PSU", [10.0, 11.0, 12.0]),
                ObservationColumn("depth", "m", [1.0, 2.0, 3.0]),
            ],
        )

    def test_row_count(self):
        assert self._table().row_count == 3

    def test_mismatched_coordinate_lengths_raise(self):
        with pytest.raises(InconsistentLengthError):
            ObservationTable(
                times=[0.0, 1.0], lats=[46.0], lons=[-124.0, -124.0],
                columns=[],
            )

    def test_mismatched_column_length_raises(self):
        with pytest.raises(InconsistentLengthError):
            ObservationTable(
                times=[0.0, 1.0],
                lats=[46.0, 46.0],
                lons=[-124.0, -124.0],
                columns=[ObservationColumn("x", "m", [1.0])],
            )

    def test_column_named(self):
        table = self._table()
        assert table.column_named("depth").unit == "m"

    def test_column_named_missing_raises(self):
        with pytest.raises(KeyError):
            self._table().column_named("nope")

    def test_column_names_in_order(self):
        assert self._table().column_names() == ["salinity", "depth"]

    def test_column_stats(self):
        stats = self._table().column_named("salinity").stats()
        assert stats.minimum == 10.0
        assert stats.maximum == 12.0

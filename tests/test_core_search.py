"""Unit tests for repro.core.search (ranked engine + boolean baseline)."""

import pytest

from repro.catalog import DatasetFeature, MemoryCatalog, VariableEntry
from repro.core import (
    BooleanSearchEngine,
    Query,
    ScoringConfig,
    SearchEngine,
    VariableTerm,
)
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.hierarchy import vocabulary_hierarchy


def feature(dataset_id, lat, lon, t0, t1, variables):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=dataset_id,
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat, lon),
        interval=TimeInterval(t0, t1),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written(name, "u", 10, lo, hi, (lo + hi) / 2,
                                       1.0)
            for name, lo, hi in variables
        ],
    )


@pytest.fixture()
def catalog():
    cat = MemoryCatalog()
    cat.upsert(feature("near_now_temp", 45.5, -124.4, 0, 1000,
                       [("water_temperature", 5, 10)]))
    cat.upsert(feature("near_now_salt", 45.5, -124.4, 0, 1000,
                       [("salinity", 0, 30)]))
    cat.upsert(feature("far_now_temp", 48.0, -124.4, 0, 1000,
                       [("water_temperature", 5, 10)]))
    cat.upsert(feature("near_then_temp", 45.5, -124.4, 10_000_000,
                       11_000_000, [("water_temperature", 5, 10)]))
    return cat


@pytest.fixture()
def engine(catalog):
    return SearchEngine(catalog, hierarchy=vocabulary_hierarchy())


def paper_query():
    return Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval(0, 1000),
        variables=(VariableTerm("water_temperature", low=5, high=10),),
    )


class TestRankedSearch:
    def test_best_match_first(self, engine):
        results = engine.search(paper_query())
        assert results[0].dataset_id == "near_now_temp"
        assert results[0].score == pytest.approx(1.0)

    def test_partial_matches_included_and_ordered(self, engine):
        results = engine.search(paper_query(), limit=10)
        ids = [r.dataset_id for r in results]
        assert set(ids) == {
            "near_now_temp", "near_now_salt", "far_now_temp",
            "near_then_temp",
        }
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, engine):
        assert len(engine.search(paper_query(), limit=2)) == 2

    def test_bad_limit_raises(self, engine):
        with pytest.raises(ValueError):
            engine.search(paper_query(), limit=0)

    def test_deterministic_tie_break(self, engine):
        results = engine.search(Query(), limit=10)
        ids = [r.dataset_id for r in results]
        assert ids == sorted(ids)

    def test_empty_query_matches_all(self, engine):
        assert len(engine.search(Query(), limit=10)) == 4

    def test_score_all(self, engine):
        scores = engine.score_all(paper_query())
        assert len(scores) == 4
        assert scores["near_now_temp"] > scores["near_then_temp"]


class TestIndexedSearch:
    def test_indexed_matches_unindexed(self, catalog):
        plain = SearchEngine(catalog, hierarchy=vocabulary_hierarchy())
        indexed = SearchEngine(catalog, hierarchy=vocabulary_hierarchy())
        indexed.build_indexes()
        query = paper_query()
        plain_ids = [r.dataset_id for r in plain.search(query, limit=10)]
        indexed_ids = [r.dataset_id for r in indexed.search(query, limit=10)]
        assert plain_ids == indexed_ids

    def test_stale_index_falls_back_to_scan(self, catalog):
        engine = SearchEngine(catalog, hierarchy=vocabulary_hierarchy())
        engine.build_indexes()
        catalog.upsert(feature("new_ds", 45.5, -124.4, 0, 1000,
                               [("water_temperature", 5, 10)]))
        ids = {r.dataset_id for r in engine.search(paper_query(), limit=10)}
        assert "new_ds" in ids

    def test_epsilon_validation(self, catalog):
        with pytest.raises(ValueError):
            SearchEngine(catalog, epsilon=0.0)

    def test_spatial_only_query_uses_index(self, catalog):
        engine = SearchEngine(catalog)
        engine.build_indexes()
        results = engine.search(
            Query(location=GeoPoint(45.5, -124.4)), limit=10
        )
        assert results[0].score == pytest.approx(1.0)


class TestBooleanBaseline:
    def test_full_match_found(self, catalog):
        baseline = BooleanSearchEngine(catalog)
        hits = baseline.search(paper_query(), limit=10)
        assert [h.dataset_id for h in hits] == ["near_now_temp"]

    def test_no_partial_credit(self, catalog):
        # Shift the query range outside every dataset: boolean finds
        # nothing, ranked search still returns ordered results.
        query = Query(
            location=GeoPoint(45.5, -124.4),
            interval=TimeInterval(0, 1000),
            variables=(VariableTerm("water_temperature", low=20, high=25),),
        )
        baseline = BooleanSearchEngine(catalog)
        assert baseline.search(query, limit=10) == []
        ranked = SearchEngine(catalog).search(query, limit=10)
        assert ranked

    def test_radius_matters(self, catalog):
        baseline = BooleanSearchEngine(catalog)
        narrow = Query(location=GeoPoint(45.5, -124.4), radius_km=1.0)
        wide = Query(location=GeoPoint(45.5, -124.4), radius_km=1000.0)
        assert len(baseline.search(narrow, limit=10)) == 3
        assert len(baseline.search(wide, limit=10)) == 4

    def test_hierarchy_expansion_supported(self, catalog):
        catalog.upsert(feature("fluor", 45.5, -124.4, 0, 1000,
                               [("fluorescence_375nm", 0, 5)]))
        baseline = BooleanSearchEngine(
            catalog, hierarchy=vocabulary_hierarchy()
        )
        hits = baseline.search(
            Query(variables=(VariableTerm("fluorescence"),)), limit=10
        )
        assert [h.dataset_id for h in hits] == ["fluor"]

    def test_region_filter(self, catalog):
        baseline = BooleanSearchEngine(catalog)
        hits = baseline.search(
            Query(region=BoundingBox(45.0, -125.0, 46.0, -124.0)), limit=10
        )
        assert {h.dataset_id for h in hits} == {
            "near_now_temp", "near_now_salt", "near_then_temp",
        }

    def test_bad_limit_raises(self, catalog):
        with pytest.raises(ValueError):
            BooleanSearchEngine(catalog).search(Query(), limit=0)


class TestResultsMetadataPreservation:
    """Regression: slicing/copying a page used to silently drop
    ``total_matches``/``truncated`` (plain-list fallback)."""

    def _page(self):
        from repro.core.search import SearchResult, SearchResults

        items = [
            SearchResult(
                dataset_id=f"d{i}",
                score=1.0 - i / 10.0,
                breakdown={},
                feature=feature(f"d{i}", 45.0, -124.0, 0, 1000,
                                [("water_temperature", 5, 10)]),
            )
            for i in range(5)
        ]
        return SearchResults(items, total_matches=42, truncated=True)

    def test_slice_preserves_metadata(self):
        from repro.core.search import SearchResults

        page = self._page()
        head = page[:3]
        assert isinstance(head, SearchResults)
        assert head.total_matches == 42
        assert head.truncated is True
        assert [r.dataset_id for r in head] == ["d0", "d1", "d2"]

    def test_slice_rederives_truncated_for_narrower_page(self):
        from repro.core.search import SearchResult, SearchResults

        full = SearchResults(
            [SearchResult(dataset_id=f"d{i}", score=1.0, breakdown={},
                          feature=feature(f"d{i}", 45.0, -124.0, 0, 1000,
                                          [("water_temperature", 5, 10)]))
             for i in range(4)],
            total_matches=4,
            truncated=False,
        )
        head = full[:2]
        assert head.total_matches == 4
        assert head.truncated is True  # 4 known matches, 2 shown

    def test_integer_index_returns_item(self):
        page = self._page()
        assert page[0].dataset_id == "d0"
        assert page[-1].dataset_id == "d4"

    def test_copy_preserves_metadata(self):
        from repro.core.search import SearchResults

        page = self._page()
        duplicate = page.copy()
        assert isinstance(duplicate, SearchResults)
        assert duplicate.total_matches == 42
        assert duplicate.truncated is True
        assert list(duplicate) == list(page)

    def test_concat_falls_back_to_plain_list(self):
        # Pinned: ``+`` has no meaningful combined total_matches, so it
        # deliberately degrades to list.  If this ever changes, the new
        # semantics must define the metadata merge explicitly.
        from repro.core.search import SearchResults

        combined = self._page() + self._page()
        assert type(combined) is list
        assert not isinstance(combined, SearchResults)
        assert len(combined) == 10

    def test_engine_page_slices_keep_match_count(self, catalog):
        # A non-full page carries the exact match count; slicing it must
        # keep that count and mark the narrower page truncated.
        engine = SearchEngine(catalog, cache=False)
        results = engine.search(
            Query(variables=(VariableTerm("water_temperature"),)), limit=10
        )
        assert results.total_matches == len(results) >= 2
        assert not results.truncated
        head = results[:1]
        assert head.total_matches == results.total_matches
        assert head.truncated

"""Unit tests for repro.curator.session."""

import pytest

from repro.curator import AddSynonym, CuratorSession
from repro.wrangling import ProcessChain, Publish, ScanArchive


@pytest.fixture()
def session(messy_fs):
    fs, __ = messy_fs
    return CuratorSession(fs)


class TestActivities:
    def test_run_records_iteration(self, session):
        record = session.run()
        assert record.iteration == 1
        assert record.run_report.total_changes > 0
        assert session.iterations == [record]

    def test_compose_replaces_chain(self, session):
        session.compose(ProcessChain(components=[ScanArchive(), Publish()]))
        record = session.run()
        assert len(record.run_report.component_reports) == 2

    def test_improve_logs_actions(self, session):
        session.run()
        messages = session.improve(
            [AddSynonym("salinity", "salznity")]
        )
        assert len(messages) == 1
        assert session.action_log == messages
        assert session.iterations[-1].actions_applied == messages

    def test_validate_standalone(self, session):
        session.run()
        report = session.validate()
        assert report.checks_run > 0

    def test_failure_history(self, session):
        session.run()
        session.run()
        assert len(session.failure_history) == 2


class TestInspection:
    def test_unresolved_names_drop_after_run(self, session):
        session.run()
        unresolved = session.unresolved_names()
        # After a full chain run only the genuinely hard names remain.
        assert all(name == "temp" or name for name in unresolved)

    def test_ambiguous_findings(self, session):
        session.run()
        findings = session.ambiguous_findings()
        for finding in findings:
            assert finding.candidates

    def test_uncovered_written_names(self, session):
        session.run()
        uncovered = session.uncovered_written_names()
        table = session.state.resolver.synonyms
        for written, __ in uncovered:
            assert not table.contains(written)

"""Unit tests for repro.archive.formats (CSV / CDL round-trips)."""

import math

import pytest

from repro.archive import (
    Dataset,
    FileFormat,
    FormatError,
    ObservationColumn,
    ObservationTable,
    Platform,
    parse_cdl,
    parse_csv,
    parse_file,
    write_cdl,
    write_csv,
    write_dataset,
)


def make_dataset(fmt: FileFormat, with_nan: bool = False) -> Dataset:
    values = [10.5, float("nan") if with_nan else 11.0, 12.25]
    return Dataset(
        path=f"test/sample.{fmt.value}",
        platform=Platform.STATION,
        file_format=fmt,
        attributes={"title": "Test dataset", "platform": "station",
                    "station": "saturn01"},
        table=ObservationTable(
            times=[0.0, 900.0, 1800.0],
            lats=[46.1, 46.1, 46.1],
            lons=[-123.9, -123.9, -123.9],
            columns=[
                ObservationColumn("salinity", "PSU", values),
                ObservationColumn("depth", "m", [1.0, 2.0, 3.0]),
            ],
        ),
    )


class TestCsvRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = make_dataset(FileFormat.CSV)
        parsed = parse_csv(write_csv(original), path=original.path)
        assert parsed.attributes == original.attributes
        assert parsed.variable_names() == original.variable_names()
        assert parsed.table.times == original.table.times
        assert parsed.table.columns[0].values == (
            original.table.columns[0].values
        )
        assert parsed.table.columns[0].unit == "PSU"
        assert parsed.platform is Platform.STATION

    def test_nan_roundtrip(self):
        original = make_dataset(FileFormat.CSV, with_nan=True)
        parsed = parse_csv(write_csv(original))
        assert math.isnan(parsed.table.columns[0].values[1])

    def test_header_comment_block(self):
        text = write_csv(make_dataset(FileFormat.CSV))
        assert text.startswith("# title: Test dataset")

    def test_missing_header_raises(self):
        with pytest.raises(FormatError):
            parse_csv("# title: x\n")

    def test_ragged_row_raises(self):
        text = (
            "time [s],latitude [degrees],longitude [degrees],x [m]\n"
            "0,46,-123\n"
        )
        with pytest.raises(FormatError):
            parse_csv(text)

    def test_non_numeric_cell_raises(self):
        text = (
            "time [s],latitude [degrees],longitude [degrees],x [m]\n"
            "0,46,-123,abc\n"
        )
        with pytest.raises(FormatError):
            parse_csv(text)

    def test_unitless_column(self):
        original = make_dataset(FileFormat.CSV)
        original.table.columns[0].unit = ""
        parsed = parse_csv(write_csv(original))
        assert parsed.table.columns[0].unit == ""


class TestCdlRoundTrip:
    def test_roundtrip_preserves_everything(self):
        original = make_dataset(FileFormat.CDL)
        parsed = parse_cdl(write_cdl(original), path=original.path)
        assert parsed.attributes == original.attributes
        assert parsed.variable_names() == original.variable_names()
        assert parsed.table.lats == original.table.lats
        assert parsed.table.columns[1].values == [1.0, 2.0, 3.0]
        assert parsed.table.columns[0].unit == "PSU"

    def test_missing_coordinate_raises(self):
        text = "netcdf x {\ndata:\n time = 1 ;\n}"
        with pytest.raises(FormatError):
            parse_cdl(text)

    def test_header_contains_dimensions(self):
        text = write_cdl(make_dataset(FileFormat.CDL))
        assert "row = 3 ;" in text
        assert 'salinity:units = "PSU"' in text


class TestDispatch:
    def test_write_dataset_dispatches(self):
        assert write_dataset(make_dataset(FileFormat.CSV)).startswith("#")
        assert write_dataset(make_dataset(FileFormat.CDL)).startswith(
            "netcdf"
        )

    def test_parse_file_by_extension(self):
        csv_ds = make_dataset(FileFormat.CSV)
        parsed = parse_file(write_csv(csv_ds), "a/b.csv")
        assert parsed.path == "a/b.csv"
        cdl_ds = make_dataset(FileFormat.CDL)
        parsed = parse_file(write_cdl(cdl_ds), "a/b.cdl")
        assert parsed.file_format is FileFormat.CDL

    def test_unknown_extension_raises(self):
        with pytest.raises(FormatError):
            parse_file("whatever", "a/b.xyz")


class TestGeneratedArchiveRoundTrip:
    def test_every_generated_dataset_roundtrips(self, clean_archive):
        for original in clean_archive.datasets:
            text = write_dataset(original)
            parsed = parse_file(text, original.path)
            assert parsed.variable_names() == original.variable_names()
            assert parsed.table.row_count == original.table.row_count
            assert parsed.platform == original.platform

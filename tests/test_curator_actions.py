"""Unit tests for repro.curator.actions."""

import pytest

from repro.curator import (
    AddAbbreviation,
    AddContextRule,
    AddExclusionPattern,
    AddScanTarget,
    AddSynonym,
    CuratorActionError,
    DecideAmbiguity,
    MoveHierarchyNode,
)
from repro.semantics import AmbiguityAction
from repro.wrangling import (
    GenerateHierarchies,
    ScanArchive,
    WranglingState,
    default_chain,
)


@pytest.fixture()
def setup(messy_fs):
    fs, __ = messy_fs
    state = WranglingState(fs=fs)
    chain = default_chain()
    return chain, state


class TestKnowledgeActions:
    def test_add_synonym(self, setup):
        chain, state = setup
        message = AddSynonym("salinity", "salznity").apply(chain, state)
        assert state.resolver.synonyms.resolve("salznity") == "salinity"
        assert "salznity" in message

    def test_add_abbreviation_syncs_synonyms(self, setup):
        chain, state = setup
        AddAbbreviation("XYZ", "turbidity").apply(chain, state)
        assert state.resolver.abbreviations.expand("XYZ") == "turbidity"
        # Synonym-coverage validation must also see it.
        assert state.resolver.synonyms.contains("XYZ")

    def test_add_context_rule(self, setup):
        chain, state = setup
        AddContextRule("level", "water", "depth").apply(chain, state)
        assert state.resolver.context_rules.resolve("level", "water") == (
            "depth"
        )

    def test_add_exclusion_pattern(self, setup):
        chain, state = setup
        AddExclusionPattern("diagnostic").apply(chain, state)
        assert state.resolver.exclusion.is_auxiliary("diagnostic_x")


class TestProcessActions:
    def test_add_scan_target(self, setup):
        chain, state = setup
        scan = chain.component("scan-archive")
        before = len(scan.targets)
        AddScanTarget("extra_data", "*.csv").apply(chain, state)
        assert len(scan.targets) == before + 1

    def test_decide_ambiguity_records(self, setup):
        chain, state = setup
        DecideAmbiguity(
            "temp", AmbiguityAction.CLARIFY, canonical="water_temperature"
        ).apply(chain, state)
        assert len(state.decisions) == 1
        assert state.decisions[0].canonical == "water_temperature"

    def test_decide_hide(self, setup):
        chain, state = setup
        message = DecideAmbiguity("temp", AmbiguityAction.HIDE).apply(
            chain, state
        )
        assert "hide" in message


class TestHierarchyActions:
    def test_move_requires_hierarchy(self, setup):
        chain, state = setup
        with pytest.raises(CuratorActionError):
            MoveHierarchyNode("salinity", None).apply(chain, state)

    def test_move_reparents(self, setup):
        chain, state = setup
        ScanArchive().execute(state)
        GenerateHierarchies(prune_absent=False).execute(state)
        MoveHierarchyNode("chlorophyll", None).apply(chain, state)
        assert "chlorophyll" in state.hierarchy.roots()

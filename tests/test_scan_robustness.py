"""Robustness of the scan/publish pipeline under failure.

Covers the graceful-degradation paths one by one: the dataset-id ==
archive-path invariant that ``remove_missing`` relies on, FormatError
parity between serial and parallel scans, worker exceptions and dying
pools, the quarantine lifecycle, transient-read and store-busy
exhaustion (and the convergence of the next run), and the operator
surface (health report, quarantine report, CLI flag).
"""

from __future__ import annotations

import sqlite3
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.archive import VirtualArchive, parse_file
from repro.archive.flaky import FlakyArchive
from repro.archive.formats import FormatError
from repro.catalog import MemoryCatalog, dump_catalog
from repro.catalog.flaky import FlakyCatalogStore
from repro.cli import main
from repro.core import extract_feature
from repro.core.errors import ErrorCode, ErrorRecord
from repro.core.faults import FaultSchedule
from repro.core.retry import RetryPolicy
from repro.ui import render_health_report, render_quarantine_report
from repro.wrangling import QuarantineLog, WranglingState
from repro.wrangling.publish import Publish
from repro.wrangling.scan import ScanArchive

#: No pauses in tests; the budget (3 tries) is what matters.
FAST = RetryPolicy(attempts=3, base_delay=0.0)


def tiny_csv(station: str = "alpha", value: float = 10.0) -> str:
    return (
        "# platform: station\n"
        f"# title: Station {station}\n"
        "time [s],latitude [degrees],longitude [degrees],"
        "temperature [C]\n"
        f"100.0,46.1,-124.0,{value}\n"
        f"200.0,46.2,-124.1,{value + 1.0}\n"
    )


def make_fs(count: int = 4) -> VirtualArchive:
    fs = VirtualArchive()
    for i in range(count):
        fs.put(f"stations/s{i}.csv", tiny_csv(station=f"s{i}", value=float(i)))
    return fs


def make_scan(**overrides) -> ScanArchive:
    overrides.setdefault("workers", 1)
    overrides.setdefault("retry", FAST)
    return ScanArchive(**overrides)


class _InlinePool:
    """A 'pool' that runs submissions in-process (monkeypatch target).

    Lets tests drive the parallel code path deterministically — chunking,
    future collection, ordering — while staying in one process so
    monkeypatched module globals still apply inside 'workers'.
    """

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        future = Future()
        try:
            future.set_result(fn(*args))
        except Exception as exc:  # pragma: no cover - stub safety
            future.set_exception(exc)
        return future


class _BrokenPool(_InlinePool):
    """Every future dies the way a crashed worker pool's futures die."""

    def submit(self, fn, *args):
        future = Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future


# --------------------------------------------------------------------------
# dataset_id == archive path (the remove_missing invariant)
# --------------------------------------------------------------------------


class TestDatasetIdIsArchivePath:
    """``remove_missing`` compares catalog ids against listed *paths*;
    that is only sound because extraction pins id = path.  These tests
    pin the invariant so a future id scheme cannot silently break
    vanished-dataset removal."""

    def test_extract_feature_uses_the_archive_path_as_id(self):
        dataset = parse_file(tiny_csv(), "stations/s0.csv")
        feature = extract_feature(dataset, content_hash="h")
        assert feature.dataset_id == "stations/s0.csv"

    def test_every_scanned_id_is_a_live_archive_path(self):
        fs = make_fs(4)
        state = WranglingState(fs=fs)
        make_scan().execute(state)
        ids = state.working.dataset_ids()
        assert len(ids) == 4
        assert all(fs.exists(dataset_id) for dataset_id in ids)

    def test_remove_missing_drops_exactly_the_vanished_path(self):
        fs = make_fs(3)
        state = WranglingState(fs=fs)
        make_scan().execute(state)
        fs.remove("stations/s1.csv")
        report = make_scan().execute(state)
        assert state.working.dataset_ids() == [
            "stations/s0.csv",
            "stations/s2.csv",
        ]
        assert "stations/s1.csv" not in state.scanned_hashes
        assert any("removed vanished" in m for m in report.messages)

    def test_remove_missing_disabled_keeps_vanished(self):
        fs = make_fs(2)
        state = WranglingState(fs=fs)
        make_scan().execute(state)
        fs.remove("stations/s0.csv")
        make_scan(remove_missing=False).execute(state)
        assert len(state.working.dataset_ids()) == 2


# --------------------------------------------------------------------------
# FormatError parity and per-file worker failures
# --------------------------------------------------------------------------


class TestPerFileFailures:
    def _failing_extract(self, bad_path, exc):
        from repro.wrangling import scan as scan_module

        real = scan_module.extract_feature

        def extract(dataset, content_hash=""):
            if dataset.path == bad_path:
                raise exc
            return real(dataset, content_hash=content_hash)

        return extract

    def test_format_error_raised_in_extract_quarantines_as_parse(
        self, monkeypatch
    ):
        from repro.wrangling import scan as scan_module

        monkeypatch.setattr(
            scan_module,
            "extract_feature",
            self._failing_extract(
                "stations/s1.csv", FormatError("cannot summarize")
            ),
        )
        state = WranglingState(fs=make_fs(3))
        report = make_scan().execute(state)
        assert "stations/s1.csv" in state.quarantine
        entry = state.quarantine.get("stations/s1.csv")
        assert entry.error.code is ErrorCode.PARSE
        assert any("parse error:" in m for m in report.messages)
        assert len(state.working) == 2

    def test_parallel_chunk_reports_exactly_what_serial_reports(
        self, monkeypatch
    ):
        from repro.wrangling import scan as scan_module

        monkeypatch.setattr(
            scan_module,
            "extract_feature",
            self._failing_extract(
                "stations/s2.csv", FormatError("cannot summarize")
            ),
        )
        serial_state = WranglingState(fs=make_fs(4))
        serial = make_scan().execute(serial_state)

        monkeypatch.setattr(scan_module, "ProcessPoolExecutor", _InlinePool)
        parallel_state = WranglingState(fs=make_fs(4))
        parallel = make_scan(workers=4, min_parallel_files=1).execute(
            parallel_state
        )

        assert parallel.errors == serial.errors
        assert parallel.messages == serial.messages
        assert (
            parallel_state.quarantine.paths()
            == serial_state.quarantine.paths()
        )
        assert dump_catalog(parallel_state.working) == dump_catalog(
            serial_state.working
        )

    def test_worker_exception_quarantines_as_worker_error(self, monkeypatch):
        from repro.wrangling import scan as scan_module

        monkeypatch.setattr(
            scan_module,
            "extract_feature",
            self._failing_extract(
                "stations/s0.csv", RuntimeError("extractor bug")
            ),
        )
        state = WranglingState(fs=make_fs(3))
        report = make_scan().execute(state)
        entry = state.quarantine.get("stations/s0.csv")
        assert entry is not None
        assert entry.error.code is ErrorCode.WORKER_ERROR
        assert "extractor bug" in entry.error.message
        assert len(state.working) == 2
        assert report.changes == 2


# --------------------------------------------------------------------------
# Dying pools degrade to serial, never abort
# --------------------------------------------------------------------------


class TestBrokenPoolFallback:
    def test_broken_futures_recompute_serially(self, monkeypatch):
        from repro.wrangling import scan as scan_module

        serial_state = WranglingState(fs=make_fs(4))
        make_scan().execute(serial_state)

        monkeypatch.setattr(scan_module, "ProcessPoolExecutor", _BrokenPool)
        state = WranglingState(fs=make_fs(4))
        report = make_scan(workers=4, min_parallel_files=1).execute(state)

        assert dump_catalog(state.working) == dump_catalog(
            serial_state.working
        )
        assert len(state.quarantine) == 0
        crashes = report.errors_by_code(ErrorCode.WORKER_CRASH)
        assert len(crashes) == 1
        assert "recomputed serially" in crashes[0].message

    def test_pool_constructor_failure_scans_serially(self, monkeypatch):
        from repro.wrangling import scan as scan_module

        def refuse(max_workers=None):
            raise OSError("no more processes")

        monkeypatch.setattr(scan_module, "ProcessPoolExecutor", refuse)
        state = WranglingState(fs=make_fs(4))
        report = make_scan(workers=4, min_parallel_files=1).execute(state)
        assert len(state.working) == 4
        crashes = report.errors_by_code(ErrorCode.WORKER_CRASH)
        assert len(crashes) == 1
        assert "scanning serially" in crashes[0].message


# --------------------------------------------------------------------------
# Quarantine lifecycle
# --------------------------------------------------------------------------


class TestQuarantineLifecycle:
    def test_failures_accumulate_until_repair_resolves(self):
        fs = make_fs(2)
        fs.put("stations/bad.csv", "this is not a csv\n")
        state = WranglingState(fs=fs)

        make_scan().execute(state)
        entry = state.quarantine.get("stations/bad.csv")
        assert entry is not None and entry.failures == 1
        assert entry.error.code is ErrorCode.PARSE

        # Quarantined paths are never hash-skipped: the next wrangle
        # retries (and fails) again.
        report = make_scan().execute(state)
        assert state.quarantine.get("stations/bad.csv").failures == 2
        assert report.items_skipped == 2  # only the two good files

        fs.put("stations/bad.csv", tiny_csv(station="bad", value=5.0))
        make_scan().execute(state)
        assert "stations/bad.csv" not in state.quarantine
        assert state.quarantine.resolved_total == 1
        assert "stations/bad.csv" in state.working.dataset_ids()

    def test_vanished_quarantined_file_resolves(self):
        fs = make_fs(1)
        fs.put("stations/bad.csv", "garbage\n")
        state = WranglingState(fs=fs)
        make_scan().execute(state)
        assert "stations/bad.csv" in state.quarantine

        fs.remove("stations/bad.csv")
        make_scan().execute(state)
        assert "stations/bad.csv" not in state.quarantine
        assert state.quarantine.resolved_total == 1

    def test_quarantine_summary_message(self):
        fs = make_fs(1)
        fs.put("stations/bad.csv", "garbage\n")
        state = WranglingState(fs=fs)
        report = make_scan().execute(state)
        assert any("1 files quarantined" in m for m in report.messages)


# --------------------------------------------------------------------------
# Transient archive reads
# --------------------------------------------------------------------------


class TestTransientReads:
    def test_faults_below_budget_are_absorbed(self):
        flaky = FlakyArchive(
            make_fs(3),
            FaultSchedule(
                seed=5, rate=1.0, max_consecutive=2, ops=frozenset({"read"})
            ),
        )
        state = WranglingState(fs=flaky)
        report = make_scan().execute(state)
        assert len(state.quarantine) == 0
        assert len(state.working) == 3
        assert report.errors == []
        assert report.retries == 6  # two absorbed faults per file

    def test_exhausted_budget_quarantines_then_recovers(self):
        flaky = FlakyArchive(
            make_fs(3),
            FaultSchedule(
                seed=5, rate=1.0, max_consecutive=10, ops=frozenset({"read"})
            ),
        )
        state = WranglingState(fs=flaky)
        report = make_scan().execute(state)
        assert len(state.working) == 0
        assert state.quarantine.paths() == [
            "stations/s0.csv",
            "stations/s1.csv",
            "stations/s2.csv",
        ]
        for path in state.quarantine.paths():
            entry = state.quarantine.get(path)
            assert entry.error.code is ErrorCode.TRANSIENT_READ
            assert entry.error.attempts == FAST.attempts
        assert len(report.errors_by_code(ErrorCode.TRANSIENT_READ)) == 3

        flaky.schedule.rate = 0.0
        make_scan().execute(state)
        assert len(state.quarantine) == 0
        assert state.quarantine.resolved_total == 3
        assert len(state.working) == 3

    def test_listing_exhaustion_degrades_to_noop(self):
        fs = make_fs(2)
        state = WranglingState(fs=fs)
        make_scan().execute(state)
        assert len(state.working) == 2

        state.fs = FlakyArchive(
            fs,
            FaultSchedule(
                seed=5, rate=1.0, max_consecutive=10, ops=frozenset({"list"})
            ),
        )
        report = make_scan().execute(state)
        # Without a listing there is no notion of "present": nothing is
        # removed, nothing scanned, the run reports and moves on.
        assert len(state.working) == 2
        assert any("scan skipped" in m for m in report.messages)
        assert len(report.errors_by_code(ErrorCode.TRANSIENT_READ)) == 1


# --------------------------------------------------------------------------
# Store busy: deferral and convergence
# --------------------------------------------------------------------------


class TestStoreBusy:
    def test_scan_defers_batch_and_converges_next_run(self):
        working = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=1, rate=1.0, max_consecutive=10),
        )
        state = WranglingState(fs=make_fs(3), working=working)
        report = make_scan().execute(state)
        assert len(report.errors_by_code(ErrorCode.STORE_BUSY)) == 1
        assert any("catalog write deferred" in m for m in report.messages)
        assert len(working) == 0
        # Hashes unrecorded: the whole batch is retried next run.
        assert state.scanned_hashes == {}

        working.schedule.rate = 0.0
        report = make_scan().execute(state)
        assert report.errors == []
        assert len(working) == 3
        assert report.changes == 3

    def test_scan_absorbs_busy_below_budget(self):
        working = FlakyCatalogStore(
            MemoryCatalog(),
            FaultSchedule(seed=1, rate=1.0, max_consecutive=2),
        )
        state = WranglingState(fs=make_fs(3), working=working)
        report = make_scan().execute(state)
        assert report.errors == []
        assert len(working) == 3
        assert report.retries == 2

    def test_publish_defers_and_converges_next_run(self):
        state = WranglingState(
            fs=make_fs(3),
            published=FlakyCatalogStore(
                MemoryCatalog(),
                FaultSchedule(seed=1, rate=1.0, max_consecutive=10),
            ),
        )
        make_scan().execute(state)
        publish = Publish(retry=FAST)
        report = publish.execute(state)
        assert len(report.errors_by_code(ErrorCode.STORE_BUSY)) == 1
        assert any("publish deferred" in m for m in report.messages)
        assert state.published_delta is None
        assert len(state.published) == 0

        state.published.schedule.rate = 0.0
        report = publish.execute(state)
        assert report.errors == []
        assert len(state.published) == 3
        assert sorted(state.published_delta.upserted) == sorted(
            state.working.dataset_ids()
        )

    def test_non_transient_store_error_propagates(self):
        class PoisonedCatalog(MemoryCatalog):
            def upsert_many(self, features):
                raise sqlite3.OperationalError("no such table: datasets")

        state = WranglingState(fs=make_fs(2), working=PoisonedCatalog())
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            make_scan().execute(state)


# --------------------------------------------------------------------------
# Operator surface: reports and CLI
# --------------------------------------------------------------------------


class TestOperatorSurface:
    def test_render_quarantine_report_empty(self):
        text = render_quarantine_report(QuarantineLog())
        assert "Quarantine report" in text
        assert "nothing quarantined" in text

    def test_render_quarantine_report_entries(self):
        log = QuarantineLog()
        error = ErrorRecord(
            code=ErrorCode.PARSE, message="bad header", path="a.csv"
        )
        log.add("a.csv", error)
        log.add("a.csv", error)
        text = render_quarantine_report(log)
        assert "a.csv" in text
        assert "parse-error" in text
        assert "failed 2x" in text
        assert "retried automatically" in text

    def test_health_report_quarantine_line(self):
        log = QuarantineLog()
        log.add(
            "a.csv",
            ErrorRecord(code=ErrorCode.PARSE, message="x", path="a.csv"),
        )
        log.resolved_total = 2
        text = render_health_report(MemoryCatalog(), quarantine=log)
        assert "quarantined files: 1 (2 resolved)" in text

    def test_cli_show_quarantine(self, tmp_path, capsys):
        archive = tmp_path / "archive"
        archive.mkdir()
        (archive / "good.csv").write_text(tiny_csv())
        (archive / "bad.csv").write_text("definitely not a csv\n")
        rc = main(
            [
                "wrangle",
                str(archive),
                "--catalog",
                str(tmp_path / "cat.db"),
                "--show-quarantine",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Quarantine report" in out
        assert "bad.csv" in out
        assert "parse-error" in out

    def test_cli_hint_without_flag(self, tmp_path, capsys):
        archive = tmp_path / "archive"
        archive.mkdir()
        (archive / "good.csv").write_text(tiny_csv())
        (archive / "bad.csv").write_text("definitely not a csv\n")
        rc = main(
            ["wrangle", str(archive), "--catalog", str(tmp_path / "cat.db")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 files set aside" in out
        assert "--show-quarantine for details" in out

    def test_cli_silent_when_clean(self, tmp_path, capsys):
        archive = tmp_path / "archive"
        archive.mkdir()
        (archive / "good.csv").write_text(tiny_csv())
        rc = main(
            ["wrangle", str(archive), "--catalog", str(tmp_path / "cat.db")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "quarantine" not in out.lower()

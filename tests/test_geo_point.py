"""Unit tests for repro.geo.point."""

import math

import pytest

from repro.geo import (
    EARTH_RADIUS_KM,
    GeoPoint,
    InvalidCoordinateError,
    haversine_km,
    normalize_longitude,
    validate_latitude,
    validate_longitude,
)


class TestValidation:
    def test_latitude_in_range_passes(self):
        assert validate_latitude(45.5) == 45.5

    def test_latitude_bounds_inclusive(self):
        assert validate_latitude(90.0) == 90.0
        assert validate_latitude(-90.0) == -90.0

    @pytest.mark.parametrize("lat", [90.01, -90.01, float("nan"), float("inf")])
    def test_latitude_out_of_range_raises(self, lat):
        with pytest.raises(InvalidCoordinateError):
            validate_latitude(lat)

    def test_longitude_bounds_inclusive(self):
        assert validate_longitude(180.0) == 180.0
        assert validate_longitude(-180.0) == -180.0

    @pytest.mark.parametrize("lon", [180.5, -181.0, float("nan")])
    def test_longitude_out_of_range_raises(self, lon):
        with pytest.raises(InvalidCoordinateError):
            validate_longitude(lon)


class TestNormalizeLongitude:
    @pytest.mark.parametrize(
        "given,expected",
        [(0.0, 0.0), (190.0, -170.0), (-190.0, 170.0), (360.0, 0.0),
         (540.0, -180.0), (-124.4, -124.4)],
    )
    def test_wrapping(self, given, expected):
        assert normalize_longitude(given) == pytest.approx(expected)

    def test_non_finite_raises(self):
        with pytest.raises(InvalidCoordinateError):
            normalize_longitude(float("inf"))


class TestGeoPoint:
    def test_construction_validates(self):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint(91.0, 0.0)

    def test_is_frozen(self):
        point = GeoPoint(45.5, -124.4)
        with pytest.raises(AttributeError):
            point.lat = 0.0

    def test_as_tuple(self):
        assert GeoPoint(45.5, -124.4).as_tuple() == (45.5, -124.4)

    def test_str_hemispheres(self):
        assert "N" in str(GeoPoint(45.5, -124.4))
        assert "W" in str(GeoPoint(45.5, -124.4))
        assert "S" in str(GeoPoint(-10.0, 20.0))
        assert "E" in str(GeoPoint(-10.0, 20.0))

    def test_equality_and_hash(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(45.5, -124.4, 45.5, -124.4) == 0.0

    def test_symmetry(self):
        d1 = haversine_km(45.5, -124.4, 46.2, -123.8)
        d2 = haversine_km(46.2, -123.8, 45.5, -124.4)
        assert d1 == pytest.approx(d2)

    def test_one_degree_latitude_is_about_111_km(self):
        assert haversine_km(45.0, 0.0, 46.0, 0.0) == pytest.approx(
            111.2, abs=0.5
        )

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_km(0.0, 0.0, 0.0, 1.0)
        at_60 = haversine_km(60.0, 0.0, 60.0, 1.0)
        assert at_60 == pytest.approx(at_equator * 0.5, rel=0.01)

    def test_antipodal_is_half_circumference(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_point_distance_method_matches_function(self):
        a = GeoPoint(45.5, -124.4)
        b = GeoPoint(46.2, -123.8)
        assert a.distance_km(b) == pytest.approx(
            haversine_km(45.5, -124.4, 46.2, -123.8)
        )

"""Unit tests for repro.archive.vocabulary."""

from repro.archive import (
    AMBIGUOUS_FORMS,
    UNIT_SYNONYMS,
    VOCABULARY,
    Context,
    auxiliary_variables,
    concept_children,
    preferred_unit,
    searchable_variables,
)


class TestVocabularyStructure:
    def test_keyed_by_name(self):
        for name, var in VOCABULARY.items():
            assert var.name == name

    def test_parents_exist(self):
        for var in VOCABULARY.values():
            if var.parent is not None:
                assert var.parent in VOCABULARY, var.name

    def test_no_self_parenting(self):
        for var in VOCABULARY.values():
            assert var.parent != var.name

    def test_units_are_preferred_spellings(self):
        for var in VOCABULARY.values():
            assert preferred_unit(var.unit) == var.unit, var.name

    def test_synonyms_do_not_shadow_canonicals(self):
        for var in VOCABULARY.values():
            for synonym in var.synonyms:
                assert synonym not in VOCABULARY, (var.name, synonym)

    def test_paper_examples_present(self):
        # The Table's concrete examples must exist in the vocabulary.
        assert "air_temperature" in VOCABULARY
        assert "qa_level" in VOCABULARY
        assert "MWHLA" in VOCABULARY["wave_height"].abbreviations
        assert "fluores375" in VOCABULARY["fluorescence_375nm"].synonyms

    def test_poster_mass_edit_example(self):
        # 'ATastn' -> sea surface temperature, verbatim from the figure.
        assert "ATastn" in VOCABULARY["sea_surface_temperature"].abbreviations


class TestPreferredUnit:
    def test_temperature_family(self):
        # The Table's synonyms row: C, degC, Centigrade.
        assert preferred_unit("C") == "degC"
        assert preferred_unit("Centigrade") == "degC"
        assert preferred_unit("degC") == "degC"

    def test_case_insensitive(self):
        assert preferred_unit("PSU") == preferred_unit("psu")

    def test_unknown_unchanged(self):
        assert preferred_unit("furlongs") == "furlongs"

    def test_empty_is_dimensionless(self):
        assert preferred_unit("") == "1"

    def test_every_family_maps_to_itself(self):
        for preferred, spellings in UNIT_SYNONYMS.items():
            for spelling in spellings:
                assert preferred_unit(spelling) == preferred


class TestPartitions:
    def test_searchable_excludes_auxiliary(self):
        names = {v.name for v in searchable_variables()}
        assert "qa_level" not in names
        assert "water_temperature" in names

    def test_searchable_excludes_abstract(self):
        names = {v.name for v in searchable_variables()}
        assert "temperature" not in names
        assert "fluorescence" not in names

    def test_auxiliary_all_flagged(self):
        for var in auxiliary_variables():
            assert var.auxiliary

    def test_partitions_disjoint(self):
        searchable = {v.name for v in searchable_variables()}
        auxiliary = {v.name for v in auxiliary_variables()}
        assert not searchable & auxiliary


class TestAmbiguousForms:
    def test_temp_includes_non_variable(self):
        # 'temp: temporary or temperature?' — None is the temporary case.
        assert None in AMBIGUOUS_FORMS["temp"]
        assert "water_temperature" in AMBIGUOUS_FORMS["temp"]

    def test_all_real_candidates_in_vocabulary(self):
        for form, candidates in AMBIGUOUS_FORMS.items():
            for candidate in candidates:
                if candidate is not None:
                    assert candidate in VOCABULARY, (form, candidate)


class TestConceptChildren:
    def test_fluorescence_children(self):
        children = concept_children("fluorescence")
        assert "fluorescence_375nm" in children
        assert "fluorescence_400nm" in children
        assert "chlorophyll" in children

    def test_leaf_has_no_children(self):
        assert concept_children("salinity") == []

"""Unit tests for repro.archive.generator."""

import pytest

from repro.archive import (
    PLATFORM_SUITES,
    VALUE_RANGES,
    VOCABULARY,
    ArchiveSpec,
    Platform,
    generate_archive,
    parse_station_registry,
    station_registry_text,
)


class TestSpec:
    def test_dataset_count(self):
        spec = ArchiveSpec(stations=2, cruises=3, casts=4, gliders=1,
                           met_stations=2)
        assert spec.dataset_count == 12


class TestDeterminism:
    def test_same_seed_same_archive(self):
        spec = ArchiveSpec(stations=2, cruises=1, casts=2, gliders=1,
                           met_stations=1, seed=5)
        a = generate_archive(spec)
        b = generate_archive(spec)
        assert [d.path for d in a.datasets] == [d.path for d in b.datasets]
        assert (
            a.datasets[0].table.columns[0].values
            == b.datasets[0].table.columns[0].values
        )

    def test_different_seed_differs(self):
        a = generate_archive(ArchiveSpec(seed=1))
        b = generate_archive(ArchiveSpec(seed=2))
        values_a = a.datasets[0].table.columns[0].values
        values_b = b.datasets[0].table.columns[0].values
        assert values_a != values_b


class TestGeneratedContent(object):
    def test_counts_match_spec(self, clean_archive):
        spec = clean_archive.spec
        assert len(clean_archive.datasets) == spec.dataset_count

    def test_all_platforms_present(self, clean_archive):
        platforms = {d.platform for d in clean_archive.datasets}
        assert platforms == set(Platform)

    def test_variables_from_platform_suites(self, clean_archive):
        for ds in clean_archive.datasets:
            core, optional = PLATFORM_SUITES[ds.platform]
            allowed = set(core) | set(optional)
            for name in ds.variable_names():
                assert name in allowed, (ds.path, name)

    def test_core_suite_always_present(self, clean_archive):
        for ds in clean_archive.datasets:
            core, __ = PLATFORM_SUITES[ds.platform]
            for name in core:
                assert name in ds.variable_names()

    def test_values_within_physical_ranges(self, clean_archive):
        for ds in clean_archive.datasets:
            for col in ds.table.columns:
                lo, hi = VALUE_RANGES[col.name]
                assert min(col.values) >= lo, (ds.path, col.name)
                assert max(col.values) <= hi, (ds.path, col.name)

    def test_units_match_vocabulary(self, clean_archive):
        for ds in clean_archive.datasets:
            for col in ds.table.columns:
                assert col.unit == VOCABULARY[col.name].unit

    def test_times_monotone(self, clean_archive):
        for ds in clean_archive.datasets:
            times = ds.table.times
            assert all(a <= b for a, b in zip(times, times[1:])), ds.path

    def test_cast_depth_monotone(self, clean_archive):
        for ds in clean_archive.datasets:
            if ds.platform is not Platform.CAST:
                continue
            for col in ds.table.columns:
                if col.name == "depth":
                    assert col.values == sorted(col.values)

    def test_station_positions_fixed(self, clean_archive):
        for ds in clean_archive.datasets:
            if ds.platform in (Platform.STATION, Platform.MET):
                assert len(set(ds.table.lats)) == 1
                assert len(set(ds.table.lons)) == 1

    def test_paths_unique(self, clean_archive):
        paths = [d.path for d in clean_archive.datasets]
        assert len(paths) == len(set(paths))

    def test_clean_truth_attached(self, clean_archive):
        for ds in clean_archive.datasets:
            assert ds.truth is not None
            for vt in ds.truth.variables:
                assert vt.category == "clean"
                assert vt.canonical == vt.written_name

    def test_directory_formats_consistent(self, clean_archive):
        by_dir = {}
        for ds in clean_archive.datasets:
            directory = ds.path.rsplit("/", 1)[0]
            by_dir.setdefault(directory, set()).add(ds.file_format)
        for directory, formats in by_dir.items():
            assert len(formats) == 1, directory

    def test_dataset_by_path(self, clean_archive):
        first = clean_archive.datasets[0]
        assert clean_archive.dataset_by_path(first.path) is first
        with pytest.raises(KeyError):
            clean_archive.dataset_by_path("nope")


class TestStationRegistry:
    def test_roundtrip(self, clean_archive):
        text = station_registry_text(clean_archive.stations)
        parsed = parse_station_registry(text)
        assert len(parsed) == len(clean_archive.stations)
        assert parsed[0].station_id == clean_archive.stations[0].station_id
        assert parsed[0].lat == clean_archive.stations[0].lat

    def test_bad_row_raises(self):
        with pytest.raises(ValueError):
            parse_station_registry("h|h|h|h|h\nbad|row\n")

    def test_registry_covers_stations_and_met(self, clean_archive):
        spec = clean_archive.spec
        assert len(clean_archive.stations) == (
            spec.stations + spec.met_stations
        )


class TestSeasonality:
    def test_seasonal_offset_sign(self):
        from repro.archive.generator import (
            _EPOCH_2008,
            _YEAR_SECONDS,
            _seasonal_offset,
        )

        july = _EPOCH_2008 + 0.55 * _YEAR_SECONDS
        january = _EPOCH_2008 + 0.05 * _YEAR_SECONDS
        assert _seasonal_offset(july, 1.0) > 0.5
        assert _seasonal_offset(january, 1.0) < -0.5

    def test_walk_with_seasonality_warmer_in_summer(self):
        import random

        from repro.archive.generator import (
            _EPOCH_2008,
            _YEAR_SECONDS,
            _random_walk,
        )

        n = 2000
        times = [
            _EPOCH_2008 + k * (_YEAR_SECONDS / n) for k in range(n)
        ]
        values = _random_walk(
            random.Random(1), 4.0, 22.0, n,
            times=times, seasonal_fraction=0.3,
        )
        by_phase = {}
        for t, v in zip(times, values):
            phase = (t - _EPOCH_2008) / _YEAR_SECONDS % 1.0
            bucket = "summer" if 0.45 < phase < 0.65 else (
                "winter" if phase < 0.1 or phase > 0.95 else None
            )
            if bucket:
                by_phase.setdefault(bucket, []).append(v)
        summer = sum(by_phase["summer"]) / len(by_phase["summer"])
        winter = sum(by_phase["winter"]) / len(by_phase["winter"])
        assert summer > winter + 2.0

    def test_values_still_within_ranges(self, clean_archive):
        # Seasonality must never push values outside the physical range
        # (already asserted generally, restated here for the seasonal set).
        from repro.archive.generator import SEASONAL_AMPLITUDE

        for ds in clean_archive.datasets:
            for col in ds.table.columns:
                if col.name in SEASONAL_AMPLITUDE:
                    lo, hi = VALUE_RANGES[col.name]
                    assert min(col.values) >= lo
                    assert max(col.values) <= hi

"""Unit tests for repro.hierarchy.tree."""

import pytest

from repro.hierarchy import (
    ConceptHierarchy,
    HierarchyError,
    vocabulary_hierarchy,
)


@pytest.fixture()
def small():
    h = ConceptHierarchy()
    h.add("fluorescence", measurable=False)
    h.add("fluores375", parent="fluorescence")
    h.add("fluores400", parent="fluorescence")
    h.add("chlorophyll", parent="fluorescence")
    h.add("salinity")
    return h


class TestConstruction:
    def test_duplicate_raises(self, small):
        with pytest.raises(HierarchyError):
            small.add("salinity")

    def test_self_parent_raises(self):
        h = ConceptHierarchy()
        with pytest.raises(HierarchyError):
            h.add("x", parent="x")

    def test_missing_parent_auto_created_as_concept(self):
        h = ConceptHierarchy()
        h.add("child", parent="auto_parent")
        assert "auto_parent" in h
        assert not h.node("auto_parent").measurable

    def test_remove_leaf(self, small):
        small.remove("fluores375")
        assert "fluores375" not in small
        assert "fluores375" not in small.children("fluorescence")

    def test_remove_inner_raises(self, small):
        with pytest.raises(HierarchyError):
            small.remove("fluorescence")

    def test_remove_missing_raises(self, small):
        with pytest.raises(HierarchyError):
            small.remove("nope")


class TestQueries:
    def test_roots(self, small):
        assert small.roots() == ["fluorescence", "salinity"]

    def test_children_sorted(self, small):
        assert small.children("fluorescence") == [
            "chlorophyll", "fluores375", "fluores400",
        ]

    def test_ancestors(self, small):
        assert small.ancestors("fluores375") == ["fluorescence"]
        assert small.ancestors("salinity") == []

    def test_descendants(self, small):
        assert small.descendants("fluorescence") == {
            "fluores375", "fluores400", "chlorophyll",
        }

    def test_expand_inner_concept(self, small):
        # The Table row 7: query 'fluorescence' matches the leaf variables.
        assert small.expand("fluorescence") == {
            "fluores375", "fluores400", "chlorophyll",
        }

    def test_expand_leaf_is_self(self, small):
        assert small.expand("fluores375") == {"fluores375"}

    def test_expand_unknown_is_self(self, small):
        assert small.expand("mystery") == {"mystery"}

    def test_depth(self, small):
        assert small.depth("fluorescence") == 0
        assert small.depth("fluores375") == 1

    def test_distance(self, small):
        assert small.distance("fluores375", "fluores400") == 2
        assert small.distance("fluores375", "fluorescence") == 1
        assert small.distance("fluores375", "salinity") is None
        assert small.distance("fluores375", "fluores375") == 0

    def test_group_of(self, small):
        assert small.group_of("fluores375") == "fluorescence"
        assert small.group_of("salinity") == "salinity"


class TestMove:
    def test_move_reparents(self, small):
        small.move("chlorophyll", None)
        assert "chlorophyll" in small.roots()
        assert "chlorophyll" not in small.children("fluorescence")

    def test_move_under_new_parent(self, small):
        small.move("salinity", "fluorescence")
        assert "salinity" in small.children("fluorescence")

    def test_move_cycle_raises(self, small):
        with pytest.raises(HierarchyError):
            small.move("fluorescence", "fluores375")

    def test_move_unknown_raises(self, small):
        with pytest.raises(HierarchyError):
            small.move("nope", None)


class TestMenuAndWalk:
    def test_walk_depth_first(self, small):
        names = [name for name, __ in small.walk()]
        assert names[0] == "fluorescence"
        assert names.index("fluores375") < names.index("salinity")

    def test_menu_indentation(self, small):
        menu = small.menu()
        assert "- fluorescence *" in menu  # concept marker
        assert "  - fluores375" in menu


class TestVocabularyHierarchy:
    def test_builds_without_cycles(self):
        h = vocabulary_hierarchy()
        assert len(h) > 20

    def test_abstract_concepts_not_measurable(self):
        h = vocabulary_hierarchy()
        assert not h.node("temperature").measurable
        assert not h.node("fluorescence").measurable
        assert h.node("salinity").measurable

    def test_temperature_expansion(self):
        h = vocabulary_hierarchy()
        expanded = h.expand("temperature")
        assert "air_temperature" in expanded
        assert "water_temperature" in expanded
        assert "sea_surface_temperature" in expanded
        assert "temperature" not in expanded  # abstract

    def test_sst_under_water_temperature(self):
        h = vocabulary_hierarchy()
        assert "sea_surface_temperature" in h.expand("water_temperature")


class TestFlattened:
    def _deep(self):
        h = ConceptHierarchy()
        h.add("a", measurable=False)
        h.add("b", parent="a", measurable=False)
        h.add("c", parent="b")
        h.add("d", parent="c")
        h.add("solo")
        return h

    def test_depth_capped(self):
        flat = self._deep().flattened(1)
        assert max(depth for __, depth in flat.walk()) == 1
        assert set(flat.roots()) == {"a", "solo"}

    def test_deep_nodes_reattach_to_allowed_ancestor(self):
        flat = self._deep().flattened(2)
        assert flat.node("c").parent == "b"
        assert flat.node("d").parent == "b"  # was under c (depth 3)

    def test_all_nodes_preserved(self):
        original = self._deep()
        flat = original.flattened(1)
        assert len(flat) == len(original)
        assert flat.node("d").measurable

    def test_identity_when_already_shallow(self):
        original = self._deep()
        flat = original.flattened(10)
        assert [n for n, __ in flat.walk()] == [
            n for n, __ in original.walk()
        ]

    def test_bad_depth_raises(self):
        with pytest.raises(HierarchyError):
            self._deep().flattened(0)

    def test_vocabulary_flatten_keeps_expansion_targets(self):
        full = vocabulary_hierarchy()
        flat = full.flattened(1)
        # SST (depth 2 under temperature>water_temperature) stays
        # reachable from the root concept.
        assert "sea_surface_temperature" in flat.expand("temperature")

    def test_generate_hierarchies_respects_max_depth(self, messy_fs):
        from repro.wrangling import (
            GenerateHierarchies,
            PerformKnownTransformations,
            ScanArchive,
            WranglingState,
        )

        fs, __ = messy_fs
        state = WranglingState(fs=fs)
        ScanArchive().execute(state)
        PerformKnownTransformations().execute(state)
        GenerateHierarchies(max_depth=1).execute(state)
        assert max(d for __, d in state.hierarchy.walk()) <= 1

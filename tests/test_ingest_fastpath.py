"""The ingest fast path: parallel scan exactness, digest-cached publish.

Three contracts guard the scan→publish half of the system:

* a parallel scan must produce a catalog *identical* to the serial one
  (workers only compute; writes happen in deterministic path order),
* an unchanged re-wrangle must compute zero feature digests and issue
  zero store writes (version-stamped digest cache),
* a publish batch must bump the catalog version once, so the PR-1
  query cache invalidates exactly once per publish.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.wrangling.publish as publish_mod
from repro.archive.filesystem import VirtualArchive
from repro.catalog import MemoryCatalog, SqliteCatalog
from repro.catalog.io import feature_to_dict
from repro.wrangling.chain import ProcessChain
from repro.wrangling.publish import Publish
from repro.wrangling.scan import ScanArchive
from repro.wrangling.state import WranglingState


def make_csv(title: str, rows: int = 3, seed: int = 0) -> str:
    rng = random.Random(seed)
    lines = [
        f"# title: {title}",
        "# platform: station",
        "time [s],latitude [degrees],longitude [degrees],"
        "salinity [psu],water_temperature [degC]",
    ]
    for i in range(rows):
        lines.append(
            f"{1000.0 + i * 60.0},{45.0 + rng.random()},"
            f"{-124.0 + rng.random()},{30.0 + rng.random()},"
            f"{8.0 + rng.random()}"
        )
    return "\n".join(lines) + "\n"


def archive_of(n: int, broken: int = 0) -> VirtualArchive:
    fs = VirtualArchive()
    for i in range(n):
        fs.put(f"dir{i % 3}/ds_{i:03d}.csv", make_csv(f"DS {i}", seed=i))
    for i in range(broken):
        fs.put(f"dir0/broken_{i}.csv", "not,a,valid\nheader at all\n")
    return fs


def observable(store) -> dict:
    return {f.dataset_id: feature_to_dict(f) for f in store.features()}


def scan_publish_chain(workers=None, min_parallel_files=1) -> ProcessChain:
    return ProcessChain(
        components=[
            ScanArchive(workers=workers, min_parallel_files=min_parallel_files),
            Publish(),
        ]
    )


class TestParallelScanExactness:
    @given(
        n=st.integers(min_value=0, max_value=12),
        broken=st.integers(min_value=0, max_value=3),
        workers=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_parallel_catalog_identical_to_serial(self, n, broken, workers):
        fs = archive_of(n, broken=broken)
        serial = WranglingState(fs=fs)
        scan_publish_chain(workers=1).run(serial)
        parallel = WranglingState(fs=fs)
        scan_publish_chain(workers=workers).run(parallel)
        assert observable(parallel.working) == observable(serial.working)
        assert observable(parallel.published) == observable(
            serial.published
        )

    def test_parallel_reports_match_serial(self):
        fs = archive_of(8, broken=2)
        serial = WranglingState(fs=fs)
        serial_report = scan_publish_chain(workers=1).run(serial)
        parallel = WranglingState(fs=fs)
        parallel_report = scan_publish_chain(workers=3).run(parallel)
        for name in ("scan-archive", "publish"):
            a = serial_report.report_for(name)
            b = parallel_report.report_for(name)
            assert (a.changes, a.items_seen, a.items_skipped) == (
                b.changes, b.items_seen, b.items_skipped
            )
            assert a.messages == b.messages

    def test_worker_resolution(self):
        scan = ScanArchive(workers=None)
        assert scan._resolved_workers(100) >= 1
        assert ScanArchive(workers=6)._resolved_workers(3) == 3
        assert ScanArchive(workers=0)._resolved_workers(5) == 1


def run_counting_digests(chain, state):
    calls = {"n": 0}
    original = publish_mod.feature_digest

    def counting(feature):
        calls["n"] += 1
        return original(feature)

    publish_mod.feature_digest = counting
    try:
        report = chain.run(state)
    finally:
        publish_mod.feature_digest = original
    return report, calls["n"]


@pytest.fixture(params=["memory", "sqlite"])
def published_store(request):
    if request.param == "memory":
        yield MemoryCatalog()
    else:
        with SqliteCatalog() as catalog:
            yield catalog


class TestDigestCachedPublish:
    def test_unchanged_rewrangle_digests_nothing(self, published_store):
        fs = archive_of(6)
        state = WranglingState(fs=fs, published=published_store)
        chain = scan_publish_chain(workers=1)
        __, cold_digests = run_counting_digests(chain, state)
        assert cold_digests == 6
        working_v = state.working.version
        published_v = state.published.version
        report, digests = run_counting_digests(chain, state)
        assert digests == 0
        assert state.working.version == working_v
        assert state.published.version == published_v
        assert report.report_for("publish").changes == 0
        assert report.report_for("publish").items_skipped == 6

    def test_small_edit_republishes_only_the_edit(self, published_store):
        fs = archive_of(6)
        state = WranglingState(fs=fs, published=published_store)
        chain = scan_publish_chain(workers=1)
        chain.run(state)
        published_v = state.published.version
        fs.put("dir1/ds_001.csv", make_csv("DS 1 edited", seed=99))
        chain.run(state)
        assert state.published_delta is not None
        assert state.published_delta.upserted == ["dir1/ds_001.csv"]
        assert state.published_delta.removed == []
        # one upsert_many batch -> exactly one version bump
        assert state.published.version == published_v + 1
        assert (
            state.published.get("dir1/ds_001.csv").title == "DS 1 edited"
        )

    def test_vanished_file_withdrawn_in_one_batch(self, published_store):
        fs = archive_of(6)
        state = WranglingState(fs=fs, published=published_store)
        chain = scan_publish_chain(workers=1)
        chain.run(state)
        published_v = state.published.version
        fs.remove("dir2/ds_002.csv")
        fs.remove("dir2/ds_005.csv")
        chain.run(state)
        assert state.published_delta.removed == [
            "dir2/ds_002.csv", "dir2/ds_005.csv"
        ]
        assert state.published.version == published_v + 1
        assert "dir2/ds_002.csv" not in state.published.dataset_ids()

    def test_external_mutation_invalidates_cache(self, published_store):
        """A version mismatch must force a published-side re-digest."""
        fs = archive_of(3)
        state = WranglingState(fs=fs, published=published_store)
        chain = scan_publish_chain(workers=1)
        chain.run(state)
        # Mutate the published store behind the publish step's back.
        tampered = state.published.get("dir0/ds_000.csv")
        tampered.title = "tampered"
        state.published.upsert(tampered)
        __, digests = run_counting_digests(chain, state)
        assert digests > 0
        assert state.published.get("dir0/ds_000.csv").title == "DS 0"

    def test_full_copy_invalidates_cache(self):
        fs = archive_of(3)
        state = WranglingState(fs=fs)
        chain = ProcessChain(
            components=[ScanArchive(workers=1), Publish(incremental=False)]
        )
        chain.run(state)
        assert state.published_delta.full_copy
        assert state.digest_cache.working_version == -1
        assert len(state.published) == 3


class TestSqlitePragmas:
    def test_file_backed_uses_wal(self, tmp_path):
        with SqliteCatalog(str(tmp_path / "cat.db")) as catalog:
            (mode,) = catalog._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()
            (sync,) = catalog._conn.execute(
                "PRAGMA synchronous"
            ).fetchone()
            assert mode == "wal"
            assert sync == 1  # NORMAL

    def test_memory_keeps_default_journal(self):
        with SqliteCatalog() as catalog:
            (mode,) = catalog._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()
            assert mode != "wal"


class TestContentHashMemoized:
    def test_hash_computed_once_per_record(self):
        fs = VirtualArchive()
        record = fs.put("a.csv", "content")
        first = record.content_hash()
        assert record.content_hash() is first
        # put() replaces the record, so a rewrite gets a fresh hash.
        rewritten = fs.put("a.csv", "different")
        assert rewritten.content_hash() != first

    def test_hash_not_part_of_equality(self):
        a = VirtualArchive().put("x.csv", "same")
        b = VirtualArchive().put("x.csv", "same")
        a.content_hash()
        assert a == b

"""Incremental index maintenance: apply() equals a fresh rebuild."""

import random

from repro.catalog import (
    CatalogIndexes,
    DatasetFeature,
    IntervalIndex,
    VariableEntry,
)
from repro.catalog.index import REBUILD_CHURN_FRACTION
from repro.geo import BoundingBox, GeoPoint, TimeInterval


def make_feature(i, rng):
    lat = rng.uniform(42.0, 49.0)
    lon = rng.uniform(-127.0, -121.0)
    start = rng.uniform(0.0, 1e7)
    return DatasetFeature(
        dataset_id=f"ds_{i:03d}",
        title=f"dataset {i}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(lat, lon, lat + rng.uniform(0, 0.4),
                         lon + rng.uniform(0, 0.4)),
        interval=TimeInterval(start, start + rng.uniform(0, 1e6)),
        row_count=10,
        source_directory="",
        variables=[
            VariableEntry.from_written("salinity", "psu", 10,
                                       0.0, 30.0, 15.0, 5.0)
        ],
    )


def assert_equivalent(incremental, fresh, rng):
    """Same ids and same candidate sets for a spread of probes."""
    assert incremental.spatial.all_ids() == fresh.spatial.all_ids()
    assert incremental.temporal.all_ids() == fresh.temporal.all_ids()
    for __ in range(15):
        point = GeoPoint(rng.uniform(42, 49), rng.uniform(-127, -121))
        radius = rng.uniform(10.0, 300.0)
        assert incremental.spatial.candidates_near(
            point, radius
        ) == fresh.spatial.candidates_near(point, radius)
        t0 = rng.uniform(0.0, 1e7)
        window = TimeInterval(t0, t0 + rng.uniform(0, 5e5))
        margin = rng.uniform(0.0, 1e5)
        assert incremental.temporal.candidates_overlapping(
            window, margin_seconds=margin
        ) == fresh.temporal.candidates_overlapping(
            window, margin_seconds=margin
        )


class TestApply:
    def test_small_delta_matches_rebuild(self):
        rng = random.Random(11)
        features = [make_feature(i, rng) for i in range(60)]
        indexes = CatalogIndexes.build(features)
        # Touch the lazy interval structures before editing so the
        # incremental (non-dirty) maintenance path is the one tested.
        indexes.temporal.candidates_overlapping(TimeInterval(0.0, 1.0))

        moved = make_feature(3, rng)  # new position, same id as ds_003
        new = [make_feature(100 + i, rng) for i in range(4)]
        gone = ["ds_010", "ds_011"]
        remaining = {
            f.dataset_id: f for f in features if f.dataset_id not in gone
        }
        remaining[moved.dataset_id] = moved
        for f in new:
            remaining[f.dataset_id] = f

        result = indexes.apply(
            added=new, removed=gone, updated=[moved], catalog_version=42
        )
        assert result is indexes
        assert indexes.catalog_version == 42
        assert len(indexes) == len(remaining)
        fresh = CatalogIndexes.build(list(remaining.values()))
        assert_equivalent(indexes, fresh, random.Random(13))

    def test_churn_above_threshold_rebuilds(self):
        rng = random.Random(17)
        features = [make_feature(i, rng) for i in range(20)]
        indexes = CatalogIndexes.build(features)
        replacement = [make_feature(i, rng) for i in range(20)]
        churn = len(replacement)
        assert churn > REBUILD_CHURN_FRACTION * len(indexes)
        indexes.apply(
            updated=replacement,
            catalog_version=7,
            rebuild_from=replacement,
        )
        assert indexes.catalog_version == 7
        fresh = CatalogIndexes.build(replacement)
        assert_equivalent(indexes, fresh, random.Random(19))

    def test_empty_delta_only_stamps_version(self):
        rng = random.Random(23)
        features = [make_feature(i, rng) for i in range(10)]
        indexes = CatalogIndexes.build(features, catalog_version=1)
        indexes.apply(catalog_version=5)
        assert indexes.catalog_version == 5
        assert len(indexes) == 10


class TestIntervalIncremental:
    def test_insert_remove_after_query(self):
        """Edits after the lazy sort keep the endpoint lists exact."""
        rng = random.Random(29)
        index = IntervalIndex()
        intervals = {}
        for i in range(50):
            start = rng.uniform(0.0, 1e6)
            intervals[f"d{i}"] = TimeInterval(
                start, start + rng.uniform(0, 1e5)
            )
            index.insert(f"d{i}", intervals[f"d{i}"])
        index.candidates_overlapping(TimeInterval(0.0, 1.0))  # sorts

        # Replace, add and remove — all on the non-dirty path.
        intervals["d5"] = TimeInterval(2e6, 2.1e6)
        index.insert("d5", intervals["d5"])
        intervals["d99"] = TimeInterval(-5.0, 5.0)
        index.insert("d99", intervals["d99"])
        index.remove("d7")
        del intervals["d7"]
        index.remove("absent")  # no-op

        fresh = IntervalIndex()
        for did, iv in intervals.items():
            fresh.insert(did, iv)
        for __ in range(20):
            t0 = rng.uniform(-10.0, 2.2e6)
            window = TimeInterval(t0, t0 + rng.uniform(0, 3e5))
            assert index.candidates_overlapping(
                window
            ) == fresh.candidates_overlapping(window)
        assert index._starts == fresh._starts
        assert index._ends == fresh._ends

    def test_duplicate_endpoints(self):
        """Identical endpoint values: removal must pop the right tuple."""
        index = IntervalIndex()
        for did in ("a", "b", "c"):
            index.insert(did, TimeInterval(100.0, 200.0))
        index.candidates_overlapping(TimeInterval(0.0, 1.0))
        index.remove("b")
        assert index.candidates_overlapping(
            TimeInterval(150.0, 160.0)
        ) == {"a", "c"}
        assert len(index._starts) == 2
        assert all(did != "b" for __, did in index._starts)
        assert all(did != "b" for __, did in index._ends)

"""Unit tests for repro.core.scoring (distance-based similarity)."""

import math

import pytest

from repro.catalog import DatasetFeature, VariableEntry
from repro.core import (
    Query,
    ScoringConfig,
    VariableTerm,
    location_similarity,
    name_similarity,
    range_similarity,
    score_feature,
    time_similarity,
    variable_term_similarity,
)
from repro.geo import BoundingBox, GeoPoint, TimeInterval
from repro.hierarchy import vocabulary_hierarchy


def make_feature(
    bbox=None,
    interval=None,
    variables=None,
):
    return DatasetFeature(
        dataset_id="d1",
        title="D1",
        platform="station",
        file_format="csv",
        bbox=bbox or BoundingBox(46.0, -124.0, 46.2, -123.8),
        interval=interval or TimeInterval(1000.0, 2000.0),
        row_count=10,
        source_directory="",
        variables=variables
        if variables is not None
        else [
            VariableEntry.from_written(
                "water_temperature", "degC", 10, 5.0, 15.0, 10.0, 2.0
            )
        ],
    )


class TestLocationSimilarity:
    def test_inside_box_is_one(self):
        query = Query(location=GeoPoint(46.1, -123.9))
        assert location_similarity(
            query, make_feature(), ScoringConfig()
        ) == pytest.approx(1.0)

    def test_decays_with_distance(self):
        config = ScoringConfig()
        near = location_similarity(
            Query(location=GeoPoint(45.9, -123.9)), make_feature(), config
        )
        far = location_similarity(
            Query(location=GeoPoint(44.0, -123.9)), make_feature(), config
        )
        assert 0 < far < near < 1.0

    def test_decay_scale(self):
        # ~111 km south of the box -> exp(-111/decay).
        query = Query(location=GeoPoint(45.0, -123.9))
        sim = location_similarity(
            query, make_feature(), ScoringConfig(location_decay_km=111.0)
        )
        assert sim == pytest.approx(math.exp(-1.0), rel=0.01)

    def test_region_query(self):
        query = Query(region=BoundingBox(46.0, -124.0, 46.1, -123.9))
        assert location_similarity(
            query, make_feature(), ScoringConfig()
        ) == pytest.approx(1.0)

    def test_no_spatial_term_raises(self):
        with pytest.raises(ValueError):
            location_similarity(Query(), make_feature(), ScoringConfig())


class TestTimeSimilarity:
    def test_overlap_is_one(self):
        sim = time_similarity(
            TimeInterval(1500, 1600), make_feature(), ScoringConfig()
        )
        assert sim == pytest.approx(1.0)

    def test_gap_decays(self):
        config = ScoringConfig(time_decay_days=1.0)
        one_day_later = TimeInterval(2000.0 + 86400.0, 2000.0 + 86400.0)
        sim = time_similarity(one_day_later, make_feature(), config)
        assert sim == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_monotone_in_gap(self):
        config = ScoringConfig()
        sims = [
            time_similarity(
                TimeInterval(2000.0 + gap, 2000.0 + gap),
                make_feature(),
                config,
            )
            for gap in (0.0, 1e5, 1e6, 1e7)
        ]
        assert sims == sorted(sims, reverse=True)


class TestRangeSimilarity:
    def entry(self, lo=5.0, hi=15.0, count=10):
        return VariableEntry.from_written(
            "x", "m", count, lo, hi, (lo + hi) / 2, 1.0
        )

    def test_no_range_is_one(self):
        term = VariableTerm("x")
        assert range_similarity(term, self.entry(), ScoringConfig()) == 1.0

    def test_query_fully_covered_is_one(self):
        term = VariableTerm("x", low=6.0, high=10.0)
        assert range_similarity(
            term, self.entry(), ScoringConfig()
        ) == pytest.approx(1.0)

    def test_partial_overlap_fraction(self):
        term = VariableTerm("x", low=10.0, high=20.0)  # half covered
        assert range_similarity(
            term, self.entry(), ScoringConfig()
        ) == pytest.approx(0.5, abs=1e-6)

    def test_disjoint_decays(self):
        term = VariableTerm("x", low=20.0, high=25.0)  # gap 5, width 5
        sim = range_similarity(term, self.entry(), ScoringConfig())
        assert sim == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_empty_column_is_zero(self):
        term = VariableTerm("x", low=0.0, high=1.0)
        entry = VariableEntry.from_written(
            "x", "m", 0, math.nan, math.nan, math.nan, math.nan
        )
        assert range_similarity(term, entry, ScoringConfig()) == 0.0

    def test_half_open_low_only(self):
        term = VariableTerm("x", low=10.0)
        sim = range_similarity(term, self.entry(), ScoringConfig())
        assert 0.0 < sim <= 1.0


class TestNameSimilarity:
    def test_exact_match(self):
        assert name_similarity("salinity", "salinity", set(),
                               ScoringConfig()) == 1.0

    def test_expansion_match(self):
        assert name_similarity(
            "fluorescence", "fluorescence_375nm",
            {"fluorescence_375nm"}, ScoringConfig(),
        ) == 1.0

    def test_near_miss_partial_credit(self):
        sim = name_similarity(
            "water_temperature", "water_temperatur", set(), ScoringConfig()
        )
        assert 0.9 < sim < 1.0

    def test_unrelated_is_zero(self):
        assert name_similarity(
            "salinity", "wind_speed", set(), ScoringConfig()
        ) == 0.0


class TestVariableTermSimilarity:
    def test_hierarchy_expansion_matches_child(self):
        hierarchy = vocabulary_hierarchy()
        feature = make_feature(
            variables=[
                VariableEntry.from_written(
                    "fluorescence_375nm", "1", 10, 0.0, 5.0, 2.0, 1.0
                )
            ]
        )
        term = VariableTerm("fluorescence")
        assert variable_term_similarity(
            term, feature, hierarchy, ScoringConfig()
        ) == 1.0

    def test_excluded_variables_ignored(self):
        entry = VariableEntry.from_written(
            "qa_level", "1", 10, 0.0, 2.0, 1.0, 0.5
        )
        entry.excluded = True
        feature = make_feature(variables=[entry])
        term = VariableTerm("qa_level")
        assert variable_term_similarity(
            term, feature, None, ScoringConfig()
        ) == 0.0

    def test_best_over_variables(self):
        feature = make_feature(
            variables=[
                VariableEntry.from_written("a_temp", "degC", 5, 0, 1, 0.5, 0.1),
                VariableEntry.from_written(
                    "water_temperature", "degC", 5, 0, 1, 0.5, 0.1
                ),
            ]
        )
        term = VariableTerm("water_temperature")
        assert variable_term_similarity(
            term, feature, None, ScoringConfig()
        ) == 1.0


class TestScoreFeature:
    def paper_query(self):
        return Query(
            location=GeoPoint(46.1, -123.9),
            interval=TimeInterval(1500, 1600),
            variables=(
                VariableTerm("water_temperature", low=5.0, high=10.0),
            ),
        )

    def test_perfect_match_scores_near_one(self):
        feature = make_feature(
            variables=[
                VariableEntry.from_written(
                    "water_temperature", "degC", 10, 5.0, 10.0, 7.0, 1.0
                )
            ]
        )
        breakdown = score_feature(self.paper_query(), feature)
        assert breakdown.total == pytest.approx(1.0)

    def test_empty_query_scores_one(self):
        assert score_feature(Query(), make_feature()).total == 1.0

    def test_breakdown_fields(self):
        breakdown = score_feature(self.paper_query(), make_feature())
        assert breakdown.location is not None
        assert breakdown.time is not None
        assert len(breakdown.variables) == 1
        assert "score=" in breakdown.explain()

    def test_partial_match_still_scores(self):
        # Dataset with wrong variable but right place/time must score > 0
        # (this is the ranked-search advantage over boolean filters).
        feature = make_feature(
            variables=[
                VariableEntry.from_written("salinity", "PSU", 10, 0, 30, 15, 3)
            ]
        )
        breakdown = score_feature(self.paper_query(), feature)
        assert 0.0 < breakdown.total < 1.0

    def test_weighted_mean(self):
        config = ScoringConfig(location_weight=2.0, time_weight=1.0,
                               variable_weight=1.0)
        query = Query(
            location=GeoPoint(40.0, -123.9),  # far: low location sim
            interval=TimeInterval(1500, 1600),  # overlap: 1.0
        )
        plain = score_feature(query, make_feature())
        weighted = score_feature(query, make_feature(), config=config)
        # More weight on the bad term lowers the total.
        assert weighted.total < plain.total

    def test_ablation_switches(self):
        query = self.paper_query()
        feature = make_feature()
        no_location = score_feature(
            query, feature, config=ScoringConfig(use_location=False)
        )
        assert no_location.location is None
        no_time = score_feature(
            query, feature, config=ScoringConfig(use_time=False)
        )
        assert no_time.time is None
        no_vars = score_feature(
            query, feature, config=ScoringConfig(use_variables=False)
        )
        assert no_vars.variables == ()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScoringConfig(location_decay_km=0.0)
        with pytest.raises(ValueError):
            ScoringConfig(name_partial_threshold=1.5)

"""The flight recorder: bounded receipts for the slowest and the broken.

What obs/flightrec.py promises:

* two-phase capture — ``interested`` is an O(1) check against the
  slowest-heap floor, so the common fast request never pays for span
  extraction;
* the slow ring keeps exactly the N slowest (evicted by faster ones,
  never by time), the error ring keeps the most recent M errors
  (oldest rolls off);
* snapshots are slowest-first, JSON-able, and self-contained (spans
  were copied at capture);
* ``spans_for_request`` filters a mixed span list down to one request's
  stamped spans.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    FlightRecord,
    FlightRecorder,
    Telemetry,
    spans_for_request,
)


def record(
    request_id: str,
    latency: float,
    error: bool = False,
    status: int = 200,
    **attrs,
) -> FlightRecord:
    return FlightRecord(
        request_id=request_id,
        query="with salinity",
        status=status,
        latency_seconds=latency,
        error=error,
        attrs=attrs,
    )


class TestInterest:
    def test_everything_is_interesting_below_capacity(self):
        recorder = FlightRecorder(slow_capacity=2)
        assert recorder.interested(0.0001, error=False)
        recorder.record(record("a", 0.5))
        assert recorder.interested(0.0001, error=False)

    def test_at_capacity_only_slower_than_the_floor(self):
        recorder = FlightRecorder(slow_capacity=2)
        recorder.record(record("a", 0.2))
        recorder.record(record("b", 0.5))
        assert not recorder.interested(0.1, error=False)
        assert not recorder.interested(0.2, error=False)  # ties lose
        assert recorder.interested(0.3, error=False)

    def test_errors_are_always_interesting(self):
        recorder = FlightRecorder(slow_capacity=1)
        recorder.record(record("a", 9.9))
        assert recorder.interested(0.0001, error=True)


class TestSlowRing:
    def test_keeps_exactly_the_n_slowest(self):
        recorder = FlightRecorder(slow_capacity=3)
        latencies = [0.1, 0.7, 0.3, 0.9, 0.2, 0.5]
        for index, latency in enumerate(latencies):
            recorder.record(record(f"r{index}", latency))
        snapshot = recorder.snapshot()
        kept = [r["latency_seconds"] for r in snapshot["slowest"]]
        assert kept == [0.9, 0.7, 0.5]  # slowest first

    def test_faster_than_the_floor_is_dropped(self):
        recorder = FlightRecorder(slow_capacity=1)
        assert recorder.record(record("slow", 0.9)) is True
        assert recorder.record(record("fast", 0.1)) is False
        snapshot = recorder.snapshot()
        assert [r["request_id"] for r in snapshot["slowest"]] == ["slow"]
        assert snapshot["captured"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(slow_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(error_capacity=0)


class TestErrorRing:
    def test_errors_are_kept_separately_from_slow(self):
        recorder = FlightRecorder(slow_capacity=1)
        recorder.record(record("slow", 0.9))
        recorder.record(record("boom", 0.001, error=True, status=500))
        snapshot = recorder.snapshot()
        assert [r["request_id"] for r in snapshot["slowest"]] == ["slow"]
        assert [r["request_id"] for r in snapshot["errors"]] == ["boom"]

    def test_oldest_error_rolls_off(self):
        recorder = FlightRecorder(error_capacity=2)
        for index in range(3):
            recorder.record(
                record(f"e{index}", 0.01, error=True, status=500)
            )
        snapshot = recorder.snapshot()
        assert [r["request_id"] for r in snapshot["errors"]] == ["e1", "e2"]
        assert snapshot["captured"] == 3  # captured counts offers kept


class TestSnapshotAndDump:
    def test_snapshot_is_json_able_and_self_contained(self):
        recorder = FlightRecorder()
        recorder.record(
            record("a", 0.5, cache_hit=False, candidates_in=12)
        )
        snapshot = recorder.snapshot()
        json.dumps(snapshot)  # must not raise
        entry = snapshot["slowest"][0]
        assert entry["query"] == "with salinity"
        assert entry["attrs"]["candidates_in"] == 12
        assert entry["spans"] == []

    def test_dump_writes_json_and_counts_records(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(record("a", 0.5))
        recorder.record(record("b", 0.1, error=True, status=500))
        out = tmp_path / "flight.json"
        assert recorder.dump(str(out)) == 2
        payload = json.loads(out.read_text())
        assert payload["captured"] == 2
        assert len(payload["slowest"]) == 1
        assert len(payload["errors"]) == 1

    def test_captured_spans_survive_registry_truncation(self):
        """Spans are copied at capture, not referenced."""
        telemetry = Telemetry()
        from repro.obs import RequestContext, use_request, use_telemetry

        with use_telemetry(telemetry), use_request(RequestContext("req-1")):
            with telemetry.span("http.request"):
                pass
        spans = spans_for_request(telemetry.spans(), "req-1")
        recorder = FlightRecorder()
        recorder.record(
            FlightRecord(
                request_id="req-1",
                query="q",
                status=200,
                latency_seconds=0.1,
                spans=spans,
            )
        )
        telemetry.reset()
        entry = recorder.snapshot()["slowest"][0]
        assert [s["name"] for s in entry["spans"]] == ["http.request"]


class TestSpansForRequest:
    def test_filters_by_request_id_stamp(self):
        spans = [
            {"name": "a", "attrs": {"request_id": "req-1"}},
            {"name": "b", "attrs": {"request_id": "req-2"}},
            {"name": "c", "attrs": {}},
        ]
        assert [
            s["name"] for s in spans_for_request(spans, "req-1")
        ] == ["a"]

    def test_accepts_span_records_and_returns_dicts(self):
        telemetry = Telemetry()
        from repro.obs import RequestContext, use_request, use_telemetry

        with use_telemetry(telemetry), use_request(RequestContext("req-9")):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        captured = spans_for_request(telemetry.spans(), "req-9")
        assert all(isinstance(s, dict) for s in captured)
        assert {s["name"] for s in captured} == {"outer", "inner"}
        assert spans_for_request(telemetry.spans(), "req-none") == []

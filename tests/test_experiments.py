"""Unit tests for repro.experiments (the harness must be trustworthy,
since every benchmark claim rests on it)."""

import pytest

from repro.core import BooleanSearchEngine, SearchEngine
from repro.experiments import (
    CategoryAccuracy,
    clean_archive_of_size,
    evaluate_engine,
    generate_workload,
    make_resolver,
    messy_archive_of_size,
    raw_catalog_from,
    resolution_accuracy,
    spec_for_size,
    wrangled_system,
)


class TestBuilders:
    def test_spec_scales(self):
        small = spec_for_size(15)
        large = spec_for_size(120)
        assert small.dataset_count < large.dataset_count
        assert abs(small.dataset_count - 15) <= 4
        assert abs(large.dataset_count - 120) <= 8

    def test_spec_bad_size(self):
        with pytest.raises(ValueError):
            spec_for_size(0)

    def test_messy_and_clean_twins_align(self):
        fs, truth, messy = messy_archive_of_size(15, seed=3)
        clean = clean_archive_of_size(15, seed=3)
        assert [d.path for d in messy.datasets] == [
            d.path for d in clean.datasets
        ]

    def test_raw_catalog_counts(self):
        fs, truth, __ = messy_archive_of_size(15, seed=3)
        catalog = raw_catalog_from(fs)
        assert len(catalog) == len(truth)

    def test_wrangled_system_ready(self):
        fs, __, ___ = messy_archive_of_size(15, seed=3)
        system = wrangled_system(fs)
        assert len(system.engine.catalog) > 0


class TestWorkload:
    @pytest.fixture(scope="class")
    def clean(self):
        return clean_archive_of_size(15, seed=3)

    def test_workload_size(self, clean):
        assert len(generate_workload(clean, n_queries=7, seed=1)) == 7

    def test_bad_size_raises(self, clean):
        with pytest.raises(ValueError):
            generate_workload(clean, n_queries=0)

    def test_deterministic(self, clean):
        a = generate_workload(clean, n_queries=5, seed=9)
        b = generate_workload(clean, n_queries=5, seed=9)
        assert [s.query.describe() for s in a] == [
            s.query.describe() for s in b
        ]

    def test_seed_dataset_strongly_relevant(self, clean):
        for spec in generate_workload(clean, n_queries=10, seed=2):
            assert spec.seed_dataset in spec.relevance
            assert spec.relevance[spec.seed_dataset] >= 3.0

    def test_grades_bounded(self, clean):
        for spec in generate_workload(clean, n_queries=10, seed=2):
            for grade in spec.relevance.values():
                assert 0.0 < grade <= 3.0

    def test_queries_have_all_three_terms(self, clean):
        for spec in generate_workload(clean, n_queries=5, seed=2):
            assert spec.query.has_spatial
            assert spec.query.has_temporal
            assert spec.query.variables


class TestEvaluateEngine:
    def test_wrangled_engine_scores_high(self):
        fs, __, ___ = messy_archive_of_size(15, seed=3)
        clean = clean_archive_of_size(15, seed=3)
        workload = generate_workload(clean, n_queries=8, seed=5)
        system = wrangled_system(fs)
        summary = evaluate_engine(system.engine, workload, label="x")
        assert summary.ndcg > 0.6
        assert summary.queries == 8
        assert "nDCG" in summary.row()

    def test_empty_workload_raises(self):
        fs, __, ___ = messy_archive_of_size(15, seed=3)
        system = wrangled_system(fs)
        with pytest.raises(ValueError):
            evaluate_engine(system.engine, [])

    def test_ranked_beats_boolean_on_harness(self):
        fs, __, ___ = messy_archive_of_size(15, seed=3)
        clean = clean_archive_of_size(15, seed=3)
        workload = generate_workload(clean, n_queries=8, seed=5)
        catalog = raw_catalog_from(fs)
        ranked = evaluate_engine(
            SearchEngine(catalog), workload, label="ranked"
        )
        boolean = evaluate_engine(
            BooleanSearchEngine(catalog), workload, label="boolean"
        )
        assert ranked.ndcg > boolean.ndcg


class TestTable1Harness:
    def test_accuracy_fields(self):
        bucket = CategoryAccuracy(category="x", correct=3, wrong=1,
                                  unresolved=0)
        assert bucket.total == 4
        assert bucket.accuracy == 0.75

    def test_empty_bucket_accuracy_one(self):
        assert CategoryAccuracy(category="x").accuracy == 1.0

    def test_make_resolver_configurations(self):
        for name in ("none", "tables", "discovery", "full"):
            assert make_resolver(name) is not None
        with pytest.raises(ValueError):
            make_resolver("quantum")

    def test_full_beats_none_overall(self):
        __, ___, archive = messy_archive_of_size(15, seed=3)
        full = resolution_accuracy(archive, "full")
        none = resolution_accuracy(archive, "none")
        full_total = sum(b.correct for b in full.values())
        none_total = sum(b.correct for b in none.values())
        assert full_total > none_total

    def test_buckets_cover_all_columns(self):
        __, ___, archive = messy_archive_of_size(15, seed=3)
        from repro.archive import truth_index

        results = resolution_accuracy(archive, "full")
        assert sum(b.total for b in results.values()) == len(
            truth_index(archive)
        )

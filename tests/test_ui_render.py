"""Unit tests for repro.ui.render."""

import pytest

from repro.core import Query, SearchEngine, VariableTerm, summarize
from repro.geo import GeoPoint
from repro.hierarchy import default_taxonomy_links
from repro.ui import (
    render_search_html,
    render_search_text,
    render_summary_html,
    render_summary_text,
)


@pytest.fixture()
def results(raw_catalog):
    engine = SearchEngine(raw_catalog)
    query = Query(location=GeoPoint(46.1, -123.9))
    return query, engine.search(query, limit=5)


class TestSearchPage:
    def test_text_contains_query_and_hits(self, results):
        query, hits = results
        page = render_search_text(query, hits)
        assert "Data Near Here" in page
        assert query.describe() in page
        for hit in hits:
            assert hit.dataset_id in page

    def test_text_shows_breakdown(self, results):
        query, hits = results
        page = render_search_text(query, hits)
        assert "why:" in page
        assert "location=" in page

    def test_text_empty_results(self, results):
        query, __ = results
        page = render_search_text(query, [])
        assert "(no results)" in page

    def test_html_escapes_and_structures(self, results):
        query, hits = results
        page = render_search_html(query, hits)
        assert page.startswith("<html>")
        assert "<table" in page
        assert str(len(hits)) and hits[0].dataset_id in page


class TestSummaryPage:
    def test_text_sections(self, raw_catalog):
        feature = next(iter(raw_catalog))
        page = render_summary_text(summarize(feature))
        assert "Dataset summary:" in page
        assert "variables (" in page
        assert feature.dataset_id in page

    def test_text_shows_written_origin_when_renamed(self, raw_catalog):
        feature = next(iter(raw_catalog))
        feature.variables[0].name = "renamed_canonical"
        page = render_summary_text(summarize(feature))
        assert "(was" in page

    def test_text_detail_only_section(self, raw_catalog):
        feature = next(iter(raw_catalog))
        feature.variables[0].excluded = True
        page = render_summary_text(summarize(feature))
        assert "detail-only variables" in page
        assert "excluded from search" in page

    def test_taxonomy_links_rendered(self, raw_catalog):
        feature = next(iter(raw_catalog))
        feature.variables[0].name = "salinity"
        summary = summarize(
            feature, taxonomy_links=default_taxonomy_links()
        )
        page = render_summary_text(summary)
        assert "gcmd:" in page

    def test_html_structure(self, raw_catalog):
        feature = next(iter(raw_catalog))
        page = render_summary_html(summarize(feature))
        assert "<h1>" in page
        assert "<table" in page

    def test_html_escapes_content(self, raw_catalog):
        feature = next(iter(raw_catalog))
        feature.title = "Station <script>"
        page = render_summary_html(summarize(feature))
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

"""Unit tests for repro.semantics.spelling."""

import pytest

from repro.semantics import MisspellingResolver

CANONICALS = [
    "air_temperature",
    "water_temperature",
    "salinity",
    "turbidity",
    "dissolved_oxygen",
    "wind_speed",
]


@pytest.fixture()
def resolver():
    return MisspellingResolver(CANONICALS)


class TestPaperExamples:
    def test_air_temperatrue_resolves(self, resolver):
        # The Table's exact misspelling example.
        match = resolver.resolve("air_temperatrue")
        assert match is not None
        assert match.canonical == "air_temperature"
        assert match.distance <= 1 or match.method != "edit"

    def test_airtemp_not_matched_without_table(self, resolver):
        # 'airtemp' is an abbreviationish form, 7 chars vs 15 — outside
        # edit range, and fingerprints differ; the synonym table handles
        # it, not the misspelling resolver.
        match = resolver.resolve("airtemp")
        assert match is None or match.canonical == "air_temperature"


class TestMethods:
    def test_fingerprint_variant(self, resolver):
        match = resolver.resolve("Temperature Air")
        assert match is not None
        assert match.canonical == "air_temperature"
        assert match.method == "fingerprint"

    def test_joined_tokens_via_ngram(self, resolver):
        match = resolver.resolve("watertemperature")
        assert match is not None
        assert match.canonical == "water_temperature"
        assert match.method in ("ngram", "edit")

    def test_typo_via_edit_distance(self, resolver):
        match = resolver.resolve("salinty")
        assert match is not None
        assert match.canonical == "salinity"

    def test_transposition_cheap(self, resolver):
        match = resolver.resolve("salintiy")
        assert match is not None
        assert match.canonical == "salinity"

    def test_unrelated_name_unresolved(self, resolver):
        assert resolver.resolve("chlorophyll_a") is None

    def test_empty_unresolved(self, resolver):
        assert resolver.resolve("") is None

    def test_exact_name_resolves_to_itself(self, resolver):
        match = resolver.resolve("salinity")
        assert match is not None
        assert match.canonical == "salinity"


class TestAmbiguityGuard:
    def test_tie_between_canonicals_unresolved(self):
        resolver = MisspellingResolver(["aaab", "aaac"])
        # 'aaad' is distance 1 from both: must stay unresolved.
        assert resolver.resolve("aaad") is None

    def test_short_names_get_tight_budget(self):
        resolver = MisspellingResolver(["ph"])
        # A 3-char name may be at most 1 edit away even though
        # max_distance is 2.
        assert resolver.resolve("px") is None or True  # no crash
        resolved = resolver.resolve("phh")
        assert resolved is None or resolved.canonical == "ph"


class TestBatch:
    def test_resolve_all_partitions(self, resolver):
        mapping, unresolved = resolver.resolve_all(
            ["salinty", "salinity", "mystery_var"]
        )
        assert mapping == {"salinty": "salinity"}
        assert unresolved == ["mystery_var"]


class TestValidation:
    def test_bad_max_distance(self):
        with pytest.raises(ValueError):
            MisspellingResolver(CANONICALS, max_distance=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            MisspellingResolver(CANONICALS, max_distance_fraction=0.0)

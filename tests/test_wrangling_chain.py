"""Unit tests for repro.wrangling.chain."""

import pytest

from repro.wrangling import (
    ChainCompositionError,
    ProcessChain,
    Publish,
    ScanArchive,
    WranglingState,
    default_chain,
)


@pytest.fixture()
def state(messy_fs):
    fs, __ = messy_fs
    return WranglingState(fs=fs)


class TestComposition:
    def test_default_chain_order_matches_figure(self):
        names = default_chain().names()
        assert names == [
            "scan-archive",
            "known-transformations",
            "external-metadata",
            "discover-transformations",
            "discovered-transformations",
            "generate-hierarchies",
            "publish",
        ]

    def test_insert_before(self):
        chain = default_chain()
        chain.insert_before("publish", ScanArchive())
        assert chain.names()[-2] == "scan-archive"

    def test_insert_before_missing_raises(self):
        with pytest.raises(ChainCompositionError):
            default_chain().insert_before("nope", Publish())

    def test_remove(self):
        chain = default_chain()
        removed = chain.remove("external-metadata")
        assert removed.name == "external-metadata"
        assert "external-metadata" not in chain.names()

    def test_remove_missing_raises(self):
        with pytest.raises(ChainCompositionError):
            default_chain().remove("nope")

    def test_component_lookup(self):
        chain = default_chain()
        assert chain.component("publish").name == "publish"
        with pytest.raises(ChainCompositionError):
            chain.component("nope")

    def test_custom_minimal_chain(self, state):
        chain = ProcessChain(components=[ScanArchive(), Publish()])
        chain.run(state)
        assert len(state.published) == len(state.working) > 0


class TestRunning:
    def test_run_produces_report_per_component(self, state):
        chain = default_chain()
        report = chain.run(state)
        assert len(report.component_reports) == len(chain.components)
        assert report.run_number == 1

    def test_history_accumulates(self, state):
        chain = default_chain()
        chain.run(state)
        chain.run(state)
        assert len(chain.history) == 2
        assert chain.last_run.run_number == 2

    def test_rerun_is_cheaper(self, state):
        chain = default_chain()
        first = chain.run(state)
        second = chain.run(state)
        scan_first = first.report_for("scan-archive")
        scan_second = second.report_for("scan-archive")
        assert scan_second.changes == 0
        assert scan_second.items_skipped == scan_first.changes

    def test_rerun_converges_to_noop_transforms(self, state):
        chain = default_chain()
        chain.run(state)
        second = chain.run(state)
        assert second.report_for("known-transformations").changes == 0
        assert second.report_for("discovered-transformations").changes == 0

    def test_report_for_missing_raises(self, state):
        chain = default_chain()
        report = chain.run(state)
        with pytest.raises(KeyError):
            report.report_for("nonexistent")

    def test_summary_text(self, state):
        chain = default_chain()
        report = chain.run(state)
        text = report.summary()
        assert "run #1" in text
        assert "scan-archive" in text

    def test_total_changes(self, state):
        chain = default_chain()
        report = chain.run(state)
        assert report.total_changes == sum(
            r.changes for r in report.component_reports
        )

    def test_end_to_end_names_mostly_canonical(self, state, messy_fs):
        from repro.archive import VOCABULARY

        chain = default_chain()
        chain.run(state)
        names = state.published.variable_name_counts()
        canonical = sum(
            count for name, count in names.items() if name in VOCABULARY
        )
        total = sum(names.values())
        assert canonical / total > 0.9

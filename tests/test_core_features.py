"""Unit tests for repro.core.features (scan-once summarization)."""

import math

import pytest

from repro.archive import (
    Dataset,
    FileFormat,
    ObservationColumn,
    ObservationTable,
    Platform,
)
from repro.core import EmptyDatasetError, extract_feature


def make_dataset(times=None, lats=None, lons=None, columns=None):
    times = times if times is not None else [0.0, 60.0, 120.0]
    n = len(times)
    return Dataset(
        path="stations/s/s_2009.csv",
        platform=Platform.STATION,
        file_format=FileFormat.CSV,
        attributes={"title": "S 2009", "station": "s"},
        table=ObservationTable(
            times=times,
            lats=lats if lats is not None else [46.1] * n,
            lons=lons if lons is not None else [-123.9] * n,
            columns=columns
            if columns is not None
            else [ObservationColumn("salinity", "PSU", [10.0, 12.0, 11.0])],
        ),
    )


class TestExtractFeature:
    def test_bbox_covers_positions(self):
        feature = extract_feature(
            make_dataset(lats=[46.0, 46.2, 46.1], lons=[-124.0, -123.8, -123.9])
        )
        assert feature.bbox.as_tuple() == (46.0, -124.0, 46.2, -123.8)

    def test_fixed_station_bbox_is_point(self):
        feature = extract_feature(make_dataset())
        assert feature.bbox.is_point

    def test_interval_covers_times(self):
        feature = extract_feature(make_dataset(times=[50.0, 10.0, 90.0]))
        assert feature.interval.as_tuple() == (10.0, 90.0)

    def test_variable_stats(self):
        feature = extract_feature(make_dataset())
        entry = feature.variable("salinity")
        assert entry.count == 3
        assert entry.minimum == 10.0
        assert entry.maximum == 12.0
        assert entry.mean == pytest.approx(11.0)

    def test_written_name_and_unit_preserved(self):
        feature = extract_feature(make_dataset())
        entry = feature.variables[0]
        assert entry.written_name == "salinity"
        assert entry.written_unit == "PSU"
        assert entry.name == entry.written_name

    def test_all_nan_column_kept_with_zero_count(self):
        nan = float("nan")
        feature = extract_feature(
            make_dataset(
                columns=[ObservationColumn("dead", "m", [nan, nan, nan])]
            )
        )
        entry = feature.variable("dead")
        assert entry.count == 0
        assert math.isnan(entry.minimum)

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            extract_feature(make_dataset(times=[], lats=[], lons=[],
                                         columns=[]))

    def test_metadata_fields(self):
        feature = extract_feature(make_dataset(), content_hash="abc123")
        assert feature.dataset_id == "stations/s/s_2009.csv"
        assert feature.source_directory == "stations/s"
        assert feature.title == "S 2009"
        assert feature.platform == "station"
        assert feature.content_hash == "abc123"
        assert feature.row_count == 3

    def test_title_falls_back_to_name(self):
        ds = make_dataset()
        del ds.attributes["title"]
        assert extract_feature(ds).title == "s_2009"

    def test_raw_data_not_in_feature(self):
        # The feature is a summary: no attribute should hold sample lists.
        feature = extract_feature(make_dataset())
        for entry in feature.variables:
            assert not hasattr(entry, "values")

"""The HTTP front end: wire contract, error mapping, shutdown races.

What the network face promises (serve/http.py):

* ``GET /search`` returns the same page the in-process service returns,
  as JSON, over kept-alive connections;
* the typed errors map to status codes — ``OverloadedError`` -> 429
  with ``Retry-After``, ``ServiceClosedError`` -> 503, parse errors ->
  400 with a JSON body, unknown routes -> 404 — and *nothing* ever
  escapes as a traceback page or a hung socket;
* shutdown is graceful under concurrent clients: during ``close`` every
  response is a clean 200 or 503, never a 5xx surprise or a hang;
* under publish churn the socket loadgen sees zero errors, snapshot
  versions that never move backwards, and staleness <= 1;
* the observability routes (``/metrics``, ``/healthz`` SLO verdict,
  ``/debug/slow``, the JSONL access log) never raise, never block, and
  stay self-consistent under concurrent scrape-while-serving load —
  each request's counter/histogram touches land atomically on the one
  telemetry handle snapshotted at request start.
"""

from __future__ import annotations

import http.client
import io
import json
import threading
import time

import pytest

from repro.catalog import MemoryCatalog
from repro.catalog.records import DatasetFeature, VariableEntry
from repro.core.qparser import parse_query
from repro.core.query import Query, VariableTerm
from repro.geo import BoundingBox, TimeInterval
from repro.obs import (
    AccessLogWriter,
    SLOConfig,
    SLOTracker,
    Telemetry,
    parse_prometheus_text,
    sample_value,
    validate_trace_lines,
)
from repro.serve import (
    SearchHTTPServer,
    SearchService,
    ServeConfig,
    run_load_http,
    search_payload,
)
from repro.serve.http import RETRY_AFTER_SECONDS


def make_feature(dataset_id: str, row_count: int = 10) -> DatasetFeature:
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(45.0, -124.0, 45.5, -123.5),
        interval=TimeInterval(0.0, 1000.0),
        row_count=row_count,
        source_directory="stations/x",
        variables=[
            VariableEntry.from_written(
                "salinity", "psu", row_count, 0.0, 30.0, 15.0, 2.0
            )
        ],
    )


QUERY = Query(variables=(VariableTerm(name="salinity"),))


@pytest.fixture()
def catalog():
    store = MemoryCatalog()
    store.upsert_many([make_feature(f"d{i}") for i in range(6)])
    return store


@pytest.fixture()
def server(catalog):
    service = SearchService(catalog)
    http_server = SearchHTTPServer(service, port=0).start()
    yield http_server
    http_server.close(timeout=5.0)


def wait_until(condition, timeout: float = 5.0) -> None:
    """Wait for post-response bookkeeping (SLO/flight/access-log runs
    *after* the body is on the wire, so a client's read can return a
    beat before the server-side record lands)."""
    deadline = time.monotonic() + timeout
    while not condition():
        if time.monotonic() > deadline:
            raise AssertionError("bookkeeping never became visible")
        time.sleep(0.005)


def get(server, target: str):
    """One GET; returns (status, headers, parsed JSON body)."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), json.loads(body)
    finally:
        conn.close()


class TestSearchRoute:
    def test_200_page_matches_in_process_service(self, server):
        status, headers, payload = get(server, "/search?q=with+salinity")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        expected = search_payload(
            server.service.search(parse_query("with salinity"))
        )
        # Timing fields differ per request; the page itself must not.
        for key in ("version", "total_matches", "truncated", "results"):
            assert payload[key] == expected[key]
        assert payload["results"], "workload query must match something"
        first = payload["results"][0]
        assert set(first) == {"dataset_id", "score", "breakdown"}
        assert set(first["breakdown"]) == {
            "total", "location", "time", "variables"
        }
        assert payload["queued_seconds"] >= 0.0
        assert payload["total_seconds"] >= 0.0

    def test_limit_caps_the_page(self, server):
        status, _, payload = get(server, "/search?q=with+salinity&limit=2")
        assert status == 200
        assert len(payload["results"]) == 2
        # truncated mirrors the in-process metadata exactly.
        response = server.service.search(parse_query("with salinity"), limit=2)
        assert payload["truncated"] == response.results.truncated
        assert payload["total_matches"] == response.results.total_matches

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(5):
                conn.request("GET", "/search?q=with+salinity")
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert json.loads(body)["results"]
        finally:
            conn.close()


class TestErrorMapping:
    def test_unparseable_query_is_400_bad_query(self, server):
        status, headers, payload = get(
            server, "/search?q=near+inf,+nan+within+100+km"
        )
        assert status == 400
        assert headers["Content-Type"] == "application/json"
        assert payload["code"] == "bad-query"
        assert payload["error"]

    def test_empty_q_is_400(self, server):
        status, _, payload = get(server, "/search")
        assert status == 400
        assert payload["code"] in {"bad-query", "bad-request"}

    def test_non_integer_limit_is_400(self, server):
        status, _, payload = get(server, "/search?q=with+salinity&limit=abc")
        assert status == 400
        assert payload["code"] == "bad-request"
        assert "abc" in payload["error"]

    def test_non_positive_limit_is_400(self, server):
        status, _, payload = get(server, "/search?q=with+salinity&limit=0")
        assert status == 400
        assert payload["code"] == "bad-request"

    def test_unknown_route_is_404(self, server):
        status, _, payload = get(server, "/nope")
        assert status == 404
        assert payload["code"] == "not-found"
        assert "/nope" in payload["error"]

    def test_overload_is_429_with_retry_after(self, catalog):
        service = SearchService(
            catalog, config=ServeConfig(max_concurrency=1, queue_depth=0)
        )
        server = SearchHTTPServer(service, port=0).start()
        hold = threading.Event()
        release = threading.Event()
        engine = service._engine
        original = engine.search

        def blocked(query, limit=10):
            hold.set()
            release.wait(timeout=10)
            return original(query, limit=limit)

        engine.search = blocked
        occupant = threading.Thread(
            target=lambda: service.search(QUERY), daemon=True
        )
        try:
            occupant.start()
            assert hold.wait(timeout=5)  # the only slot is now taken
            status, headers, payload = get(
                server, "/search?q=with+salinity"
            )
            assert status == 429
            assert payload["code"] == "overloaded"
            assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)
        finally:
            release.set()
            occupant.join(timeout=5)
            engine.search = original
            server.close(timeout=5.0)

    def test_closed_service_is_503_with_retry_after(self, server):
        server.service.close(timeout=5.0)
        status, headers, payload = get(server, "/search?q=with+salinity")
        assert status == 503
        assert payload["code"] == "closed"
        assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)


class TestOperationalRoutes:
    def test_healthz_ok(self, server):
        status, _, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["closed"] is False
        assert payload["snapshot_version"] == server.service.snapshot_version
        assert payload["staleness"] == 0

    def test_healthz_closed_is_503(self, server):
        server.service.close(timeout=5.0)
        status, _, payload = get(server, "/healthz")
        assert status == 503
        assert payload["status"] == "closed"
        assert payload["closed"] is True

    def test_telemetry_snapshot(self, server):
        assert get(server, "/search?q=with+salinity")[0] == 200
        status, _, payload = get(server, "/telemetry")
        assert status == 200
        assert payload["counters"]["serve.requests"] >= 1
        assert payload["counters"]["http.requests"] >= 1
        assert payload["counters"]["http.status.200"] >= 1
        assert "spans" in payload


class TestShutdown:
    def test_close_reports_drained_and_refuses_late_requests(self, catalog):
        service = SearchService(catalog)
        server = SearchHTTPServer(service, port=0).start()
        assert get(server, "/search?q=with+salinity")[0] == 200
        assert server.close(timeout=5.0) is True
        # The listening socket is gone: connecting now must fail fast,
        # not hang.
        host, port = server.address
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(host, port, timeout=2)
            conn.request("GET", "/healthz")
            conn.getresponse()

    def test_concurrent_clients_see_only_200_or_503_during_close(
        self, catalog
    ):
        """The shutdown race, over real sockets.

        Clients hammer kept-alive connections while close() runs.  The
        seed bug released the shard executor before in-flight sharded
        queries finished, which surfaced here as 500s; the contract is
        that every response on the wire is a clean 200 or 503 and every
        client thread terminates.
        """
        service = SearchService(
            catalog,
            config=ServeConfig(
                max_concurrency=4,
                queue_depth=8,
                shard_workers=2,
                shard_threshold=1,  # force sharded scoring per query
            ),
        )
        server = SearchHTTPServer(service, port=0).start()
        host, port = server.address
        statuses: list[int] = []
        lock = threading.Lock()
        stop = threading.Event()

        def client() -> None:
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                while not stop.is_set():
                    try:
                        conn.request("GET", "/search?q=with+salinity")
                        response = conn.getresponse()
                        response.read()
                    except (OSError, http.client.HTTPException):
                        return  # socket died after close: fine
                    with lock:
                        statuses.append(response.status)
                    if response.status == 503:
                        return
            finally:
                conn.close()

        threads = [
            threading.Thread(target=client, daemon=True) for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # let the load reach the service
        assert server.close(timeout=10.0) is True
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), "client hung through shutdown"
        assert statuses, "no request completed before the close"
        assert set(statuses) <= {200, 503}, f"dirty statuses: {statuses}"


class TestChurnOverSockets:
    def test_zero_errors_monotonic_versions_staleness_at_most_one(
        self, catalog
    ):
        """Socket load under publish churn (satellite of DESIGN note 16).

        A writer republishes batches (one version bump each) and
        refreshes the service after every publish; the socket loadgen
        must complete with zero errors, statuses drawn only from
        {200, 429}, versions that never regress within a client, and
        staleness bounded by 1.
        """
        service = SearchService(
            catalog,
            config=ServeConfig(max_concurrency=8, queue_depth=32),
        )
        server = SearchHTTPServer(service, port=0).start()
        stop = threading.Event()

        def writer() -> None:
            round_number = 0
            while not stop.is_set():
                round_number += 1
                batch = [
                    make_feature(f"d{i}", row_count=100 + round_number)
                    for i in range(3)
                ]
                catalog.apply_batch(batch, ())
                service.refresh()
                time.sleep(0.002)

        publisher = threading.Thread(target=writer, daemon=True)
        publisher.start()
        try:
            report = run_load_http(
                server.url,
                ["with salinity", "near 45.2, -123.8 within 100 km"],
                clients=4,
                requests_per_client=15,
                live_version=lambda: catalog.version,
                seed=7,
            )
        finally:
            stop.set()
            publisher.join(timeout=5)
            server.close(timeout=5.0)
        assert report.transport == "http"
        assert report.completed == 4 * 15
        assert report.errors == 0
        assert set(report.status_counts) <= {"200", "429"}
        assert report.version_regressions == 0
        assert report.max_staleness <= 1
        assert len(report.snapshot_versions) >= 1


class TestMetricsRoute:
    def test_metrics_round_trips_through_the_parser(self, server):
        assert get(server, "/search?q=with+salinity")[0] == 200
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain"
            )
        finally:
            conn.close()
        families = parse_prometheus_text(body)
        assert sample_value(families, "repro_http_requests_total") >= 1
        assert sample_value(families, "repro_serve_requests_total") >= 1
        assert "repro_http_request_seconds" in families

    def test_scrape_body_is_internally_consistent(self, server):
        """Inside one scrape: histogram ``_count`` == ``http.requests``.

        Both move in the same ``_count_response`` step *after* the
        response body is rendered, so every scrape lags itself by
        exactly one request on every metric equally.
        """
        for _ in range(4):
            assert get(server, "/search?q=with+salinity")[0] == 200
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            body = conn.getresponse().read().decode("utf-8")
        finally:
            conn.close()
        families = parse_prometheus_text(body)
        requests = sample_value(families, "repro_http_requests_total")
        histogram_count = sample_value(
            families, "repro_http_request_seconds_count"
        )
        assert requests == histogram_count == 4


class TestHealthzSLO:
    def test_healthz_carries_the_slo_report(self, server):
        assert get(server, "/search?q=with+salinity")[0] == 200
        wait_until(
            lambda: server.slo.window_report(60)["requests"] >= 1
        )
        status, _, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        slo = payload["slo"]
        assert slo["status"] == "ok"
        assert set(slo["windows"]) == {"1m", "5m", "30m"}
        assert slo["windows"]["1m"]["requests"] >= 1
        assert slo["config"]["latency_p95_seconds"] > 0

    def test_breached_slo_degrades_healthz_but_stays_200(self, catalog):
        """Degraded is still serving: LBs eject on 503, operators page
        on the SLO field."""
        service = SearchService(catalog)
        slo = SLOTracker(SLOConfig(latency_p95_seconds=1e-9))
        server = SearchHTTPServer(service, port=0, slo=slo).start()
        try:
            assert get(server, "/search?q=with+salinity")[0] == 200
            wait_until(lambda: slo.window_report(60)["requests"] >= 1)
            status, _, payload = get(server, "/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            assert "latency_p95" in (
                payload["slo"]["windows"]["1m"]["breached"]
            )
        finally:
            server.close(timeout=5.0)

    def test_scrapes_do_not_enter_the_slo_window(self, server):
        for _ in range(3):
            assert get(server, "/healthz")[0] == 200
        _, _, payload = get(server, "/healthz")
        assert payload["slo"]["windows"]["1m"]["requests"] == 0


class TestDebugSlowRoute:
    def test_search_requests_land_in_the_flight_ring(self, server):
        assert get(server, "/search?q=with+salinity")[0] == 200
        wait_until(lambda: server.flight.captured >= 1)
        status, _, payload = get(server, "/debug/slow")
        assert status == 200
        assert payload["captured"] >= 1
        entry = payload["slowest"][0]
        assert entry["query"] == "with salinity"
        assert entry["status"] == 200
        assert entry["request_id"].startswith("req-")
        span_names = {span["name"] for span in entry["spans"]}
        assert "http.request" in span_names
        assert "serve.request" in span_names

    def test_scrapes_themselves_stay_out_of_the_ring(self, server):
        for _ in range(3):
            assert get(server, "/debug/slow")[0] == 200
        _, _, payload = get(server, "/debug/slow")
        assert payload["captured"] == 0


class TestAccessLog:
    def test_every_request_logs_one_validating_line(self, catalog):
        service = SearchService(catalog)
        buffer = io.StringIO()
        access_log = AccessLogWriter(buffer)
        server = SearchHTTPServer(
            service, port=0, access_log=access_log
        ).start()
        try:
            assert get(server, "/search?q=with+salinity")[0] == 200
            assert get(server, "/healthz")[0] == 200
            assert get(server, "/nope")[0] == 404
            wait_until(lambda: access_log.lines == 4)  # meta + 3
        finally:
            server.close(timeout=5.0)
        lines = buffer.getvalue().splitlines()
        assert validate_trace_lines(lines) == []
        events = [json.loads(line) for line in lines]
        assert events[0]["type"] == "meta"
        # Bookkeeping is post-response, so lines from different
        # connections may interleave; request ids restore the order.
        access = sorted(
            (e for e in events if e["type"] == "access"),
            key=lambda e: e["request_id"],
        )
        assert [e["route"] for e in access] == [
            "/search", "/healthz", "/nope"
        ]
        assert [e["status"] for e in access] == [200, 200, 404]
        search_line = access[0]
        assert search_line["request_id"] == "req-000001"
        assert search_line["latency_seconds"] >= 0.0
        assert search_line["cache_hit"] is False
        assert search_line["results"] >= 1


class TestTelemetrySwapAtomicity:
    def test_in_flight_request_counts_on_its_snapshotted_handle(
        self, catalog
    ):
        """A mid-request ``service.telemetry`` swap cannot split one
        request's increments across registries: the handler snapshots
        the handle once at request start and counts everything on it at
        the response exit point."""
        service = SearchService(catalog)
        original = service.telemetry
        server = SearchHTTPServer(service, port=0).start()
        hold = threading.Event()
        release = threading.Event()
        engine = service._engine
        original_search = engine.search

        def blocked(query, limit=10):
            hold.set()
            release.wait(timeout=10)
            return original_search(query, limit=limit)

        engine.search = blocked
        replacement = Telemetry()
        result: dict = {}

        def client() -> None:
            result["status"] = get(server, "/search?q=with+salinity")[0]

        thread = threading.Thread(target=client, daemon=True)
        try:
            thread.start()
            assert hold.wait(timeout=5)
            service.telemetry = replacement  # the swap, mid-request
            release.set()
            thread.join(timeout=10)
            assert result["status"] == 200
        finally:
            release.set()
            engine.search = original_search
            service.telemetry = original
            server.close(timeout=5.0)
        assert original.counter("http.requests") == 1
        assert original.counter("http.status.200") == 1
        assert (
            original.snapshot()["histograms"]["http.request_seconds"][
                "count"
            ]
            == 1
        )
        assert replacement.counter("http.requests") == 0
        assert replacement.counter("http.status.200") == 0


class TestScrapeWhileServing:
    def test_concurrent_scrapes_never_fail_and_converge(self, catalog):
        """Scrape-while-serving: /metrics and /telemetry under load.

        Scraper threads hammer both endpoints while search clients
        serve; every scrape must be a clean 200 whose body parses, and
        at quiescence the final scrape shows histogram ``_count`` ==
        ``http.requests`` == the sum of all ``http.status.*``."""
        service = SearchService(
            catalog, config=ServeConfig(max_concurrency=8, queue_depth=32)
        )
        server = SearchHTTPServer(service, port=0).start()
        host, port = server.address
        failures: list[str] = []
        lock = threading.Lock()
        stop = threading.Event()

        def fail(message: str) -> None:
            with lock:
                failures.append(message)

        def searcher() -> None:
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                for _ in range(25):
                    conn.request("GET", "/search?q=with+salinity")
                    response = conn.getresponse()
                    response.read()
                    if response.status not in (200, 429):
                        fail(f"search status {response.status}")
            except Exception as exc:
                fail(f"searcher raised {exc!r}")
            finally:
                conn.close()

        def scraper(target: str) -> None:
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                while not stop.is_set():
                    conn.request("GET", target)
                    response = conn.getresponse()
                    body = response.read().decode("utf-8")
                    if response.status != 200:
                        fail(f"{target} status {response.status}")
                    elif target == "/metrics":
                        parse_prometheus_text(body)  # must never raise
                    else:
                        json.loads(body)
            except Exception as exc:
                fail(f"scraper {target} raised {exc!r}")
            finally:
                conn.close()

        searchers = [
            threading.Thread(target=searcher, daemon=True)
            for _ in range(4)
        ]
        scrapers = [
            threading.Thread(target=scraper, args=(target,), daemon=True)
            for target in ("/metrics", "/telemetry")
        ]
        for thread in searchers + scrapers:
            thread.start()
        for thread in searchers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "searcher hung"
        stop.set()
        for thread in scrapers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "scraper hung or blocked"
        assert failures == [], failures

        # Quiescence: one final scrape over a fresh connection.  Its
        # body excludes only itself, identically on every metric.
        _, _, snapshot = get(server, "/telemetry")
        counters = snapshot["counters"]
        status_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("http.status.")
        )
        histogram_count = snapshot["histograms"]["http.request_seconds"][
            "count"
        ]
        assert counters["http.requests"] == status_total
        assert counters["http.requests"] == histogram_count
        server.close(timeout=5.0)

"""Unit tests for both catalog stores (memory and SQLite), parametrized
so the two implementations prove behaviourally identical."""

import pytest

from repro.catalog import (
    DatasetFeature,
    DatasetNotFoundError,
    MemoryCatalog,
    SqliteCatalog,
    VariableEntry,
)
from repro.geo import BoundingBox, TimeInterval


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield MemoryCatalog()
    else:
        catalog = SqliteCatalog()
        yield catalog
        catalog.close()


def make_feature(dataset_id="d1", variable_names=("salinity", "depth")):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"Dataset {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(46.0, -124.0, 46.2, -123.8),
        interval=TimeInterval(100.0, 200.0),
        row_count=50,
        source_directory="stations/x",
        attributes={"station": "x", "title": f"Dataset {dataset_id}"},
        variables=[
            VariableEntry.from_written(name, "PSU", 50, 0.0, 30.0, 15.0, 2.0)
            for name in variable_names
        ],
    )


class TestCrud:
    def test_upsert_get_roundtrip(self, store):
        feature = make_feature()
        store.upsert(feature)
        loaded = store.get("d1")
        assert loaded.dataset_id == "d1"
        assert loaded.title == "Dataset d1"
        assert loaded.bbox == feature.bbox
        assert loaded.interval == feature.interval
        assert loaded.attributes == feature.attributes
        assert [v.name for v in loaded.variables] == ["salinity", "depth"]

    def test_get_missing_raises(self, store):
        with pytest.raises(DatasetNotFoundError):
            store.get("nope")

    def test_upsert_replaces(self, store):
        store.upsert(make_feature())
        updated = make_feature(variable_names=("turbidity",))
        store.upsert(updated)
        assert len(store) == 1
        assert store.get("d1").variable_names() == ["turbidity"]

    def test_remove(self, store):
        store.upsert(make_feature())
        store.remove("d1")
        assert len(store) == 0

    def test_remove_missing_raises(self, store):
        with pytest.raises(DatasetNotFoundError):
            store.remove("nope")

    def test_dataset_ids_sorted(self, store):
        for dataset_id in ["b", "a", "c"]:
            store.upsert(make_feature(dataset_id))
        assert store.dataset_ids() == ["a", "b", "c"]

    def test_clear(self, store):
        store.upsert(make_feature())
        store.clear()
        assert len(store) == 0
        assert store.dataset_ids() == []

    def test_contains(self, store):
        store.upsert(make_feature())
        assert store.contains("d1")
        assert not store.contains("d2")

    def test_get_returns_copy(self, store):
        store.upsert(make_feature())
        loaded = store.get("d1")
        loaded.variables[0].name = "mutated"
        assert store.get("d1").variables[0].name == "salinity"

    def test_iteration_yields_all(self, store):
        store.upsert(make_feature("a"))
        store.upsert(make_feature("b"))
        assert [f.dataset_id for f in store] == ["a", "b"]


class TestBulkOperations:
    def test_rename_variables(self, store):
        store.upsert(make_feature("a"))
        store.upsert(make_feature("b"))
        changed = store.rename_variables(
            {"salinity": "practical_salinity"}, resolution="test"
        )
        assert changed == 2
        for dataset_id in ("a", "b"):
            entry = store.get(dataset_id).variable("practical_salinity")
            assert entry.written_name == "salinity"
            assert entry.resolution == "test"

    def test_rename_noop_mapping(self, store):
        store.upsert(make_feature())
        assert store.rename_variables({"salinity": "salinity"}) == 0
        assert store.rename_variables({"absent": "x"}) == 0

    def test_rename_units(self, store):
        store.upsert(make_feature())
        changed = store.rename_units({"PSU": "psu-preferred"})
        assert changed == 2
        assert store.get("d1").variables[0].unit == "psu-preferred"

    def test_set_excluded(self, store):
        store.upsert(make_feature())
        assert store.set_excluded(["depth"]) == 1
        assert store.get("d1").variable("depth").excluded
        # Idempotent: already excluded entries do not count again.
        assert store.set_excluded(["depth"]) == 0

    def test_set_excluded_off(self, store):
        store.upsert(make_feature())
        store.set_excluded(["depth"])
        assert store.set_excluded(["depth"], excluded=False) == 1
        assert not store.get("d1").variable("depth").excluded

    def test_set_ambiguous(self, store):
        store.upsert(make_feature())
        assert store.set_ambiguous(["salinity"]) == 1
        assert store.get("d1").variable("salinity").ambiguous

    def test_variable_name_counts(self, store):
        store.upsert(make_feature("a"))
        store.upsert(make_feature("b", variable_names=("salinity",)))
        counts = store.variable_name_counts()
        assert counts["salinity"] == 2
        assert counts["depth"] == 1

    def test_iter_variables(self, store):
        store.upsert(make_feature())
        pairs = list(store.iter_variables())
        assert len(pairs) == 2
        assert pairs[0][0] == "d1"

    def test_copy_into(self, store):
        store.upsert(make_feature("a"))
        store.upsert(make_feature("b"))
        target = MemoryCatalog()
        target.upsert(make_feature("stale"))
        count = store.copy_into(target)
        assert count == 2
        assert target.dataset_ids() == ["a", "b"]


class TestSqliteSpecific:
    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as catalog:
            catalog.upsert(make_feature())
        with SqliteCatalog(path) as catalog:
            assert catalog.get("d1").title == "Dataset d1"

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        with SqliteCatalog(path) as catalog:
            catalog.upsert(make_feature())
        with pytest.raises(Exception):
            catalog.dataset_ids()

    def test_variable_order_preserved(self):
        with SqliteCatalog() as catalog:
            names = tuple(f"v{i:02d}" for i in range(10))
            catalog.upsert(make_feature(variable_names=names))
            assert tuple(catalog.get("d1").variable_names()) == names

"""Unit tests for repro.text.tokenize."""

import pytest

from repro.text import (
    ngrams,
    normalize_name,
    split_identifier,
    strip_accents,
    words,
)


class TestSplitIdentifier:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("air_temperature", ["air", "temperature"]),
            ("airTemp", ["air", "temp"]),
            ("AIR-TEMP", ["air", "temp"]),
            ("air.temp", ["air", "temp"]),
            ("fluores375", ["fluores", "375"]),
            ("airTemp_2m", ["air", "temp", "2", "m"]),
            ("HTTPServer", ["http", "server"]),
            ("", []),
            ("   ", []),
            ("a", ["a"]),
        ],
    )
    def test_cases(self, name, expected):
        assert split_identifier(name) == expected

    def test_multiple_separators_collapse(self):
        assert split_identifier("air__temp--2") == ["air", "temp", "2"]


class TestNormalizeName:
    def test_conventions_converge(self):
        assert (
            normalize_name("Air Temperature")
            == normalize_name("airTemperature")
            == normalize_name("AIR_TEMPERATURE")
            == "air_temperature"
        )

    def test_accents_removed(self):
        assert normalize_name("Température") == "temperature"

    def test_empty(self):
        assert normalize_name("") == ""


class TestStripAccents:
    def test_basic(self):
        assert strip_accents("Salinité") == "Salinite"

    def test_no_accents_unchanged(self):
        assert strip_accents("salinity") == "salinity"


class TestWords:
    def test_splits_and_lowers(self):
        assert words("Observations near the Columbia River!") == [
            "observations", "near", "the", "columbia", "river",
        ]

    def test_keeps_digits(self):
        assert words("mid-2010 data") == ["mid", "2010", "data"]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_too_short_returns_empty(self):
        assert ngrams("a", 2) == []

    def test_exact_length(self):
        assert ngrams("ab", 2) == ["ab"]

    def test_zero_n_raises(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

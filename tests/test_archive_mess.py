"""Unit tests for repro.archive.mess (the semantic-mess injector)."""

import pytest

from repro.archive import (
    CATEGORIES,
    CONTEXT_COLLAPSE,
    VOCABULARY,
    ArchiveSpec,
    MessSpec,
    Platform,
    category_counts,
    generate_archive,
    inject_mess,
    truth_index,
    uniform_mess_spec,
)


class TestMessSpec:
    def test_uniform_spec_rates(self):
        spec = uniform_mess_spec(0.3)
        assert spec.clean == pytest.approx(0.7)
        assert spec.misspelling == pytest.approx(0.05)

    def test_uniform_spec_bad_rate_raises(self):
        with pytest.raises(ValueError):
            uniform_mess_spec(1.5)
        with pytest.raises(ValueError):
            uniform_mess_spec(-0.1)

    def test_rename_weights_cover_categories(self):
        weights = dict(MessSpec().rename_weights())
        assert set(weights) == {
            "clean", "misspelling", "synonym", "abbreviation",
            "ambiguous", "context", "multilevel",
        }


class TestInjection:
    def test_deterministic(self):
        spec = ArchiveSpec(stations=3, cruises=2, casts=3, gliders=1,
                           met_stations=1, seed=42)
        a = inject_mess(generate_archive(spec), MessSpec(seed=7))
        b = inject_mess(generate_archive(spec), MessSpec(seed=7))
        assert [d.variable_names() for d in a.datasets] == [
            d.variable_names() for d in b.datasets
        ]

    def test_truth_covers_every_column(self, messy_archive):
        for ds in messy_archive.datasets:
            truth_names = {vt.written_name for vt in ds.truth.variables}
            assert truth_names == set(ds.variable_names())

    def test_truth_canonicals_valid(self, messy_archive):
        for __, vt in truth_index(messy_archive).items():
            if vt.canonical is not None:
                assert vt.canonical in VOCABULARY

    def test_categories_from_known_set(self, messy_archive):
        for __, vt in truth_index(messy_archive).items():
            assert vt.category in CATEGORIES

    def test_no_duplicate_names_within_dataset(self, messy_archive):
        for ds in messy_archive.datasets:
            names = ds.variable_names()
            assert len(names) == len(set(names)), ds.path

    def test_misspellings_differ_from_canonical(self, messy_archive):
        for __, vt in truth_index(messy_archive).items():
            if vt.category == "misspelling":
                assert vt.written_name != vt.canonical

    def test_context_collapse_uses_bare_names(self, messy_archive):
        for __, vt in truth_index(messy_archive).items():
            if vt.category == "context":
                assert vt.written_name == CONTEXT_COLLAPSE[vt.canonical]

    def test_excessive_marked_auxiliary(self, messy_archive):
        for __, vt in truth_index(messy_archive).items():
            if vt.category == "excessive":
                assert vt.auxiliary

    def test_phantom_temp_has_no_canonical(self, messy_archive):
        phantoms = [
            vt
            for __, vt in truth_index(messy_archive).items()
            if vt.category == "ambiguous" and vt.canonical is None
        ]
        for vt in phantoms:
            assert vt.written_name == "temp"

    def test_zero_rate_keeps_everything_clean(self):
        spec = ArchiveSpec(stations=2, cruises=1, casts=1, gliders=1,
                           met_stations=1, seed=3)
        archive = inject_mess(generate_archive(spec), uniform_mess_spec(0.0))
        counts = category_counts(archive)
        renamed = sum(
            counts[c] for c in counts if c not in ("clean", "excessive")
        )
        assert renamed == 0
        assert counts["excessive"] == 0

    def test_high_rate_messes_most_columns(self):
        spec = ArchiveSpec(stations=4, cruises=2, casts=3, gliders=1,
                           met_stations=2, seed=3)
        archive = inject_mess(generate_archive(spec), uniform_mess_spec(0.9))
        counts = category_counts(archive)
        total = sum(counts.values())
        assert counts["clean"] < total * 0.5

    def test_category_counts_sums_to_column_count(self, messy_archive):
        counts = category_counts(messy_archive)
        total_columns = sum(
            len(ds.table.columns) for ds in messy_archive.datasets
        )
        assert sum(counts.values()) == total_columns


class TestMetPlatformContext:
    def test_met_context_collapse_is_air_variable(self):
        spec = ArchiveSpec(stations=0, cruises=0, casts=0, gliders=0,
                           met_stations=8, seed=11)
        # Heavy context rate to guarantee at least one collapse.
        mess = MessSpec(clean=0.0, misspelling=0.0, synonym=0.0,
                        abbreviation=0.0, ambiguous=0.0, context=1.0,
                        multilevel=0.0, seed=11)
        archive = inject_mess(generate_archive(spec), mess)
        collapsed = [
            vt
            for __, vt in truth_index(archive).items()
            if vt.category == "context"
        ]
        assert collapsed, "expected at least one context collapse"
        for vt in collapsed:
            assert vt.canonical.startswith(("air_", "wind_"))

"""Unit tests for repro.refine.table."""

import pytest

from repro.refine import ColumnError, RefineTable


@pytest.fixture()
def table():
    t = RefineTable(columns=["field", "unit"])
    t.append_row({"field": "airtemp", "unit": "C"})
    t.append_row({"field": "salinity", "unit": "PSU"})
    t.append_row({"field": "airtemp", "unit": "degC"})
    return t


class TestStructure:
    def test_duplicate_columns_raise(self):
        with pytest.raises(ValueError):
            RefineTable(columns=["a", "a"])

    def test_add_column(self, table):
        table.add_column("source", values=["a", "b", "c"])
        assert table.rows[0]["source"] == "a"

    def test_add_column_defaults_none(self, table):
        table.add_column("flag")
        assert table.rows[0]["flag"] is None

    def test_add_column_duplicate_raises(self, table):
        with pytest.raises(ValueError):
            table.add_column("field")

    def test_add_column_wrong_length_raises(self, table):
        with pytest.raises(ValueError):
            table.add_column("x", values=["only-one"])

    def test_remove_column(self, table):
        table.remove_column("unit")
        assert table.columns == ["field"]
        assert "unit" not in table.rows[0]

    def test_remove_missing_raises(self, table):
        with pytest.raises(ColumnError):
            table.remove_column("ghost")

    def test_rename_column(self, table):
        table.rename_column("field", "name")
        assert table.columns == ["name", "unit"]
        assert table.rows[0]["name"] == "airtemp"

    def test_rename_to_existing_raises(self, table):
        with pytest.raises(ValueError):
            table.rename_column("field", "unit")


class TestRows:
    def test_append_fills_missing(self, table):
        table.append_row({"field": "x"})
        assert table.rows[-1]["unit"] is None

    def test_append_unknown_column_raises(self, table):
        with pytest.raises(ValueError):
            table.append_row({"ghost": 1})

    def test_column_values(self, table):
        assert table.column_values("field") == [
            "airtemp", "salinity", "airtemp",
        ]

    def test_distinct_values(self, table):
        assert table.distinct_values("field") == {
            "airtemp": 2, "salinity": 1,
        }

    def test_remove_rows(self, table):
        removed = table.remove_rows(lambda r: r["field"] == "airtemp")
        assert removed == 2
        assert len(table) == 1


class TestTransform:
    def test_transform_column(self, table):
        changed = table.transform_column(
            "field", lambda v, row: v.upper()
        )
        assert changed == 3
        assert table.rows[0]["field"] == "AIRTEMP"

    def test_transform_counts_only_changes(self, table):
        changed = table.transform_column(
            "field", lambda v, row: v  # identity
        )
        assert changed == 0

    def test_transform_with_filter(self, table):
        changed = table.transform_column(
            "field",
            lambda v, row: "renamed",
            row_filter=lambda row: row["unit"] == "PSU",
        )
        assert changed == 1
        assert table.rows[1]["field"] == "renamed"

    def test_transform_missing_column_raises(self, table):
        with pytest.raises(ColumnError):
            table.transform_column("ghost", lambda v, r: v)


class TestCopy:
    def test_copy_independent(self, table):
        clone = table.copy()
        clone.rows[0]["field"] = "mutated"
        clone.columns.append("extra")
        assert table.rows[0]["field"] == "airtemp"
        assert "extra" not in table.columns

    def test_iteration(self, table):
        assert len(list(table)) == 3

"""Property test: the two catalog stores are observably identical.

Random operation sequences applied to a MemoryCatalog and a SqliteCatalog
must leave both in the same observable state — ids, features, variable
names, exclusion flags.  This is what lets the rest of the system treat
``CatalogStore`` as one thing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    DatasetFeature,
    MemoryCatalog,
    SqliteCatalog,
    VariableEntry,
)
from repro.geo import BoundingBox, TimeInterval

ids = st.sampled_from(["a", "b", "c", "d"])
names = st.sampled_from(["salinity", "temp", "turbidity", "qa_level"])


def make_feature(dataset_id: str, variable_names: tuple[str, ...]):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"T {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(46.0, -124.0, 46.2, -123.8),
        interval=TimeInterval(0.0, 100.0),
        row_count=5,
        source_directory="d",
        attributes={"k": dataset_id},
        variables=[
            VariableEntry.from_written(n, "u", 5, 0.0, 1.0, 0.5, 0.1)
            for n in variable_names
        ],
    )


operations = st.one_of(
    st.tuples(st.just("upsert"), ids,
              st.lists(names, min_size=1, max_size=3, unique=True)),
    st.tuples(st.just("remove"), ids),
    st.tuples(st.just("upsert_many"),
              st.lists(st.tuples(ids, st.lists(names, min_size=1,
                                               max_size=2, unique=True)),
                       max_size=3)),
    st.tuples(st.just("remove_many"),
              st.lists(ids, max_size=3)),
    st.tuples(st.just("rename"), names, names),
    st.tuples(st.just("exclude"), names),
    st.tuples(st.just("unexclude"), names),
    st.tuples(st.just("ambiguous"), names),
    st.tuples(st.just("rename_units"), st.just("u"), st.just("v")),
)


def apply(store, op):
    kind = op[0]
    if kind == "upsert":
        store.upsert(make_feature(op[1], tuple(op[2])))
    elif kind == "remove":
        try:
            store.remove(op[1])
        except KeyError:
            return "missing"
    elif kind == "upsert_many":
        return store.upsert_many(
            make_feature(i, tuple(n)) for i, n in op[1]
        )
    elif kind == "remove_many":
        return store.remove_many(op[1])
    elif kind == "rename":
        return store.rename_variables({op[1]: op[2]}, resolution="p")
    elif kind == "exclude":
        return store.set_excluded([op[1]], True)
    elif kind == "unexclude":
        return store.set_excluded([op[1]], False)
    elif kind == "ambiguous":
        return store.set_ambiguous([op[1]], True)
    elif kind == "rename_units":
        return store.rename_units({op[1]: op[2]})
    return None


def observable(store):
    state = {}
    for dataset_id in store.dataset_ids():
        feature = store.get(dataset_id)
        state[dataset_id] = [
            (v.written_name, v.name, v.unit, v.excluded, v.ambiguous,
             v.resolution)
            for v in feature.variables
        ]
    return state


class TestStoreEquivalence:
    @given(st.lists(operations, min_size=0, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_memory_and_sqlite_agree(self, ops):
        memory = MemoryCatalog()
        with SqliteCatalog() as sqlite:
            for op in ops:
                result_m = apply(memory, op)
                result_s = apply(sqlite, op)
                assert result_m == result_s, op
            assert observable(memory) == observable(sqlite)
            assert (
                memory.variable_name_counts()
                == sqlite.variable_name_counts()
            )

    @given(st.lists(operations, min_size=0, max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_file_backed_sqlite_agrees(self, ops):
        """The WAL journal mode must not change observable behaviour."""
        import os
        import tempfile

        memory = MemoryCatalog()
        fd, path = tempfile.mkstemp(suffix=".db")
        os.close(fd)
        os.unlink(path)
        try:
            with SqliteCatalog(path) as sqlite:
                (mode,) = sqlite._conn.execute(
                    "PRAGMA journal_mode"
                ).fetchone()
                assert mode == "wal"
                for op in ops:
                    assert apply(memory, op) == apply(sqlite, op), op
                assert observable(memory) == observable(sqlite)
        finally:
            for suffix in ("", "-wal", "-shm"):
                if os.path.exists(path + suffix):
                    os.unlink(path + suffix)


def each_store():
    yield MemoryCatalog()
    yield SqliteCatalog()


class TestBatchOperations:
    def test_batch_matches_looped_singles(self):
        features = [
            make_feature("a", ("salinity", "temp")),
            make_feature("b", ("turbidity",)),
            make_feature("c", ("qa_level",)),
        ]
        for batched, looped in zip(each_store(), each_store()):
            assert batched.upsert_many(f.copy() for f in features) == 3
            for feature in features:
                looped.upsert(feature.copy())
            assert observable(batched) == observable(looped)
            assert batched.remove_many(["a", "c", "ghost"]) == 2
            for dataset_id in ["a", "c"]:
                looped.remove(dataset_id)
            assert observable(batched) == observable(looped)

    def test_features_agrees_with_singles(self):
        for store in each_store():
            store.upsert_many(
                make_feature(i, ("salinity",)) for i in ("b", "a", "c")
            )
            bulk = list(store.features())
            assert [f.dataset_id for f in bulk] == ["a", "b", "c"]
            singles = [store.get(i) for i in store.dataset_ids()]
            assert [observable_feature(f) for f in bulk] == [
                observable_feature(f) for f in singles
            ]

    def test_one_version_bump_per_batch(self):
        """PR-1 cache semantics: a publish batch invalidates ONCE."""
        for store in each_store():
            before = store.version
            store.upsert_many(
                make_feature(i, ("temp",)) for i in ("a", "b", "c", "d")
            )
            assert store.version == before + 1
            before = store.version
            assert store.remove_many(["a", "b"]) == 2
            assert store.version == before + 1

    def test_empty_batches_do_not_bump(self):
        for store in each_store():
            store.upsert(make_feature("a", ("temp",)))
            before = store.version
            assert store.upsert_many([]) == 0
            assert store.remove_many([]) == 0
            assert store.remove_many(["ghost"]) == 0
            assert store.version == before


def observable_feature(feature):
    return (
        feature.dataset_id,
        [(v.written_name, v.name, v.unit) for v in feature.variables],
    )

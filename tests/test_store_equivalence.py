"""Property test: the two catalog stores are observably identical.

Random operation sequences applied to a MemoryCatalog and a SqliteCatalog
must leave both in the same observable state — ids, features, variable
names, exclusion flags.  This is what lets the rest of the system treat
``CatalogStore`` as one thing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import (
    DatasetFeature,
    MemoryCatalog,
    SqliteCatalog,
    VariableEntry,
)
from repro.geo import BoundingBox, TimeInterval

ids = st.sampled_from(["a", "b", "c", "d"])
names = st.sampled_from(["salinity", "temp", "turbidity", "qa_level"])


def make_feature(dataset_id: str, variable_names: tuple[str, ...]):
    return DatasetFeature(
        dataset_id=dataset_id,
        title=f"T {dataset_id}",
        platform="station",
        file_format="csv",
        bbox=BoundingBox(46.0, -124.0, 46.2, -123.8),
        interval=TimeInterval(0.0, 100.0),
        row_count=5,
        source_directory="d",
        attributes={"k": dataset_id},
        variables=[
            VariableEntry.from_written(n, "u", 5, 0.0, 1.0, 0.5, 0.1)
            for n in variable_names
        ],
    )


operations = st.one_of(
    st.tuples(st.just("upsert"), ids,
              st.lists(names, min_size=1, max_size=3, unique=True)),
    st.tuples(st.just("remove"), ids),
    st.tuples(st.just("rename"), names, names),
    st.tuples(st.just("exclude"), names),
    st.tuples(st.just("unexclude"), names),
    st.tuples(st.just("ambiguous"), names),
    st.tuples(st.just("rename_units"), st.just("u"), st.just("v")),
)


def apply(store, op):
    kind = op[0]
    if kind == "upsert":
        store.upsert(make_feature(op[1], tuple(op[2])))
    elif kind == "remove":
        try:
            store.remove(op[1])
        except KeyError:
            return "missing"
    elif kind == "rename":
        return store.rename_variables({op[1]: op[2]}, resolution="p")
    elif kind == "exclude":
        return store.set_excluded([op[1]], True)
    elif kind == "unexclude":
        return store.set_excluded([op[1]], False)
    elif kind == "ambiguous":
        return store.set_ambiguous([op[1]], True)
    elif kind == "rename_units":
        return store.rename_units({op[1]: op[2]})
    return None


def observable(store):
    state = {}
    for dataset_id in store.dataset_ids():
        feature = store.get(dataset_id)
        state[dataset_id] = [
            (v.written_name, v.name, v.unit, v.excluded, v.ambiguous,
             v.resolution)
            for v in feature.variables
        ]
    return state


class TestStoreEquivalence:
    @given(st.lists(operations, min_size=0, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_memory_and_sqlite_agree(self, ops):
        memory = MemoryCatalog()
        with SqliteCatalog() as sqlite:
            for op in ops:
                result_m = apply(memory, op)
                result_s = apply(sqlite, op)
                assert result_m == result_s, op
            assert observable(memory) == observable(sqlite)
            assert (
                memory.variable_name_counts()
                == sqlite.variable_name_counts()
            )

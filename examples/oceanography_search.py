"""Oceanography search scenarios: the queries the paper's intro motivates.

Four scientists, four information needs:

1. An estuary ecologist wants dissolved oxygen near a station.
2. A bio-optics researcher asks for *fluorescence* — an inner concept
   that must expand to fluores375/fluores400/chlorophyll via the
   generated hierarchy.
3. A modeler needs anything in a shelf region during one cruise season
   (region + time, no variable).
4. A data manager compares ranked search against the boolean portal
   baseline on a query no dataset fully satisfies.

Usage::

    python examples/oceanography_search.py
"""

from datetime import datetime

from repro import (
    BoundingBox,
    DataNearHere,
    GeoPoint,
    Query,
    TimeInterval,
    VariableTerm,
)
from repro.archive import ArchiveSpec, messy_archive_fixture


def show(title: str, page: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(page)


def main() -> None:
    fs, __, ___ = messy_archive_fixture(
        spec=ArchiveSpec(stations=10, cruises=8, casts=12, gliders=4,
                         met_stations=3, seed=17)
    )
    system = DataNearHere(fs)
    system.wrangle()

    # 1. Dissolved oxygen near a fixed station.
    oxygen = Query(
        location=GeoPoint(46.2, -123.8),
        variables=(VariableTerm("dissolved_oxygen", low=4.0, high=9.0),),
    )
    show("1. dissolved oxygen near the estuary",
         system.search_page(oxygen, limit=5))

    # 2. Concept query: 'fluorescence' expands down the hierarchy.
    fluorescence = Query(variables=(VariableTerm("fluorescence"),))
    show("2. any fluorescence measurement (hierarchy expansion)",
         system.search_page(fluorescence, limit=5))
    menu = system.state.hierarchy.menu()
    print()
    print("variable menu (collapse/expose, '*' marks concept nodes):")
    print("\n".join(menu.splitlines()[:15]))

    # 3. Region + season, variable-free.
    season = Query(
        region=BoundingBox(45.0, -125.5, 47.0, -124.0),
        interval=TimeInterval.from_datetimes(
            datetime(2010, 4, 1), datetime(2010, 9, 30)
        ),
    )
    show("3. anything on the shelf, season 2010",
         system.search_page(season, limit=5))

    # 4. Ranked vs boolean on an unsatisfiable conjunction.
    impossible = Query(
        location=GeoPoint(45.5, -124.4),
        radius_km=10.0,
        interval=TimeInterval.from_datetimes(
            datetime(2011, 1, 1), datetime(2011, 1, 7)
        ),
        variables=(VariableTerm("nitrate", low=35.0, high=40.0),),
    )
    boolean_hits = system.baseline_engine().search(impossible, limit=10)
    ranked_hits = system.search(impossible, limit=5)
    show("4. a query nothing fully satisfies",
         f"boolean portal: {len(boolean_hits)} hits\n"
         f"ranked search:  {len(ranked_hits)} hits — nearest misses "
         "first:")
    for hit in ranked_hits:
        print(f"  {hit}  |  {hit.breakdown.explain()}")


if __name__ == "__main__":
    main()

"""Quickstart: wrangle a messy scientific archive, then search it.

Runs the poster's example information need — "observations collected
near [lat = 45.5, lon = -124.4] in mid-2010, with temperature between
5-10C" — against a synthetic CMOP-like archive whose variable names
carry all seven categories of semantic mess.

Usage::

    python examples/quickstart.py
"""

from datetime import datetime

from repro import DataNearHere, GeoPoint, Query, TimeInterval, VariableTerm
from repro.archive import messy_archive_fixture


def main() -> None:
    # 1. A messy archive (stands in for the real CMOP data archive).
    fs, truth, archive = messy_archive_fixture()
    print(f"archive: {len(fs)} files, {len(archive.datasets)} datasets")

    # 2. Wrangle: scan -> known transforms -> external metadata ->
    #    discover -> apply -> hierarchies -> publish.
    system = DataNearHere(fs)
    report = system.wrangle()
    print()
    print(report.summary())

    # 3. Validation (curatorial activity 4).
    print()
    print("validation:", system.validate().summary().splitlines()[0])

    # 4. The paper's example query, ranked.
    query = Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval.from_datetimes(
            datetime(2010, 5, 1), datetime(2010, 8, 31)
        ),
        variables=(VariableTerm("temperature", low=5.0, high=10.0),),
    )
    print()
    print(system.search_page(query, limit=5))

    # 5. Drill into the best hit's dataset summary page.
    best = system.search(query, limit=1)[0]
    print()
    print(system.summary_page(best.dataset_id))


if __name__ == "__main__":
    main()

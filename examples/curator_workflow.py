"""The four major curatorial activities, walked end to end.

1. *Create* a metadata wrangling process from composable components.
2. *Run & re-run* it (re-runs skip unchanged files).
3. *Improve* it: ambiguity decisions, synonym entries, an extra
   directory to scan.
4. *Validate* results — and watch failures fall to zero across a
   simulated-curator loop.

Usage::

    python examples/curator_workflow.py
"""

from repro.archive import messy_archive_fixture, truth_index
from repro.curator import (
    AddScanTarget,
    AddSynonym,
    CuratorSession,
    DecideAmbiguity,
    SimulatedCurator,
    run_curator_loop,
)
from repro.semantics import AmbiguityAction
from repro.wrangling import (
    AddExternalMetadata,
    DiscoverTransformations,
    GenerateHierarchies,
    PerformDiscoveredTransformations,
    PerformKnownTransformations,
    ProcessChain,
    Publish,
    ScanArchive,
    ScanTarget,
)


def main() -> None:
    fs, __, archive = messy_archive_fixture()

    # -- activity 1: compose the process ---------------------------------
    chain = ProcessChain(
        components=[
            # Start deliberately narrow: stations only.
            ScanArchive(targets=[ScanTarget(directory="stations")]),
            PerformKnownTransformations(),
            AddExternalMetadata(),
            DiscoverTransformations(),
            PerformDiscoveredTransformations(),
            GenerateHierarchies(),
            Publish(),
        ]
    )
    session = CuratorSession(fs, chain=chain)
    print("process:", " -> ".join(chain.names()))

    # -- activity 2: run --------------------------------------------------
    record = session.run()
    print(f"\nrun #1: {record.run_report.total_changes} changes, "
          f"{record.failure_count} validation failures, "
          f"{len(session.state.working)} datasets cataloged")

    # -- activity 3: improve ----------------------------------------------
    print("\nimprovements:")
    for message in session.improve(
        [
            # "specifying an additional directory to scan"
            AddScanTarget("cruises"),
            AddScanTarget("casts"),
            AddScanTarget("auv"),
            AddScanTarget("met"),
            # "adding entries to a synonym table"
            AddSynonym("salinity", "salznity"),
            # a Table-row-5 decision: hide the phantom 'temp'
            DecideAmbiguity("temp", AmbiguityAction.HIDE),
        ]
    ):
        print(f"  - {message}")

    record = session.run()
    print(f"\nrun #2: {len(session.state.working)} datasets cataloged, "
          f"{record.failure_count} validation failures")
    scan_report = record.run_report.report_for("scan-archive")
    print(f"  (scan skipped {scan_report.items_skipped} unchanged files)")

    # -- activity 4: validate, then close the loop -------------------------
    print("\nvalidation detail:")
    print(record.validation.summary())

    oracle = {
        written: vt.canonical
        for (__, written), vt in truth_index(archive).items()
    }
    curator = SimulatedCurator(actions_per_iteration=20, oracle=oracle)
    result = run_curator_loop(session, curator, max_iterations=10)
    print("\nclosed loop (failures per iteration):",
          result.failure_counts)
    print("converged:", result.converged)
    print("\naction log tail:")
    for message in session.action_log[-5:]:
        print(f"  - {message}")


if __name__ == "__main__":
    main()

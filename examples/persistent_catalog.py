"""Durable deployment: real files on disk, SQLite-published catalog.

Exports the synthetic archive to a real directory tree, re-imports it
(as a site operator would point the scanner at their archive), wrangles
into a SQLite catalog file, and reopens that file in a second "process"
to serve searches — the shape of a production Data Near Here install.

Usage::

    python examples/persistent_catalog.py
"""

import os
import tempfile

from repro import DataNearHere, GeoPoint, Query, VariableTerm
from repro.archive import VirtualArchive, messy_archive_fixture
from repro.catalog import SqliteCatalog
from repro.core import SearchEngine
from repro.hierarchy import vocabulary_hierarchy


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="dnh_") as workdir:
        archive_dir = os.path.join(workdir, "archive")
        catalog_path = os.path.join(workdir, "metadata_catalog.db")

        # 1. Materialize the archive as real files.
        fs, __, ___ = messy_archive_fixture()
        count = fs.export_to(archive_dir)
        print(f"wrote {count} files under {archive_dir}")

        # 2. Point the scanner at the directory tree and wrangle into a
        #    SQLite-backed published catalog.
        reloaded = VirtualArchive.import_from(archive_dir)
        published = SqliteCatalog(catalog_path)
        system = DataNearHere(reloaded, published=published)
        report = system.wrangle()
        print(f"wrangled: {report.total_changes} changes, "
              f"{len(published)} datasets published to {catalog_path}")
        size = os.path.getsize(catalog_path)
        print(f"catalog file size: {size:,} bytes")
        published.close()

        # 3. A separate engine opens the catalog file later and serves
        #    queries with no re-scan.
        served = SqliteCatalog(catalog_path)
        engine = SearchEngine(served, hierarchy=vocabulary_hierarchy())
        engine.build_indexes()
        results = engine.search(
            Query(
                location=GeoPoint(46.2, -123.8),
                variables=(VariableTerm("salinity", low=5.0, high=30.0),),
            ),
            limit=5,
        )
        print("\nserved from the reopened catalog file:")
        for hit in results:
            print(f"  {hit}")
        served.close()


if __name__ == "__main__":
    main()

"""The semi-curated blend: review queue, provenance, versioned process.

Shows the machinery around the poster's "blend of automated and
'semi-curated' methods":

1. automated resolution proposes; low-confidence verdicts queue for
   review,
2. the curator approves/rejects; approvals become *known*
   transformations (synonym-table entries),
3. every transformation is auditable through the provenance journal,
4. the whole process (tables, decisions, rules, scan targets) serializes
   to one JSON document and reproduces the catalog elsewhere.

Usage::

    python examples/semi_curated_review.py
"""

from repro.archive import messy_archive_fixture
from repro.semantics import queue_from_catalog
from repro.wrangling import (
    ProvenanceJournal,
    WranglingState,
    default_chain,
    dump_process_config,
    load_process_config,
)


def main() -> None:
    fs, __, ___ = messy_archive_fixture()
    state = WranglingState(fs=fs)
    chain = default_chain()
    journal = ProvenanceJournal()

    # Scan first so the journal can diff the raw state.
    scan = chain.components[0]
    scan.execute(state)
    journal.snapshot(state.working)

    # 1. Build the review queue from what the resolver *would* do.
    queue = queue_from_catalog(state.working, state.resolver)
    print(queue.render(limit=8))

    # 2. The curator approves the sensible proposals; the approved pairs
    #    become synonym-table entries (known transformations).
    approved = queue.approve_all(synonyms=state.resolver.synonyms)
    print(f"\napproved {approved} proposals into the synonym table")

    # Run the remaining chain; the journal records what changed and why.
    for component in chain.components[1:]:
        component.execute(state)
    new_events = journal.snapshot(state.working)
    print(f"provenance: {new_events} events recorded this run")
    print("renames by method:", journal.events_by_method())

    # 3. Audit one renamed variable end to end.
    renamed = next(e for e in journal if e.kind == "rename")
    print()
    print(journal.audit_trail(renamed.dataset_id, renamed.written_name))

    # 4. Serialize the process; reproduce the catalog from the document.
    config_text = dump_process_config(chain, state)
    print(f"\nprocess config: {len(config_text):,} bytes of JSON")
    chain2, state2 = load_process_config(config_text, fs=fs)
    chain2.run(state2)
    same = (
        state2.published.variable_name_counts()
        == state.published.variable_name_counts()
    )
    print(f"replayed on a fresh state -> identical published names: {same}")


if __name__ == "__main__":
    main()

"""The Google Refine round-trip from the poster's discovery figure.

Extract catalog entries -> cluster the ``field`` column -> confirm
merges -> export ``core/mass-edit`` JSON -> run the rules against the
working catalog.  Also replays the poster's verbatim JSON rule.

Usage::

    python examples/refine_roundtrip.py
"""

from repro.archive import VOCABULARY, messy_archive_fixture
from repro.experiments import raw_catalog_from
from repro.refine import (
    DiscoverySession,
    RuleSet,
    apply_rules_to_catalog,
    catalog_to_table,
    make_canonical_chooser,
)

POSTER_RULE = """
 {   "op": "core/mass-edit",
    "description": "Mass edit cells in column field",
    "engineConfig": { "facets": [],
      "mode": "row-based" },
    "columnName": "field",
    "expression": "value",
    "edits": [   {
        "fromBlank": false,
        "fromError": false,
        "from": [ "ATastn" ],
        "to": "sea surface temperature"  } ]  }
"""


def main() -> None:
    fs, __, ___ = messy_archive_fixture()
    catalog = raw_catalog_from(fs)
    print(f"raw catalog: {len(catalog)} datasets, "
          f"{len(catalog.variable_name_counts())} distinct variable names")

    # 1. Extract catalog entries to "Refine".
    table = catalog_to_table(catalog)
    print(f"exported table: {len(table)} rows, columns {table.columns}")

    # 2. Cluster + confirm merges (the curator-in-Refine step).
    session = DiscoverySession(
        method="nn-levenshtein",
        radius=2.0,
        seed_values={name: 1 for name in VOCABULARY},
        chooser=make_canonical_chooser(
            set(VOCABULARY), fallback_to_most_common=False
        ),
    )
    clusters = session.cluster(table)
    print(f"\nclusters found: {len(clusters)} (showing up to 8)")
    for cluster in clusters[:8]:
        merged = ", ".join(
            f"{value} (x{count})"
            for value, count in zip(cluster.values, cluster.counts)
        )
        print(f"  [{cluster.method}] {merged}")

    # 3. Export JSON rules.
    rules = session.discover(table)
    print(f"\nexported operation history "
          f"({len(rules.rename_mapping())} renames):")
    print(rules.dumps()[:800])

    # 4. Run rules against the metadata (working catalog).
    renamed = apply_rules_to_catalog(rules, catalog)
    print(f"\nreplayed against catalog: {renamed} variable entries renamed")

    # 5. The poster's verbatim rule also parses and runs.
    poster = RuleSet.loads(POSTER_RULE)
    demo = catalog_to_table(catalog)
    demo.rows[0]["field"] = "ATastn"
    changed = poster.apply(demo)
    print(f"\nposter's verbatim core/mass-edit rule applied: "
          f"{changed} cell(s) -> {demo.rows[0]['field']!r}")


if __name__ == "__main__":
    main()

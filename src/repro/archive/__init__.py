"""Synthetic scientific-data archive substrate.

Replaces the paper's proprietary CMOP observational archive with a
deterministic generator (stations, cruises, CTD casts, gliders, met
stations), mixed file formats, per-platform directory conventions, a
semantic-mess injector with recorded ground truth, and a virtual
filesystem the wrangling pipeline scans.
"""

from .corruption import (
    CorruptionReport,
    add_stray_files,
    corrupt_archive,
    garble_numbers,
    remove_header,
    truncate_file,
)
from .dataset import (
    Dataset,
    DatasetTruth,
    FileFormat,
    Platform,
    VariableTruth,
)
from .filesystem import ArchiveFile, ArchivePathError, VirtualArchive
from .formats import (
    FormatError,
    parse_cdl,
    parse_csv,
    parse_file,
    write_cdl,
    write_csv,
    write_dataset,
)
from .generator import (
    PLATFORM_SUITES,
    VALUE_RANGES,
    ArchiveSpec,
    StationRecord,
    SyntheticArchive,
    generate_archive,
    parse_station_registry,
    station_registry_text,
)
from .mess import (
    CATEGORIES,
    CONTEXT_COLLAPSE,
    MULTILEVEL_FORMS,
    MessSpec,
    category_counts,
    inject_mess,
    truth_index,
    uniform_mess_spec,
)
from .observations import (
    ColumnStats,
    InconsistentLengthError,
    ObservationColumn,
    ObservationTable,
)
from .render import (
    STATION_REGISTRY_PATH,
    messy_archive_fixture,
    render_archive,
)
from .vocabulary import (
    AMBIGUOUS_FORMS,
    UNIT_SYNONYMS,
    VOCABULARY,
    CanonicalVariable,
    Context,
    auxiliary_variables,
    concept_children,
    preferred_unit,
    searchable_variables,
)

__all__ = [
    "AMBIGUOUS_FORMS",
    "ArchiveFile",
    "ArchivePathError",
    "ArchiveSpec",
    "CATEGORIES",
    "CONTEXT_COLLAPSE",
    "CanonicalVariable",
    "CorruptionReport",
    "ColumnStats",
    "Context",
    "Dataset",
    "DatasetTruth",
    "FileFormat",
    "FormatError",
    "InconsistentLengthError",
    "MULTILEVEL_FORMS",
    "MessSpec",
    "ObservationColumn",
    "ObservationTable",
    "PLATFORM_SUITES",
    "Platform",
    "STATION_REGISTRY_PATH",
    "StationRecord",
    "SyntheticArchive",
    "UNIT_SYNONYMS",
    "VALUE_RANGES",
    "VOCABULARY",
    "VariableTruth",
    "VirtualArchive",
    "add_stray_files",
    "auxiliary_variables",
    "category_counts",
    "concept_children",
    "corrupt_archive",
    "garble_numbers",
    "generate_archive",
    "inject_mess",
    "messy_archive_fixture",
    "parse_cdl",
    "parse_csv",
    "parse_file",
    "parse_station_registry",
    "preferred_unit",
    "remove_header",
    "render_archive",
    "searchable_variables",
    "station_registry_text",
    "truncate_file",
    "truth_index",
    "uniform_mess_spec",
    "write_cdl",
    "write_csv",
    "write_dataset",
]

"""A virtual archive filesystem.

The wrangling scan component is "configured with directories, file types,
naming conventions"; curatorial activity 3 includes "specifying an
additional directory to scan".  To make those operations fast, hermetic
and repeatable, the synthetic archive lives in an in-memory filesystem
that can also be exported to (and re-imported from) a real directory tree.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
from dataclasses import dataclass, field
from typing import Iterator


class ArchivePathError(KeyError):
    """Raised for lookups of paths not present in the archive."""


def _normalize(path: str) -> str:
    parts = [p for p in path.strip("/").split("/") if p and p != "."]
    return "/".join(parts)


@dataclass(slots=True)
class ArchiveFile:
    """One file in the archive: relative path plus text content.

    Records are immutable in practice — :meth:`VirtualArchive.put`
    replaces the whole record on any write — so the content hash is
    memoized per instance; rescans of an unchanged archive skip the
    SHA-256 work entirely.
    """

    path: str
    content: str
    _content_hash: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def directory(self) -> str:
        """Directory part of the path ('' for top-level files)."""
        if "/" not in self.path:
            return ""
        return self.path.rsplit("/", 1)[0]

    @property
    def extension(self) -> str:
        """Lowercased extension without the dot ('' when none)."""
        base = self.path.rsplit("/", 1)[-1]
        if "." not in base:
            return ""
        return base.rsplit(".", 1)[1].lower()

    def content_hash(self) -> str:
        """Stable SHA-256 of the content — drives incremental re-runs."""
        if self._content_hash is None:
            self._content_hash = hashlib.sha256(
                self.content.encode("utf-8")
            ).hexdigest()
        return self._content_hash


@dataclass(slots=True)
class VirtualArchive:
    """An in-memory directory tree of text files."""

    _files: dict[str, ArchiveFile] = field(default_factory=dict)

    # -- mutation ----------------------------------------------------------

    def put(self, path: str, content: str) -> ArchiveFile:
        """Create or overwrite a file; returns the stored record."""
        norm = _normalize(path)
        if not norm:
            raise ArchivePathError("empty path")
        record = ArchiveFile(path=norm, content=content)
        self._files[norm] = record
        return record

    def remove(self, path: str) -> None:
        """Delete a file.

        Raises:
            ArchivePathError: if the file does not exist.
        """
        norm = _normalize(path)
        if norm not in self._files:
            raise ArchivePathError(norm)
        del self._files[norm]

    # -- lookup ------------------------------------------------------------

    def get(self, path: str) -> ArchiveFile:
        """Return the file at ``path``.

        Raises:
            ArchivePathError: if the file does not exist.
        """
        norm = _normalize(path)
        try:
            return self._files[norm]
        except KeyError:
            raise ArchivePathError(norm)

    def exists(self, path: str) -> bool:
        """True if a file exists at ``path``."""
        return _normalize(path) in self._files

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[ArchiveFile]:
        return iter(sorted(self._files.values(), key=lambda f: f.path))

    def directories(self) -> list[str]:
        """Sorted unique directories containing at least one file."""
        return sorted({f.directory for f in self._files.values()})

    def list_directory(
        self, directory: str, pattern: str = "*", recursive: bool = False
    ) -> list[ArchiveFile]:
        """Files in ``directory`` whose *basename* matches ``pattern``.

        With ``recursive`` the whole subtree under ``directory`` is
        searched.  ``directory=''`` means the archive root.
        """
        norm_dir = _normalize(directory)
        out = []
        for record in self:
            if recursive:
                in_dir = (
                    record.path.startswith(norm_dir + "/")
                    if norm_dir
                    else True
                )
            else:
                in_dir = record.directory == norm_dir
            if not in_dir:
                continue
            basename = record.path.rsplit("/", 1)[-1]
            if fnmatch.fnmatch(basename, pattern):
                out.append(record)
        return out

    # -- interop with a real filesystem -------------------------------------

    def export_to(self, root: str) -> int:
        """Write every file below directory ``root``; returns file count."""
        count = 0
        for record in self:
            target = os.path.join(root, record.path)
            os.makedirs(os.path.dirname(target) or root, exist_ok=True)
            with open(target, "w", encoding="utf-8") as fh:
                fh.write(record.content)
            count += 1
        return count

    @classmethod
    def import_from(cls, root: str) -> "VirtualArchive":
        """Load every regular file below ``root`` into a new archive."""
        archive = cls()
        for dirpath, __, filenames in os.walk(root):
            for filename in sorted(filenames):
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, "r", encoding="utf-8") as fh:
                    archive.put(rel, fh.read())
        return archive

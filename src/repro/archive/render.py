"""Rendering a synthetic archive into the virtual filesystem.

This is the hand-off point between generation and wrangling: once the
datasets are written out as files, the pipeline sees only what a real
archive exposes.  Ground truth is returned separately.
"""

from __future__ import annotations

from .dataset import DatasetTruth
from .filesystem import VirtualArchive
from .formats import write_dataset
from .generator import SyntheticArchive, station_registry_text

STATION_REGISTRY_PATH = "metadata/station_registry.txt"


def render_archive(
    archive: SyntheticArchive,
) -> tuple[VirtualArchive, dict[str, DatasetTruth]]:
    """Write all datasets and the station registry into a fresh
    :class:`VirtualArchive`.

    Returns the filesystem and a ``path -> DatasetTruth`` map (ground
    truth stays out of the filesystem on purpose).
    """
    fs = VirtualArchive()
    truth: dict[str, DatasetTruth] = {}
    for ds in archive.datasets:
        fs.put(ds.path, write_dataset(ds))
        if ds.truth is not None:
            truth[ds.path] = ds.truth
    fs.put(STATION_REGISTRY_PATH, station_registry_text(archive.stations))
    return fs, truth


def messy_archive_fixture(
    spec=None, mess_spec=None
) -> tuple[VirtualArchive, dict[str, DatasetTruth], SyntheticArchive]:
    """Convenience: generate, mess up and render in one call.

    Returns ``(filesystem, truth_by_path, synthetic_archive)``.
    """
    from .generator import ArchiveSpec, generate_archive
    from .mess import MessSpec, inject_mess

    archive = generate_archive(spec or ArchiveSpec())
    inject_mess(archive, mess_spec or MessSpec())
    fs, truth = render_archive(archive)
    return fs, truth, archive

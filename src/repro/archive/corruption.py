"""Failure injection: corrupt archive files the way real archives break.

Real archives contain truncated transfers, half-written rows, sensors
that report garbage, files with missing coordinate columns and stray
non-dataset files.  The wrangling pipeline must *skip and report*, never
crash.  These injectors corrupt a rendered :class:`VirtualArchive`
deterministically and return what they broke so tests can assert the
pipeline's reaction precisely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .filesystem import VirtualArchive


@dataclass(frozen=True, slots=True)
class CorruptionReport:
    """What the injector broke."""

    truncated: tuple[str, ...] = ()
    garbled: tuple[str, ...] = ()
    decapitated: tuple[str, ...] = ()  # header/coordinates removed
    stray_files: tuple[str, ...] = ()

    @property
    def broken_datasets(self) -> set[str]:
        """Paths whose parse should now fail or degrade."""
        return set(self.truncated) | set(self.garbled) | set(
            self.decapitated
        )

    @property
    def total(self) -> int:
        """Number of injected faults."""
        return (
            len(self.truncated)
            + len(self.garbled)
            + len(self.decapitated)
            + len(self.stray_files)
        )


def truncate_file(fs: VirtualArchive, path: str, keep_fraction: float = 0.5) -> None:
    """Cut a file mid-stream (interrupted transfer).

    Raises:
        ValueError: for a fraction outside (0, 1).
    """
    if not 0.0 < keep_fraction < 1.0:
        raise ValueError("keep_fraction must lie in (0, 1)")
    record = fs.get(path)
    cut = max(1, int(len(record.content) * keep_fraction))
    fs.put(path, record.content[:cut])


def garble_numbers(
    fs: VirtualArchive, path: str, rate: float = 0.05, seed: int = 5
) -> None:
    """Replace a fraction of numeric cells with junk tokens."""
    rng = random.Random(seed)
    record = fs.get(path)
    lines = record.content.splitlines()
    out = []
    for line in lines:
        if "," in line and not line.startswith("#") and rng.random() < 0.5:
            cells = line.split(",")
            for i in range(len(cells)):
                if rng.random() < rate:
                    cells[i] = "###"
            line = ",".join(cells)
        out.append(line)
    fs.put(path, "\n".join(out) + "\n")


def remove_header(fs: VirtualArchive, path: str) -> None:
    """Strip everything before the first data row (lost header block)."""
    record = fs.get(path)
    lines = record.content.splitlines()
    body = [
        line
        for line in lines
        if line and not line.startswith("#") and "[" not in line
    ]
    fs.put(path, "\n".join(body) + "\n")


def add_stray_files(fs: VirtualArchive, count: int = 3) -> list[str]:
    """Drop non-dataset junk into the tree (logs, temp files, READMEs)."""
    strays = []
    templates = [
        ("logs/ingest_{i}.log", "2010-05-01 ingest ok\n"),
        ("stations/.DS_Store", "\x00\x01junk"),
        ("notes/README_{i}.txt", "ask Bob about the 2009 deployment\n"),
        ("tmp/scratch_{i}.csv.tmp", "half,a,row"),
    ]
    for i in range(count):
        path_template, content = templates[i % len(templates)]
        path = path_template.format(i=i)
        fs.put(path, content)
        strays.append(path)
    return strays


def corrupt_archive(
    fs: VirtualArchive,
    truncate: int = 2,
    garble: int = 2,
    decapitate: int = 1,
    strays: int = 3,
    seed: int = 5,
) -> CorruptionReport:
    """Apply a mixed batch of faults; deterministic from ``seed``.

    Only ``.csv`` files are garbled/decapitated (the line-oriented
    faults); truncation hits any dataset file.
    """
    rng = random.Random(seed)
    dataset_paths = sorted(
        record.path
        for record in fs
        if record.extension in ("csv", "cdl")
    )
    csv_paths = [p for p in dataset_paths if p.endswith(".csv")]
    chosen_truncate = rng.sample(
        dataset_paths, min(truncate, len(dataset_paths))
    )
    remaining_csv = [p for p in csv_paths if p not in chosen_truncate]
    chosen_garble = rng.sample(remaining_csv, min(garble, len(remaining_csv)))
    remaining_csv = [p for p in remaining_csv if p not in chosen_garble]
    chosen_decap = rng.sample(
        remaining_csv, min(decapitate, len(remaining_csv))
    )
    for path in chosen_truncate:
        truncate_file(fs, path, keep_fraction=rng.uniform(0.2, 0.8))
    for path in chosen_garble:
        garble_numbers(fs, path, rate=0.08, seed=seed)
    for path in chosen_decap:
        remove_header(fs, path)
    stray_paths = add_stray_files(fs, count=strays)
    return CorruptionReport(
        truncated=tuple(chosen_truncate),
        garbled=tuple(chosen_garble),
        decapitated=tuple(chosen_decap),
        stray_files=tuple(stray_paths),
    )

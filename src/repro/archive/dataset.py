"""The dataset model: one archive file's content plus its ground truth.

The wrangling pipeline must *not* see ground truth — it sees only what a
real archive exposes (path, format, header, data).  Ground truth rides
along in a separate ``DatasetTruth`` record so experiments can score the
pipeline's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .observations import ObservationTable


class Platform(str, Enum):
    """Observation platform types in the synthetic CMOP-like archive."""

    STATION = "station"  # fixed mooring/pier station, long time series
    CRUISE = "cruise"  # ship transect, moving position
    CAST = "cast"  # CTD cast: one position, depth profile
    GLIDER = "glider"  # AUV/glider mission, moving position
    MET = "met"  # meteorological station (air-side variables)


class FileFormat(str, Enum):
    """On-disk formats produced by the synthetic archive."""

    CSV = "csv"  # comma-separated with '# key: value' header block
    CDL = "cdl"  # NetCDF-header-like text (name/units attributes + data)


@dataclass(frozen=True, slots=True)
class VariableTruth:
    """Ground truth for one as-written column name.

    ``canonical``: the preferred vocabulary name this column *really* is,
    or ``None`` when the column is not an environmental variable at all
    (the 'temporary' reading of ``temp``).
    ``category``: which semantic-diversity category (Table row) produced
    the as-written spelling; 'clean' when none did.
    """

    written_name: str
    written_unit: str
    canonical: str | None
    category: str
    auxiliary: bool = False


@dataclass(frozen=True, slots=True)
class DatasetTruth:
    """Ground truth for one dataset: per-column mappings."""

    dataset_path: str
    variables: tuple[VariableTruth, ...]

    def truth_for(self, written_name: str) -> VariableTruth:
        """Ground truth record for an as-written column name.

        Raises:
            KeyError: if the name does not occur in this dataset.
        """
        for vt in self.variables:
            if vt.written_name == written_name:
                return vt
        raise KeyError(written_name)


@dataclass(slots=True)
class Dataset:
    """One dataset as the archive presents it.

    ``path`` is the archive-relative path; ``attributes`` are the header
    key/values as written in the file (title, station id, ...).
    """

    path: str
    platform: Platform
    file_format: FileFormat
    attributes: dict[str, str]
    table: ObservationTable
    truth: DatasetTruth | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """The filename without directories or extension."""
        base = self.path.rsplit("/", 1)[-1]
        return base.rsplit(".", 1)[0]

    def variable_names(self) -> list[str]:
        """As-written observation column names."""
        return self.table.column_names()

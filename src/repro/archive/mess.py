"""The semantic-mess injector.

Takes the clean synthetic archive and rewrites variable names and unit
strings according to the seven categories of the paper's Table
("Categories of Semantic Diversity"), recording per-column ground truth
so experiments can score how much of the mess the wrangling process
tames.  Deterministic from a seed.

Category labels (used in :class:`~repro.archive.dataset.VariableTruth`):

* ``clean``        — name left as the canonical spelling
* ``misspelling``  — minor variations & misspellings (Table row 1)
* ``synonym``      — synonyms (row 2; unit synonyms injected independently)
* ``abbreviation`` — abbreviations (row 3)
* ``excessive``    — QA/housekeeping columns appended (row 4)
* ``ambiguous``    — ambiguous short forms, incl. non-variables (row 5)
* ``context``      — source-context naming collapse (row 6)
* ``multilevel``   — concepts at multiple levels of detail (row 7)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

UnitConverter = Callable[[float], float]

from .dataset import Dataset, DatasetTruth, Platform, VariableTruth
from .generator import VALUE_RANGES, SyntheticArchive, _random_walk
from .observations import ObservationColumn
from .vocabulary import (
    AMBIGUOUS_FORMS,
    UNIT_SYNONYMS,
    VOCABULARY,
)

CATEGORIES = (
    "clean",
    "misspelling",
    "synonym",
    "abbreviation",
    "excessive",
    "ambiguous",
    "context",
    "multilevel",
)

#: Source-context collapse: canonical name -> bare context-free name the
#: source writes (Table row 6's "Temperature" example, generalized).
CONTEXT_COLLAPSE: dict[str, str] = {
    "air_temperature": "temperature",
    "water_temperature": "temperature",
    "sea_surface_temperature": "temperature",
    "air_pressure": "pressure",
    "water_pressure": "pressure",
    "wind_speed": "speed",
    "current_speed": "speed",
    "wind_direction": "direction",
    "current_direction": "direction",
}

#: Multi-level collapse: canonical fine-grained name -> the short form the
#: source writes (Table row 7's fluores375 example).
MULTILEVEL_FORMS: dict[str, str] = {
    "fluorescence_375nm": "fluores375",
    "fluorescence_400nm": "fluores400",
    "chlorophyll": "chl",
    "oxygen_saturation": "o2sat",
}

#: Cross-family unit conversions some sources report in: canonical unit ->
#: (alien unit, value conversion).  The abstract's "similar problems in
#: other areas, e.g. units" made concrete: the file's *values* are in the
#: alien unit, and wrangling must convert the catalog statistics back.
ALIEN_UNITS: dict[str, tuple[str, "UnitConverter"]] = {}


def _register_alien_units() -> None:
    def f(scale: float, offset: float = 0.0):
        return lambda x: x * scale + offset

    ALIEN_UNITS.update(
        {
            "degC": ("degF", f(9.0 / 5.0, 32.0)),
            "m/s": ("knots", f(1.0 / 0.514444)),
            "mg/L": ("uM", f(1000.0 / 31.998)),
        }
    )


_register_alien_units()


@dataclass(frozen=True, slots=True)
class MessSpec:
    """Rates at which each rename category is applied.

    Rates are relative weights over the rename categories; ``excessive``
    and the "phantom temp" of ``ambiguous`` act per dataset rather than
    per column.  ``unit_mess_rate`` independently rewrites unit strings to
    non-preferred synonym spellings.
    """

    clean: float = 0.35
    misspelling: float = 0.15
    synonym: float = 0.15
    abbreviation: float = 0.10
    ambiguous: float = 0.08
    context: float = 0.10
    multilevel: float = 0.07
    unit_mess_rate: float = 0.30
    alien_unit_rate: float = 0.10  # P(column reported in a foreign unit)
    excessive_rate: float = 0.50  # P(dataset gains auxiliary columns)
    phantom_rate: float = 0.15  # P(dataset gains a non-variable 'temp')
    seed: int = 13

    def rename_weights(self) -> list[tuple[str, float]]:
        """(category, weight) pairs for the per-column rename draw."""
        return [
            ("clean", self.clean),
            ("misspelling", self.misspelling),
            ("synonym", self.synonym),
            ("abbreviation", self.abbreviation),
            ("ambiguous", self.ambiguous),
            ("context", self.context),
            ("multilevel", self.multilevel),
        ]


def uniform_mess_spec(rate: float, seed: int = 13) -> MessSpec:
    """A spec applying each rename category with equal weight ``rate``.

    ``rate`` is the total fraction of columns renamed (split evenly over
    the six rename categories); the rest stay clean.  Used by the Table 1
    benchmark's rate sweep.

    Raises:
        ValueError: if ``rate`` is outside [0, 1].
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must lie in [0, 1], got {rate}")
    per = rate / 6.0
    return MessSpec(
        clean=1.0 - rate,
        misspelling=per,
        synonym=per,
        abbreviation=per,
        ambiguous=per,
        context=per,
        multilevel=per,
        unit_mess_rate=rate,
        excessive_rate=rate,
        phantom_rate=rate / 3.0,
        seed=seed,
    )


def _typo(rng: random.Random, name: str) -> str:
    """One deterministic 'minor variation or misspelling' of ``name``."""
    styles = ["transpose", "drop", "double", "joined", "drop_sep"]
    style = rng.choice(styles)
    if style == "joined":
        return name.replace("_", "")
    if style == "drop_sep" and "_" in name:
        parts = name.split("_")
        k = rng.randrange(len(parts) - 1)
        return "_".join(parts[:k] + [parts[k] + parts[k + 1]] + parts[k + 2:])
    letters = [i for i, ch in enumerate(name) if ch.isalpha()]
    if len(letters) < 4:
        return name + name[-1]
    if style == "transpose":
        i = rng.choice(letters[1:-1])
        chars = list(name)
        chars[i - 1], chars[i] = chars[i], chars[i - 1]
        return "".join(chars)
    if style == "drop":
        i = rng.choice(letters[1:])
        return name[:i] + name[i + 1:]
    # double
    i = rng.choice(letters)
    return name[:i] + name[i] + name[i:]


def _messy_unit(rng: random.Random, unit: str) -> str:
    """A non-preferred synonym spelling of ``unit`` (or ``unit`` itself)."""
    spellings = UNIT_SYNONYMS.get(unit)
    if not spellings or len(spellings) < 2:
        return unit
    return rng.choice(spellings[1:])


def _context_of(platform: Platform) -> str:
    return "air" if platform is Platform.MET else "water"


def _ambiguous_form_for(canonical: str) -> str | None:
    for form, meanings in AMBIGUOUS_FORMS.items():
        if canonical in meanings:
            return form
    return None


def _rename(
    rng: random.Random,
    canonical: str,
    category: str,
    platform: Platform,
) -> tuple[str, str] | None:
    """Return (written_name, category) or None when the category does not
    apply to this variable (caller falls back to clean)."""
    var = VOCABULARY[canonical]
    if category == "misspelling":
        written = _typo(rng, canonical)
        if written == canonical:
            return None
        return written, category
    if category == "synonym":
        if not var.synonyms:
            return None
        written = rng.choice(var.synonyms).replace(" ", "_")
        return written, category
    if category == "abbreviation":
        if not var.abbreviations:
            return None
        return rng.choice(var.abbreviations), category
    if category == "ambiguous":
        form = _ambiguous_form_for(canonical)
        if form is None:
            return None
        return form, category
    if category == "context":
        collapsed = CONTEXT_COLLAPSE.get(canonical)
        if collapsed is None:
            return None
        return collapsed, category
    if category == "multilevel":
        short = MULTILEVEL_FORMS.get(canonical)
        if short is None:
            return None
        return short, category
    return None


def inject_mess(
    archive: SyntheticArchive, spec: MessSpec | None = None
) -> SyntheticArchive:
    """Rewrite the archive's variable names/units in place, with truth.

    Mutates the datasets of ``archive`` (names, units, appended auxiliary
    columns) and replaces each dataset's ``truth``.  Returns ``archive``
    for chaining.
    """
    spec = spec or MessSpec()
    rng = random.Random(spec.seed)
    weights = spec.rename_weights()
    categories = [c for c, __ in weights]
    probs = [w for __, w in weights]

    for ds in archive.datasets:
        truths: list[VariableTruth] = []
        used_names = {"time", "latitude", "longitude"}
        for col in ds.table.columns:
            canonical = col.name
            category = rng.choices(categories, weights=probs, k=1)[0]
            written = canonical
            applied = "clean"
            if category != "clean":
                result = _rename(rng, canonical, category, ds.platform)
                if result is not None and result[0] not in used_names:
                    written, applied = result
            if written in used_names:
                written, applied = canonical, "clean"
            used_names.add(written)
            unit = col.unit
            alien = ALIEN_UNITS.get(col.unit)
            if alien is not None and rng.random() < spec.alien_unit_rate:
                # The source reports in a different unit family: convert
                # the values themselves and label them accordingly.
                alien_unit, convert = alien
                col.values = [round(convert(v), 4) for v in col.values]
                unit = alien_unit
            elif rng.random() < spec.unit_mess_rate:
                unit = _messy_unit(rng, col.unit)
            col.name = written
            col.unit = unit
            truths.append(
                VariableTruth(
                    written_name=written,
                    written_unit=unit,
                    canonical=canonical,
                    category=applied,
                    auxiliary=VOCABULARY[canonical].auxiliary,
                )
            )

        n = ds.table.row_count
        # Category 4: excessive (auxiliary) variables appended.
        if rng.random() < spec.excessive_rate:
            count = rng.randint(1, 3)
            aux_pool = [
                name
                for name in ("qa_level", "qc_flag", "battery_voltage",
                             "sample_number")
                if name not in used_names
            ]
            for aux_name in rng.sample(aux_pool, min(count, len(aux_pool))):
                var = VOCABULARY[aux_name]
                lo, hi = VALUE_RANGES[aux_name]
                values = (
                    [float(k) for k in range(n)]
                    if aux_name == "sample_number"
                    else [float(int(v)) for v in _random_walk(rng, lo, hi, n)]
                    if aux_name in {"qa_level", "qc_flag"}
                    else _random_walk(rng, lo, hi, n)
                )
                ds.table.columns.append(
                    ObservationColumn(name=aux_name, unit=var.unit,
                                      values=values)
                )
                used_names.add(aux_name)
                truths.append(
                    VariableTruth(
                        written_name=aux_name,
                        written_unit=var.unit,
                        canonical=aux_name,
                        category="excessive",
                        auxiliary=True,
                    )
                )

        # Category 5's hard case: a 'temp' column that is NOT temperature.
        if rng.random() < spec.phantom_rate and "temp" not in used_names:
            ds.table.columns.append(
                ObservationColumn(
                    name="temp",
                    unit="1",
                    values=[float(k % 17) for k in range(n)],
                )
            )
            used_names.add("temp")
            truths.append(
                VariableTruth(
                    written_name="temp",
                    written_unit="1",
                    canonical=None,
                    category="ambiguous",
                    auxiliary=False,
                )
            )

        ds.truth = DatasetTruth(dataset_path=ds.path, variables=tuple(truths))
    return archive


def truth_index(
    archive: SyntheticArchive,
) -> dict[tuple[str, str], VariableTruth]:
    """(dataset_path, written_name) -> ground truth, over the archive."""
    out: dict[tuple[str, str], VariableTruth] = {}
    for ds in archive.datasets:
        if ds.truth is None:
            continue
        for vt in ds.truth.variables:
            out[(ds.path, vt.written_name)] = vt
    return out


def category_counts(archive: SyntheticArchive) -> dict[str, int]:
    """How many columns each mess category produced, across the archive."""
    counts: dict[str, int] = {c: 0 for c in CATEGORIES}
    for __, vt in truth_index(archive).items():
        counts[vt.category] = counts.get(vt.category, 0) + 1
    return counts

"""Transient-read fault injection for archives.

The sibling :mod:`repro.archive.corruption` injectors damage file
*content* permanently; :class:`FlakyArchive` damages *reads*
transiently — the file is fine, but this particular ``get`` or listing
fails the way flaky storage and torn transfers fail.  The scan
component's retry layer is expected to absorb any fault sequence that
stays below its budget; a sequence that outlives the budget quarantines
the file instead of crashing the scan.

Faults fire per a seeded :class:`~repro.core.faults.FaultSchedule`, so
every test run is deterministic.  Records handed out on success are the
wrapped archive's own (plain, picklable) records — faults only ever
fire in the parent process, never inside pool workers, which keeps
parallel scans exactly equal to serial ones under injection.
"""

from __future__ import annotations

from typing import Iterator

from ..core.errors import TransientReadError
from ..core.faults import FaultSchedule
from .filesystem import ArchiveFile, VirtualArchive


class FlakyArchive:
    """A :class:`VirtualArchive` whose reads fail per a fault schedule.

    Duck-typed drop-in: it exposes the archive surface the pipeline
    uses, delegating everything to ``inner`` and raising
    :class:`~repro.core.errors.TransientReadError` from ``get`` (op
    ``"read"``) and ``list_directory`` (op ``"list"``) when the
    schedule says so.  Mutations are never faulted — the injectors
    model flaky *storage reads*, not lost writes.
    """

    def __init__(self, inner: VirtualArchive, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule

    # -- faulted reads -----------------------------------------------------

    def get(self, path: str) -> ArchiveFile:
        if self.schedule.should_fail("read", path):
            raise TransientReadError(f"transient read failure: {path}")
        return self.inner.get(path)

    def list_directory(
        self, directory: str, pattern: str = "*", recursive: bool = False
    ) -> list[ArchiveFile]:
        if self.schedule.should_fail("list", directory):
            raise TransientReadError(
                f"transient listing failure: {directory!r}"
            )
        return self.inner.list_directory(
            directory, pattern, recursive=recursive
        )

    # -- faithful pass-throughs --------------------------------------------

    def put(self, path: str, content: str) -> ArchiveFile:
        return self.inner.put(path, content)

    def remove(self, path: str) -> None:
        self.inner.remove(path)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def directories(self) -> list[str]:
        return self.inner.directories()

    def export_to(self, root: str) -> int:
        return self.inner.export_to(root)

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[ArchiveFile]:
        return iter(self.inner)

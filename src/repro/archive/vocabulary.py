"""The canonical environmental-variable vocabulary.

This plays the role of "the list of environmental variables in the minds
of the scientists" that the poster says the archive's harvested names fail
to match.  It defines, for each canonical variable: preferred name, unit,
measurement context (air / water / seafloor / platform), parent concept in
the hierarchy, whether it is an *auxiliary* variable (QA/housekeeping —
the Table's "excessive variables" category), and known synonyms and
abbreviations (ground truth for the wrangling experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Context(str, Enum):
    """Measurement context of a variable (the Table's 'source-context')."""

    AIR = "air"
    WATER = "water"
    SEAFLOOR = "seafloor"
    PLATFORM = "platform"
    NONE = "none"


@dataclass(frozen=True, slots=True)
class CanonicalVariable:
    """One entry in the scientists' vocabulary."""

    name: str
    unit: str
    context: Context
    parent: str | None = None
    auxiliary: bool = False
    synonyms: tuple[str, ...] = ()
    abbreviations: tuple[str, ...] = ()
    description: str = ""


# Unit synonym families, per the Table's "Synonyms" row (C, degC,
# Centigrade).  The first entry of each family is the preferred spelling.
UNIT_SYNONYMS: dict[str, tuple[str, ...]] = {
    "degC": ("degC", "C", "Centigrade", "celsius", "deg_C", "°C"),
    "PSU": ("PSU", "psu", "practical salinity units", "PSS-78"),
    "m": ("m", "meters", "metres", "meter"),
    "m/s": ("m/s", "m s-1", "meters/second", "m.s-1"),
    "mg/L": ("mg/L", "mg l-1", "milligrams/liter", "mg/l"),
    "uM": ("uM", "umol/L", "micromolar", "µM"),
    "NTU": ("NTU", "ntu", "nephelometric turbidity units"),
    "hPa": ("hPa", "mbar", "millibar", "hectopascal"),
    "dbar": ("dbar", "decibar", "db"),
    "%": ("%", "percent", "pct"),
    "degrees": ("degrees", "deg", "°"),
    "V": ("V", "volts", "volt"),
    "S/m": ("S/m", "siemens/meter", "S m-1"),
    "mm": ("mm", "millimeters", "millimetres"),
    "ug/L": ("ug/L", "ug l-1", "micrograms/liter", "µg/L"),
    "W/m^2": ("W/m^2", "W m-2", "watts/m2"),
    "1": ("1", "dimensionless", "unitless", "none", ""),
}


def preferred_unit(unit: str) -> str:
    """Map any known unit spelling to its preferred form.

    Unknown units are returned unchanged (the resolver reports them).
    """
    lowered = unit.strip().lower()
    for preferred, spellings in UNIT_SYNONYMS.items():
        for spelling in spellings:
            if lowered == spelling.lower():
                return preferred
    return unit


def _v(
    name: str,
    unit: str,
    context: Context,
    parent: str | None = None,
    auxiliary: bool = False,
    synonyms: tuple[str, ...] = (),
    abbreviations: tuple[str, ...] = (),
    description: str = "",
) -> CanonicalVariable:
    return CanonicalVariable(
        name=name,
        unit=unit,
        context=context,
        parent=parent,
        auxiliary=auxiliary,
        synonyms=synonyms,
        abbreviations=abbreviations,
        description=description,
    )


#: The full canonical vocabulary, keyed by preferred name.  Parents that
#: are pure *concepts* (no data of their own) appear with unit "1" and
#: ``Context.NONE`` — they exist to support the Table's "concepts at
#: multiple levels of detail" category (fluorescence vs fluores375).
VOCABULARY: dict[str, CanonicalVariable] = {
    v.name: v
    for v in [
        # --- temperature family (source-context naming) ------------------
        _v("temperature", "degC", Context.NONE,
           description="Abstract temperature concept"),
        _v("air_temperature", "degC", Context.AIR, parent="temperature",
           synonyms=("atmospheric temperature", "airtemp"),
           abbreviations=("AT", "ATMP"),
           description="Dry-bulb air temperature"),
        _v("water_temperature", "degC", Context.WATER, parent="temperature",
           synonyms=("sea water temperature", "watertemp"),
           abbreviations=("WT", "WTMP"),
           description="In-situ water temperature"),
        _v("sea_surface_temperature", "degC", Context.WATER,
           parent="water_temperature",
           synonyms=("surface temperature",),
           abbreviations=("SST", "ATastn"),
           description="Water temperature at the surface"),
        # --- salinity / conductivity --------------------------------------
        _v("salinity", "PSU", Context.WATER,
           synonyms=("practical salinity", "salt"),
           abbreviations=("SAL", "PSAL"),
           description="Practical salinity"),
        _v("conductivity", "S/m", Context.WATER,
           synonyms=("electrical conductivity",),
           abbreviations=("COND", "CNDC"),
           description="Electrical conductivity of sea water"),
        # --- oxygen / chemistry -------------------------------------------
        _v("dissolved_oxygen", "mg/L", Context.WATER,
           synonyms=("oxygen", "do concentration"),
           abbreviations=("DO", "DOXY"),
           description="Dissolved oxygen concentration"),
        _v("oxygen_saturation", "%", Context.WATER,
           parent="dissolved_oxygen",
           synonyms=("o2sat",),
           abbreviations=("DOSAT",),
           description="Dissolved oxygen percent saturation"),
        _v("ph", "1", Context.WATER,
           synonyms=("acidity",),
           abbreviations=("PH",),
           description="pH of sea water"),
        _v("nitrate", "uM", Context.WATER,
           synonyms=("nitrate concentration", "no3"),
           abbreviations=("NTRA",),
           description="Nitrate concentration"),
        _v("phosphate", "uM", Context.WATER,
           synonyms=("phosphate concentration", "po4"),
           abbreviations=("PHOS",),
           description="Phosphate concentration"),
        # --- optics / biology ---------------------------------------------
        _v("fluorescence", "1", Context.WATER,
           synonyms=("fluorometric signal",),
           abbreviations=("FLUOR",),
           description="Abstract fluorescence concept"),
        _v("fluorescence_375nm", "1", Context.WATER, parent="fluorescence",
           synonyms=("fluores375",),
           description="Fluorescence, 375 nm excitation"),
        _v("fluorescence_400nm", "1", Context.WATER, parent="fluorescence",
           synonyms=("fluores400",),
           description="Fluorescence, 400 nm excitation"),
        _v("chlorophyll", "ug/L", Context.WATER, parent="fluorescence",
           synonyms=("chlorophyll a", "chl-a", "chl"),
           abbreviations=("CHL", "CPHL"),
           description="Chlorophyll-a concentration from fluorescence"),
        _v("turbidity", "NTU", Context.WATER,
           abbreviations=("TURB",),
           description="Optical turbidity"),
        _v("par", "W/m^2", Context.WATER,
           synonyms=("photosynthetically active radiation",),
           abbreviations=("PAR",),
           description="Photosynthetically active radiation"),
        # --- physics: pressure / depth / currents --------------------------
        _v("air_pressure", "hPa", Context.AIR,
           synonyms=("barometric pressure", "atmospheric pressure"),
           abbreviations=("BARO", "PRES"),
           description="Air pressure at station height"),
        _v("water_pressure", "dbar", Context.WATER,
           abbreviations=("WPRES",),
           description="In-situ water pressure"),
        _v("depth", "m", Context.WATER,
           synonyms=("water depth", "sensor depth"),
           abbreviations=("DEP", "DEPH"),
           description="Depth below surface"),
        _v("current_speed", "m/s", Context.WATER,
           synonyms=("water velocity",),
           abbreviations=("CSPD",),
           description="Horizontal current speed"),
        _v("current_direction", "degrees", Context.WATER,
           abbreviations=("CDIR",),
           description="Horizontal current direction"),
        _v("wave_height", "m", Context.WATER,
           synonyms=("significant wave height",),
           abbreviations=("SWH", "MWHLA"),
           description="Mean wave height, low-pass averaged"),
        # --- meteorology ----------------------------------------------------
        _v("wind_speed", "m/s", Context.AIR,
           abbreviations=("WSPD",),
           description="Wind speed"),
        _v("wind_direction", "degrees", Context.AIR,
           abbreviations=("WDIR",),
           description="Wind direction (from)"),
        _v("relative_humidity", "%", Context.AIR,
           synonyms=("humidity",),
           abbreviations=("RH", "RELH"),
           description="Relative humidity"),
        _v("precipitation", "mm", Context.AIR,
           synonyms=("rainfall",),
           abbreviations=("PRCP",),
           description="Accumulated precipitation"),
        _v("solar_radiation", "W/m^2", Context.AIR,
           synonyms=("shortwave radiation",),
           abbreviations=("SRAD",),
           description="Downwelling solar radiation"),
        # --- auxiliary / housekeeping (the 'excessive variables' row) -----
        _v("qa_level", "1", Context.PLATFORM, auxiliary=True,
           synonyms=("quality assurance level",),
           description="Dataset quality-assurance level"),
        _v("qc_flag", "1", Context.PLATFORM, auxiliary=True,
           synonyms=("quality flag", "quality control flag"),
           description="Per-sample quality-control flag"),
        _v("battery_voltage", "V", Context.PLATFORM, auxiliary=True,
           synonyms=("battery",),
           abbreviations=("BATT",),
           description="Instrument battery voltage"),
        _v("instrument_tilt", "degrees", Context.PLATFORM, auxiliary=True,
           description="Instrument tilt from vertical"),
        _v("sample_number", "1", Context.PLATFORM, auxiliary=True,
           synonyms=("record number",),
           description="Monotone sample counter"),
    ]
}


#: Ambiguous short forms, per the Table's "Ambiguous usages" row.  Each
#: maps to the canonical variables it might mean; ``None`` in the tuple
#: means "not an environmental variable at all" (e.g. *temporary*).
AMBIGUOUS_FORMS: dict[str, tuple[str | None, ...]] = {
    "temp": ("air_temperature", "water_temperature", None),
    "pres": ("air_pressure", "water_pressure"),
    "cond": ("conductivity", None),
    "do": ("dissolved_oxygen", None),
    "dir": ("wind_direction", "current_direction"),
    "speed": ("wind_speed", "current_speed"),
}


def searchable_variables() -> list[CanonicalVariable]:
    """Canonical variables that should appear in search (non-auxiliary,
    non-abstract)."""
    return [
        v
        for v in VOCABULARY.values()
        if not v.auxiliary and not _is_abstract(v)
    ]


def auxiliary_variables() -> list[CanonicalVariable]:
    """The QA/housekeeping variables (excluded from search by default)."""
    return [v for v in VOCABULARY.values() if v.auxiliary]


def _is_abstract(variable: CanonicalVariable) -> bool:
    """A pure concept node: some other variable names it as parent and it
    is never measured directly in the synthetic archive."""
    return variable.name in _ABSTRACT_CONCEPTS


_ABSTRACT_CONCEPTS = frozenset({"temperature", "fluorescence"})


def concept_children(name: str) -> list[str]:
    """Names of canonical variables whose parent is ``name``."""
    return sorted(
        v.name for v in VOCABULARY.values() if v.parent == name
    )

"""On-disk formats for the synthetic archive: CSV-ish and CDL-ish.

Real scientific archives mix formats; the poster's scan component is
configured with "directories, file types, naming conventions".  We provide
two text formats with symmetric writers and parsers:

* **CSV** — a ``# key: value`` comment header, then a header row of
  ``name [unit]`` columns, then numeric rows.
* **CDL** — a minimal NetCDF-CDL-like rendering: ``variables:`` block with
  ``units`` attributes, ``// global attributes``, and a ``data:`` block.

Both round-trip exactly through :func:`write_dataset` / :func:`parse_file`.
"""

from __future__ import annotations

import math
import re

from .dataset import Dataset, FileFormat, Platform
from .observations import InconsistentLengthError, ObservationColumn, ObservationTable


class FormatError(ValueError):
    """Raised when a file cannot be parsed in its claimed format."""


_CSV_COL_RE = re.compile(r"^(?P<name>.*?)\s*(?:\[(?P<unit>[^\]]*)\])?$")
_CDL_VAR_RE = re.compile(r"^\s*double\s+(?P<name>\S+)\s*\(row\)\s*;\s*$")
_CDL_ATTR_RE = re.compile(
    r"^\s*(?P<var>\S+):(?P<attr>\w+)\s*=\s*\"(?P<value>.*)\"\s*;\s*$"
)
_CDL_GLOBAL_RE = re.compile(
    r"^\s*:(?P<attr>[\w ]+)\s*=\s*\"(?P<value>.*)\"\s*;\s*$"
)


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _parse_value(token: str) -> float:
    token = token.strip()
    if token.lower() in {"nan", ""}:
        return float("nan")
    try:
        return float(token)
    except ValueError:
        raise FormatError(f"not a number: {token!r}")


# --------------------------------------------------------------------------
# CSV
# --------------------------------------------------------------------------

def write_csv(dataset: Dataset) -> str:
    """Serialize a dataset in the archive's CSV dialect."""
    lines = [f"# {key}: {value}" for key, value in dataset.attributes.items()]
    header = ["time [s]", "latitude [degrees]", "longitude [degrees]"]
    header.extend(
        f"{col.name} [{col.unit}]" if col.unit else col.name
        for col in dataset.table.columns
    )
    lines.append(",".join(header))
    table = dataset.table
    for i in range(table.row_count):
        row = [
            _format_value(table.times[i]),
            _format_value(table.lats[i]),
            _format_value(table.lons[i]),
        ]
        row.extend(_format_value(col.values[i]) for col in table.columns)
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def parse_csv(text: str, path: str = "<memory>") -> Dataset:
    """Parse the archive's CSV dialect back into a :class:`Dataset`.

    Raises:
        FormatError: on malformed headers or non-numeric cells.
    """
    attributes: dict[str, str] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines) and lines[i].startswith("#"):
        body = lines[i][1:].strip()
        if ":" in body:
            key, __, value = body.partition(":")
            attributes[key.strip()] = value.strip()
        i += 1
    if i >= len(lines):
        raise FormatError(f"{path}: no column header row")
    names: list[str] = []
    units: list[str] = []
    for cell in lines[i].split(","):
        match = _CSV_COL_RE.match(cell.strip())
        if match is None:  # pragma: no cover - regex matches everything
            raise FormatError(f"{path}: bad column header {cell!r}")
        names.append(match.group("name"))
        units.append(match.group("unit") or "")
    if len(names) < 3:
        raise FormatError(f"{path}: expected time/lat/lon columns")
    expected_coords = ("time", "lat", "lon")
    for name, prefix in zip(names, expected_coords):
        if not name.lower().startswith(prefix):
            # Guards against a lost header row: a row of numbers must
            # not be mistaken for column names.
            raise FormatError(
                f"{path}: coordinate header {name!r} does not look like "
                f"{prefix!r} — missing header row?"
            )
    i += 1
    data: list[list[float]] = [[] for __ in names]
    for line in lines[i:]:
        if not line.strip():
            continue
        cells = line.split(",")
        if len(cells) != len(names):
            raise FormatError(
                f"{path}: row has {len(cells)} cells, header has {len(names)}"
            )
        for j, cell in enumerate(cells):
            data[j].append(_parse_value(cell))
    columns = [
        ObservationColumn(name=names[j], unit=units[j], values=data[j])
        for j in range(3, len(names))
    ]
    try:
        table = ObservationTable(
            times=data[0], lats=data[1], lons=data[2], columns=columns
        )
    except InconsistentLengthError as exc:  # pragma: no cover - built equal
        raise FormatError(f"{path}: {exc}")
    platform = Platform(attributes.get("platform", Platform.STATION.value))
    return Dataset(
        path=path,
        platform=platform,
        file_format=FileFormat.CSV,
        attributes=attributes,
        table=table,
    )


# --------------------------------------------------------------------------
# CDL (NetCDF-header-like)
# --------------------------------------------------------------------------

def write_cdl(dataset: Dataset) -> str:
    """Serialize a dataset in the archive's CDL-like dialect."""
    table = dataset.table
    lines = [f"netcdf {dataset.name} {{"]
    lines.append(f"dimensions:\n\trow = {table.row_count} ;")
    lines.append("variables:")
    all_columns = _cdl_columns(table)
    for name, unit, __ in all_columns:
        lines.append(f"\tdouble {name}(row) ;")
        lines.append(f'\t\t{name}:units = "{unit}" ;')
    lines.append("")
    lines.append("// global attributes:")
    for key, value in dataset.attributes.items():
        lines.append(f'\t\t:{key} = "{value}" ;')
    lines.append("data:")
    for name, __, values in all_columns:
        rendered = ", ".join(_format_value(v) for v in values)
        lines.append(f" {name} = {rendered} ;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _cdl_columns(
    table: ObservationTable,
) -> list[tuple[str, str, list[float]]]:
    out: list[tuple[str, str, list[float]]] = [
        ("time", "s", table.times),
        ("latitude", "degrees", table.lats),
        ("longitude", "degrees", table.lons),
    ]
    out.extend((col.name, col.unit, col.values) for col in table.columns)
    return out


def parse_cdl(text: str, path: str = "<memory>") -> Dataset:
    """Parse the CDL-like dialect back into a :class:`Dataset`.

    Raises:
        FormatError: when required blocks or coordinates are missing.
    """
    var_order: list[str] = []
    units: dict[str, str] = {}
    attributes: dict[str, str] = {}
    data: dict[str, list[float]] = {}
    in_data = False
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line in {"}", "variables:"}:
            continue
        if line.startswith("data:"):
            in_data = True
            continue
        if in_data:
            stripped = line.strip()
            if "=" not in stripped:
                continue
            name, __, rest = stripped.partition("=")
            rest = rest.strip().rstrip(";").strip()
            values = (
                [_parse_value(tok) for tok in rest.split(",")] if rest else []
            )
            data[name.strip()] = values
            continue
        var_match = _CDL_VAR_RE.match(line)
        if var_match:
            var_order.append(var_match.group("name"))
            continue
        attr_match = _CDL_ATTR_RE.match(line)
        if attr_match and attr_match.group("attr") == "units":
            units[attr_match.group("var")] = attr_match.group("value")
            continue
        global_match = _CDL_GLOBAL_RE.match(line)
        if global_match:
            attributes[global_match.group("attr").strip()] = (
                global_match.group("value")
            )
    for coord in ("time", "latitude", "longitude"):
        if coord not in data:
            raise FormatError(f"{path}: missing coordinate {coord!r}")
    columns = [
        ObservationColumn(
            name=name, unit=units.get(name, ""), values=data.get(name, [])
        )
        for name in var_order
        if name not in {"time", "latitude", "longitude"}
    ]
    try:
        table = ObservationTable(
            times=data["time"],
            lats=data["latitude"],
            lons=data["longitude"],
            columns=columns,
        )
    except InconsistentLengthError as exc:
        raise FormatError(f"{path}: {exc}")
    platform = Platform(attributes.get("platform", Platform.STATION.value))
    return Dataset(
        path=path,
        platform=platform,
        file_format=FileFormat.CDL,
        attributes=attributes,
        table=table,
    )


# --------------------------------------------------------------------------
# dispatch
# --------------------------------------------------------------------------

def write_dataset(dataset: Dataset) -> str:
    """Serialize ``dataset`` in its declared :class:`FileFormat`."""
    if dataset.file_format is FileFormat.CSV:
        return write_csv(dataset)
    return write_cdl(dataset)


def parse_file(text: str, path: str) -> Dataset:
    """Parse a file by extension (``.csv`` / ``.cdl``).

    Raises:
        FormatError: for unknown extensions or malformed content.
    """
    if path.endswith(".csv"):
        return parse_csv(text, path=path)
    if path.endswith(".cdl"):
        return parse_cdl(text, path=path)
    raise FormatError(f"unknown file extension: {path!r}")

"""Observation data model: columns of numeric samples with metadata.

A dataset in a scientific archive is, at heart, a table: a time column,
position columns and one column per observed environmental variable.
``ObservationColumn`` holds one variable's samples plus the metadata the
archive *happens* to record for it (name as written, unit string as
written) — which is exactly the raw material the metadata mess lives in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


class InconsistentLengthError(ValueError):
    """Raised when a table's columns disagree on row count."""


@dataclass(frozen=True, slots=True)
class ColumnStats:
    """Summary statistics of a numeric column (the catalog's per-variable
    'feature' content)."""

    count: int
    minimum: float
    maximum: float
    mean: float
    stddev: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ColumnStats":
        """Compute stats over the finite values of ``values``.

        Non-finite samples (sensor dropouts encoded as NaN) are ignored,
        matching what a scanner summarizing raw files must do.

        Raises:
            ValueError: if no finite values remain.
        """
        finite = [v for v in values if math.isfinite(v)]
        if not finite:
            raise ValueError("no finite values to summarize")
        n = len(finite)
        total = sum(finite)
        mean = total / n
        variance = sum((v - mean) ** 2 for v in finite) / n
        return cls(
            count=n,
            minimum=min(finite),
            maximum=max(finite),
            mean=mean,
            stddev=math.sqrt(variance),
        )

    def overlaps_range(self, lo: float, hi: float) -> bool:
        """True if [min, max] intersects the closed range [lo, hi]."""
        return self.minimum <= hi and lo <= self.maximum


@dataclass(slots=True)
class ObservationColumn:
    """One observed variable: name/unit *as written in the file* plus data."""

    name: str
    unit: str
    values: list[float] = field(default_factory=list)

    def stats(self) -> ColumnStats:
        """Summary statistics of this column's finite values."""
        return ColumnStats.from_values(self.values)


@dataclass(slots=True)
class ObservationTable:
    """A rectangular observation table.

    ``times`` is epoch seconds; ``lats``/``lons`` give per-row position
    (constant for a fixed station, varying for a cruise or glider).

    Raises:
        InconsistentLengthError: on construction if lengths disagree.
    """

    times: list[float]
    lats: list[float]
    lons: list[float]
    columns: list[ObservationColumn]

    def __post_init__(self) -> None:
        n = len(self.times)
        if len(self.lats) != n or len(self.lons) != n:
            raise InconsistentLengthError(
                "times/lats/lons lengths disagree: "
                f"{n}/{len(self.lats)}/{len(self.lons)}"
            )
        for col in self.columns:
            if len(col.values) != n:
                raise InconsistentLengthError(
                    f"column {col.name!r} has {len(col.values)} rows, "
                    f"table has {n}"
                )

    @property
    def row_count(self) -> int:
        """Number of rows (samples)."""
        return len(self.times)

    def column_named(self, name: str) -> ObservationColumn:
        """Return the column with exactly the as-written ``name``.

        Raises:
            KeyError: if no such column exists.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(name)

    def column_names(self) -> list[str]:
        """As-written names of all observation columns, in file order."""
        return [col.name for col in self.columns]

"""Deterministic synthetic CMOP-like archive generator.

The paper's substrate is the Center for Coastal Margin Observation and
Prediction archive: fixed estuary stations, ship cruises, CTD casts,
glider missions and met stations, observed over years, stored in mixed
formats under per-campaign directories.  This generator reproduces that
*shape* deterministically from a seed:

* realistic geography (Columbia River estuary and NE Pacific shelf),
* per-platform variable suites drawn from the canonical vocabulary,
* plausible value ranges and random-walk dynamics per variable,
* mixed CSV/CDL formats and per-platform directory conventions,
* an external station registry (the "external metadata" the wrangling
  process folds in).

Datasets come out with *clean* canonical names; ``repro.archive.mess``
then rewrites them into the semantic mess, recording ground truth.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from .dataset import Dataset, DatasetTruth, FileFormat, Platform, VariableTruth
from .observations import ObservationColumn, ObservationTable
from .vocabulary import VOCABULARY, CanonicalVariable

#: Plausible physical range (lo, hi) per canonical variable, used both to
#: synthesize values and (in tests) to sanity-check generated data.
VALUE_RANGES: dict[str, tuple[float, float]] = {
    "air_temperature": (-5.0, 30.0),
    "water_temperature": (4.0, 22.0),
    "sea_surface_temperature": (6.0, 20.0),
    "salinity": (0.0, 34.0),
    "conductivity": (0.5, 5.5),
    "dissolved_oxygen": (2.0, 12.0),
    "oxygen_saturation": (40.0, 120.0),
    "ph": (7.2, 8.6),
    "nitrate": (0.0, 40.0),
    "phosphate": (0.0, 3.5),
    "fluorescence_375nm": (0.0, 5.0),
    "fluorescence_400nm": (0.0, 5.0),
    "chlorophyll": (0.0, 25.0),
    "turbidity": (0.0, 60.0),
    "par": (0.0, 500.0),
    "air_pressure": (980.0, 1040.0),
    "water_pressure": (0.0, 200.0),
    "depth": (0.0, 180.0),
    "current_speed": (0.0, 2.5),
    "current_direction": (0.0, 360.0),
    "wave_height": (0.0, 8.0),
    "wind_speed": (0.0, 25.0),
    "wind_direction": (0.0, 360.0),
    "relative_humidity": (30.0, 100.0),
    "precipitation": (0.0, 20.0),
    "solar_radiation": (0.0, 900.0),
    "qa_level": (0.0, 2.0),
    "qc_flag": (0.0, 4.0),
    "battery_voltage": (10.5, 14.2),
    "instrument_tilt": (0.0, 15.0),
    "sample_number": (0.0, 1e6),
}

#: Variable suites per platform: (core, optional) canonical names.  Every
#: dataset gets the core suite; optionals join with probability 0.5 each.
PLATFORM_SUITES: dict[Platform, tuple[tuple[str, ...], tuple[str, ...]]] = {
    Platform.STATION: (
        ("water_temperature", "salinity", "depth"),
        ("dissolved_oxygen", "turbidity", "conductivity", "chlorophyll",
         "ph", "oxygen_saturation"),
    ),
    Platform.CRUISE: (
        ("sea_surface_temperature", "salinity"),
        ("chlorophyll", "fluorescence_375nm", "fluorescence_400nm",
         "nitrate", "phosphate", "par"),
    ),
    Platform.CAST: (
        ("water_temperature", "salinity", "water_pressure", "depth"),
        ("dissolved_oxygen", "fluorescence_375nm", "fluorescence_400nm",
         "turbidity", "ph"),
    ),
    Platform.GLIDER: (
        ("water_temperature", "salinity", "depth"),
        ("chlorophyll", "dissolved_oxygen", "current_speed",
         "current_direction", "par"),
    ),
    Platform.MET: (
        ("air_temperature", "wind_speed", "wind_direction"),
        ("air_pressure", "relative_humidity", "precipitation",
         "solar_radiation", "wave_height"),
    ),
}

#: Auxiliary variables appended by the mess injector's "excessive
#: variables" category; listed here so the generator can size datasets.
AUXILIARY_SUITE: tuple[str, ...] = (
    "qa_level", "qc_flag", "battery_voltage", "sample_number",
)

# Columbia River estuary / NE Pacific shelf geography.
_ESTUARY_LAT = (46.05, 46.35)
_ESTUARY_LON = (-124.10, -123.40)
_SHELF_LAT = (44.50, 47.50)
_SHELF_LON = (-125.50, -124.00)

_STATION_NAMES = (
    "saturn01", "saturn02", "saturn03", "saturn04", "saturn05",
    "jetta", "tansy", "grays", "woody", "eliot", "marsh", "coaof",
    "dsdma", "yacht", "lonw1", "ogi01", "ogi02", "red26", "am169",
    "cbnc3",
)

_EPOCH_2008 = 1199145600.0  # 2008-01-01T00:00:00Z
_YEAR_SECONDS = 365.25 * 86400.0


@dataclass(frozen=True, slots=True)
class ArchiveSpec:
    """Size and seed of a synthetic archive."""

    stations: int = 8
    cruises: int = 6
    casts: int = 10
    gliders: int = 3
    met_stations: int = 3
    samples_per_station: int = 400
    samples_per_cruise: int = 150
    samples_per_cast: int = 60
    samples_per_glider: int = 250
    samples_per_met: int = 300
    years: float = 4.0
    seed: int = 7

    @property
    def dataset_count(self) -> int:
        """Total number of datasets the spec will produce."""
        return (
            self.stations
            + self.cruises
            + self.casts
            + self.gliders
            + self.met_stations
        )


@dataclass(slots=True)
class StationRecord:
    """One entry of the external station registry."""

    station_id: str
    name: str
    lat: float
    lon: float
    description: str


@dataclass(slots=True)
class SyntheticArchive:
    """Generator output: clean datasets plus the external registry."""

    spec: ArchiveSpec
    datasets: list[Dataset]
    stations: list[StationRecord] = field(default_factory=list)

    def dataset_by_path(self, path: str) -> Dataset:
        """Lookup a dataset by archive-relative path.

        Raises:
            KeyError: when no dataset has that path.
        """
        for ds in self.datasets:
            if ds.path == path:
                return ds
        raise KeyError(path)


#: Variables with a pronounced annual cycle in the synthetic archive
#: (fraction of the physical range used as seasonal amplitude).
SEASONAL_AMPLITUDE: dict[str, float] = {
    "air_temperature": 0.35,
    "water_temperature": 0.30,
    "sea_surface_temperature": 0.30,
    "solar_radiation": 0.40,
    "chlorophyll": 0.30,
    "relative_humidity": 0.15,
}


def _seasonal_offset(epoch: float, amplitude: float) -> float:
    """Annual sinusoid peaking around day ~200 (NH late July)."""
    year_phase = (epoch - _EPOCH_2008) / _YEAR_SECONDS
    return amplitude * math.sin(2.0 * math.pi * (year_phase - 0.3))


def _random_walk(
    rng: random.Random,
    lo: float,
    hi: float,
    n: int,
    times: list[float] | None = None,
    seasonal_fraction: float = 0.0,
) -> list[float]:
    """A bounded random walk across [lo, hi] — plausible sensor dynamics,
    optionally riding an annual seasonal cycle."""
    span = hi - lo
    value = rng.uniform(lo + 0.25 * span, hi - 0.25 * span)
    step = span * 0.03
    out = []
    for k in range(n):
        value += rng.uniform(-step, step)
        value = min(hi, max(lo, value))
        sample = value
        if times is not None and seasonal_fraction > 0.0:
            sample += _seasonal_offset(
                times[k], seasonal_fraction * span
            )
            sample = min(hi, max(lo, sample))
        out.append(round(sample, 4))
    return out


def _pick_suite(
    rng: random.Random, platform: Platform
) -> list[CanonicalVariable]:
    core, optional = PLATFORM_SUITES[platform]
    names = list(core)
    names.extend(name for name in optional if rng.random() < 0.5)
    return [VOCABULARY[name] for name in names]


def _make_columns(
    rng: random.Random,
    suite: list[CanonicalVariable],
    n: int,
    times: list[float] | None = None,
) -> list[ObservationColumn]:
    columns = []
    for var in suite:
        lo, hi = VALUE_RANGES[var.name]
        columns.append(
            ObservationColumn(
                name=var.name,
                unit=var.unit,
                values=_random_walk(
                    rng, lo, hi, n,
                    times=times,
                    seasonal_fraction=SEASONAL_AMPLITUDE.get(var.name, 0.0),
                ),
            )
        )
    return columns


def _clean_truth(path: str, dataset: Dataset) -> DatasetTruth:
    variables = tuple(
        VariableTruth(
            written_name=col.name,
            written_unit=col.unit,
            canonical=col.name,
            category="clean",
            auxiliary=VOCABULARY[col.name].auxiliary,
        )
        for col in dataset.table.columns
    )
    return DatasetTruth(dataset_path=path, variables=variables)


def generate_archive(spec: ArchiveSpec | None = None) -> SyntheticArchive:
    """Generate a clean synthetic archive per ``spec`` (deterministic).

    Dataset paths follow per-platform conventions, e.g.
    ``stations/saturn01/saturn01_2009.csv``,
    ``cruises/cruise_2010_04/transect_03.cdl``.
    """
    spec = spec or ArchiveSpec()
    rng = random.Random(spec.seed)
    datasets: list[Dataset] = []
    stations: list[StationRecord] = []

    # -- fixed stations ------------------------------------------------------
    for i in range(spec.stations):
        sid = _STATION_NAMES[i % len(_STATION_NAMES)]
        if i >= len(_STATION_NAMES):
            sid = f"{sid}{i}"
        lat = rng.uniform(*_ESTUARY_LAT)
        lon = rng.uniform(*_ESTUARY_LON)
        stations.append(
            StationRecord(
                station_id=sid,
                name=f"Station {sid.upper()}",
                lat=round(lat, 5),
                lon=round(lon, 5),
                description=f"Fixed estuary observation station {sid}",
            )
        )
        n = spec.samples_per_station
        start = _EPOCH_2008 + rng.uniform(0, 0.5) * spec.years * _YEAR_SECONDS
        period = rng.choice([900.0, 1800.0, 3600.0])
        times = [start + k * period for k in range(n)]
        suite = _pick_suite(rng, Platform.STATION)
        year = 2008 + int((start - _EPOCH_2008) / _YEAR_SECONDS)
        ds = Dataset(
            path=f"stations/{sid}/{sid}_{year}.csv",
            platform=Platform.STATION,
            file_format=FileFormat.CSV,
            attributes={
                "title": f"Station {sid} time series {year}",
                "platform": Platform.STATION.value,
                "station": sid,
            },
            table=ObservationTable(
                times=times,
                lats=[round(lat, 5)] * n,
                lons=[round(lon, 5)] * n,
                columns=_make_columns(rng, suite, n, times=times),
            ),
        )
        ds.truth = _clean_truth(ds.path, ds)
        datasets.append(ds)

    # -- cruises -------------------------------------------------------------
    # Like casts: one format per cruise directory (see below).
    cruise_format_by_dir: dict[tuple[int, int], FileFormat] = {}
    for i in range(spec.cruises):
        n = spec.samples_per_cruise
        start = _EPOCH_2008 + rng.uniform(0, spec.years - 0.1) * _YEAR_SECONDS
        times = [start + k * 600.0 for k in range(n)]
        lat0 = rng.uniform(*_SHELF_LAT)
        lon0 = rng.uniform(*_SHELF_LON)
        heading_lat = rng.uniform(-0.004, 0.004)
        heading_lon = rng.uniform(-0.004, 0.004)
        lats = [round(min(89.9, max(-89.9, lat0 + heading_lat * k)), 5)
                for k in range(n)]
        lons = [round(min(179.9, max(-179.9, lon0 + heading_lon * k)), 5)
                for k in range(n)]
        suite = _pick_suite(rng, Platform.CRUISE)
        year = 2008 + int((start - _EPOCH_2008) / _YEAR_SECONDS)
        month = 1 + int(12 * ((start - _EPOCH_2008) / _YEAR_SECONDS % 1.0))
        fmt = cruise_format_by_dir.setdefault(
            (year, month),
            FileFormat.CDL if rng.random() < 0.5 else FileFormat.CSV,
        )
        ds = Dataset(
            path=(
                f"cruises/cruise_{year}_{month:02d}/"
                f"transect_{i:02d}.{fmt.value}"
            ),
            platform=Platform.CRUISE,
            file_format=fmt,
            attributes={
                "title": f"Cruise {year}-{month:02d} transect {i}",
                "platform": Platform.CRUISE.value,
                "vessel": rng.choice(["wecoma", "forerunner", "barnes"]),
            },
            table=ObservationTable(
                times=times, lats=lats, lons=lons,
                columns=_make_columns(rng, suite, n, times=times),
            ),
        )
        ds.truth = _clean_truth(ds.path, ds)
        datasets.append(ds)

    # -- CTD casts ------------------------------------------------------------
    # One format per casts/<year>/ directory: archives are messy about
    # names, but a campaign's processing pipeline writes one format, and
    # the directory-format-consistency validation check relies on that.
    cast_format_by_year: dict[int, FileFormat] = {}
    for i in range(spec.casts):
        n = spec.samples_per_cast
        start = _EPOCH_2008 + rng.uniform(0, spec.years - 0.01) * _YEAR_SECONDS
        times = [start + k * 2.0 for k in range(n)]
        lat = round(rng.uniform(*_SHELF_LAT), 5)
        lon = round(rng.uniform(*_SHELF_LON), 5)
        suite = _pick_suite(rng, Platform.CAST)
        year = 2008 + int((start - _EPOCH_2008) / _YEAR_SECONDS)
        fmt = cast_format_by_year.setdefault(
            year,
            FileFormat.CDL if rng.random() < 0.5 else FileFormat.CSV,
        )
        ds = Dataset(
            path=f"casts/{year}/ctd_cast_{i:03d}.{fmt.value}",
            platform=Platform.CAST,
            file_format=fmt,
            attributes={
                "title": f"CTD cast {i:03d} ({year})",
                "platform": Platform.CAST.value,
            },
            table=ObservationTable(
                times=times, lats=[lat] * n, lons=[lon] * n,
                columns=_make_columns(rng, suite, n, times=times),
            ),
        )
        # Depth column of a cast should be monotone (downcast).
        for col in ds.table.columns:
            if col.name in {"depth", "water_pressure"}:
                col.values = sorted(col.values)
        ds.truth = _clean_truth(ds.path, ds)
        datasets.append(ds)

    # -- gliders ---------------------------------------------------------------
    for i in range(spec.gliders):
        n = spec.samples_per_glider
        start = _EPOCH_2008 + rng.uniform(0, spec.years - 0.2) * _YEAR_SECONDS
        times = [start + k * 300.0 for k in range(n)]
        lat0 = rng.uniform(*_SHELF_LAT)
        lon0 = rng.uniform(*_SHELF_LON)
        lats, lons = [], []
        lat, lon = lat0, lon0
        for __ in range(n):
            lat = min(89.9, max(-89.9, lat + rng.uniform(-0.002, 0.002)))
            lon = min(179.9, max(-179.9, lon + rng.uniform(-0.002, 0.002)))
            lats.append(round(lat, 5))
            lons.append(round(lon, 5))
        suite = _pick_suite(rng, Platform.GLIDER)
        year = 2008 + int((start - _EPOCH_2008) / _YEAR_SECONDS)
        ds = Dataset(
            path=f"auv/mission_{year}_{i:02d}/glider_{i:02d}.csv",
            platform=Platform.GLIDER,
            file_format=FileFormat.CSV,
            attributes={
                "title": f"Glider mission {year}-{i:02d}",
                "platform": Platform.GLIDER.value,
            },
            table=ObservationTable(
                times=times, lats=lats, lons=lons,
                columns=_make_columns(rng, suite, n, times=times),
            ),
        )
        ds.truth = _clean_truth(ds.path, ds)
        datasets.append(ds)

    # -- met stations ------------------------------------------------------------
    for i in range(spec.met_stations):
        sid = f"met{i + 1:02d}"
        lat = round(rng.uniform(*_ESTUARY_LAT), 5)
        lon = round(rng.uniform(*_ESTUARY_LON), 5)
        stations.append(
            StationRecord(
                station_id=sid,
                name=f"Met station {sid.upper()}",
                lat=lat,
                lon=lon,
                description=f"Meteorological station {sid}",
            )
        )
        n = spec.samples_per_met
        start = _EPOCH_2008 + rng.uniform(0, 0.5) * spec.years * _YEAR_SECONDS
        times = [start + k * 3600.0 for k in range(n)]
        suite = _pick_suite(rng, Platform.MET)
        year = 2008 + int((start - _EPOCH_2008) / _YEAR_SECONDS)
        ds = Dataset(
            path=f"met/{sid}/{sid}_{year}.csv",
            platform=Platform.MET,
            file_format=FileFormat.CSV,
            attributes={
                "title": f"Met station {sid} hourly {year}",
                "platform": Platform.MET.value,
                "station": sid,
            },
            table=ObservationTable(
                times=times, lats=[lat] * n, lons=[lon] * n,
                columns=_make_columns(rng, suite, n, times=times),
            ),
        )
        ds.truth = _clean_truth(ds.path, ds)
        datasets.append(ds)

    return SyntheticArchive(spec=spec, datasets=datasets, stations=stations)


def station_registry_text(stations: list[StationRecord]) -> str:
    """Render the external station registry as the archive stores it
    (a pipe-separated table — deliberately *not* one of the dataset
    formats, because external metadata rarely matches)."""
    lines = ["station_id|name|lat|lon|description"]
    for s in stations:
        lines.append(
            f"{s.station_id}|{s.name}|{s.lat}|{s.lon}|{s.description}"
        )
    return "\n".join(lines) + "\n"


def parse_station_registry(text: str) -> list[StationRecord]:
    """Parse the registry format written by :func:`station_registry_text`.

    Raises:
        ValueError: when a row does not have five fields.
    """
    out = []
    lines = [ln for ln in text.splitlines() if ln.strip()]
    for line in lines[1:]:
        parts = line.split("|")
        if len(parts) != 5:
            raise ValueError(f"bad registry row: {line!r}")
        out.append(
            StationRecord(
                station_id=parts[0],
                name=parts[1],
                lat=float(parts[2]),
                lon=float(parts[3]),
                description=parts[4],
            )
        )
    return out

"""Refine engine configuration: facets and row filtering.

Every Refine operation carries an ``engineConfig`` whose facets select
the rows the operation touches (the poster's example has an empty facet
list and ``"mode": "row-based"``).  We implement the two facet kinds the
wrangling rules need: the *list* facet (column value in a selected set)
and the *text* facet (substring / regex match).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any


class FacetConfigError(ValueError):
    """Raised when a facet JSON dict cannot be interpreted."""


@dataclass(frozen=True, slots=True)
class ListFacet:
    """Keep rows whose ``column`` value is in ``selection``."""

    column: str
    selection: tuple[Any, ...]
    invert: bool = False

    def matches(self, row: dict[str, Any]) -> bool:
        hit = row.get(self.column) in self.selection
        return not hit if self.invert else hit

    def to_json(self) -> dict[str, Any]:
        """Refine-shaped facet dict."""
        return {
            "type": "list",
            "name": self.column,
            "columnName": self.column,
            "expression": "value",
            "selection": [
                {"v": {"v": value, "l": str(value)}}
                for value in self.selection
            ],
            "invert": self.invert,
        }


@dataclass(frozen=True, slots=True)
class TextFacet:
    """Keep rows whose ``column`` value matches ``query``."""

    column: str
    query: str
    mode: str = "text"  # 'text' (substring) or 'regex'
    case_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.mode not in {"text", "regex"}:
            raise FacetConfigError(f"unknown text facet mode {self.mode!r}")

    def matches(self, row: dict[str, Any]) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        text = str(value)
        if self.mode == "regex":
            flags = 0 if self.case_sensitive else re.IGNORECASE
            return re.search(self.query, text, flags) is not None
        if self.case_sensitive:
            return self.query in text
        return self.query.lower() in text.lower()

    def to_json(self) -> dict[str, Any]:
        """Refine-shaped facet dict."""
        return {
            "type": "text",
            "name": self.column,
            "columnName": self.column,
            "query": self.query,
            "mode": self.mode,
            "caseSensitive": self.case_sensitive,
        }


Facet = ListFacet | TextFacet


def facet_from_json(config: dict[str, Any]) -> Facet:
    """Parse one facet dict (as found in ``engineConfig.facets``).

    Raises:
        FacetConfigError: for unknown facet types or missing fields.
    """
    facet_type = config.get("type", "list")
    column = config.get("columnName") or config.get("name")
    if not column:
        raise FacetConfigError(f"facet without a column: {config!r}")
    if facet_type == "list":
        selection = []
        for item in config.get("selection", []):
            v = item.get("v", item) if isinstance(item, dict) else item
            selection.append(v.get("v") if isinstance(v, dict) else v)
        return ListFacet(
            column=column,
            selection=tuple(selection),
            invert=bool(config.get("invert", False)),
        )
    if facet_type == "text":
        return TextFacet(
            column=column,
            query=str(config.get("query", "")),
            mode=config.get("mode", "text"),
            case_sensitive=bool(config.get("caseSensitive", False)),
        )
    raise FacetConfigError(f"unknown facet type {facet_type!r}")


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """The facet set + mode attached to every operation."""

    facets: tuple[Facet, ...] = ()
    mode: str = "row-based"

    def matches(self, row: dict[str, Any]) -> bool:
        """Row passes when *all* facets match (Refine semantics)."""
        return all(facet.matches(row) for facet in self.facets)

    def to_json(self) -> dict[str, Any]:
        """Refine-shaped engineConfig dict."""
        return {
            "facets": [facet.to_json() for facet in self.facets],
            "mode": self.mode,
        }

    @classmethod
    def from_json(cls, config: dict[str, Any] | None) -> "EngineConfig":
        """Parse an engineConfig dict (None means match-all)."""
        if not config:
            return cls()
        return cls(
            facets=tuple(
                facet_from_json(f) for f in config.get("facets", [])
            ),
            mode=config.get("mode", "row-based"),
        )

"""Google Refine substrate: GREL expressions, operations, facets,
clustering, operation-history JSON and the catalog bridge."""

from .bridge import (
    FIELD_COLUMN,
    DiscoverySession,
    apply_rules_to_catalog,
    catalog_to_table,
    make_canonical_chooser,
    most_common_chooser,
)
from .clustering import (
    KEYERS,
    ValueCluster,
    clusters_to_mass_edits,
    key_collision_clusters,
    nearest_neighbour_clusters,
)
from .facets import (
    EngineConfig,
    FacetConfigError,
    ListFacet,
    TextFacet,
    facet_from_json,
)
from .grel import GrelEvalError, GrelExpression, GrelSyntaxError, evaluate
from .history import RuleSet
from .ops import (
    ColumnAdditionOperation,
    ColumnRemovalOperation,
    ColumnRenameOperation,
    FillDownOperation,
    MassEditEdit,
    MassEditOperation,
    Operation,
    OperationError,
    RowRemovalOperation,
    TextTransformOperation,
    operation_from_json,
)
from .table import ColumnError, RefineTable

__all__ = [
    "ColumnAdditionOperation",
    "ColumnError",
    "ColumnRemovalOperation",
    "ColumnRenameOperation",
    "DiscoverySession",
    "EngineConfig",
    "FIELD_COLUMN",
    "FacetConfigError",
    "FillDownOperation",
    "GrelEvalError",
    "GrelExpression",
    "GrelSyntaxError",
    "KEYERS",
    "ListFacet",
    "MassEditEdit",
    "MassEditOperation",
    "Operation",
    "OperationError",
    "RefineTable",
    "RowRemovalOperation",
    "RuleSet",
    "TextFacet",
    "TextTransformOperation",
    "ValueCluster",
    "apply_rules_to_catalog",
    "catalog_to_table",
    "clusters_to_mass_edits",
    "evaluate",
    "facet_from_json",
    "key_collision_clusters",
    "make_canonical_chooser",
    "most_common_chooser",
    "nearest_neighbour_clusters",
    "operation_from_json",
]

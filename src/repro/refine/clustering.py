"""Refine's value clustering: key collision and nearest neighbour.

"Discovering Transformations with Google Refine": the curator clusters a
column's values; each cluster merges to one value, exported as a
``core/mass-edit`` rule.  We implement both method families Refine
ships:

* **key collision** — bucket values by a key function (fingerprint,
  n-gram fingerprint, metaphone).  Cheap (one pass) and high precision.
* **nearest neighbour** — connect values whose pairwise distance is
  under a radius (Levenshtein, Jaro-Winkler); clusters are the connected
  components.  Expensive (pairwise) but catches typos key collision
  misses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from ..text import (
    damerau_levenshtein,
    fingerprint,
    jaro_winkler,
    metaphone,
    ngram_fingerprint,
)

KeyFunction = Callable[[str], str]

KEYERS: dict[str, KeyFunction] = {
    "fingerprint": fingerprint,
    "ngram-fingerprint": ngram_fingerprint,
    "metaphone": metaphone,
}


@dataclass(frozen=True, slots=True)
class ValueCluster:
    """One cluster of similar values with their occurrence counts."""

    values: tuple[str, ...]  # sorted by (-count, value)
    counts: tuple[int, ...]
    method: str

    @property
    def size(self) -> int:
        """Distinct value count."""
        return len(self.values)

    @property
    def total_count(self) -> int:
        """Total occurrences across the cluster."""
        return sum(self.counts)

    @property
    def suggested_value(self) -> str:
        """Refine's default merge target: the most common value."""
        return self.values[0]


def _make_clusters(
    groups: dict[str, list[str]],
    counts: dict[str, int],
    method: str,
    min_size: int,
) -> list[ValueCluster]:
    clusters = []
    for members in groups.values():
        if len(members) < min_size:
            continue
        ordered = sorted(members, key=lambda v: (-counts[v], v))
        clusters.append(
            ValueCluster(
                values=tuple(ordered),
                counts=tuple(counts[v] for v in ordered),
                method=method,
            )
        )
    clusters.sort(key=lambda c: (-c.total_count, c.values))
    return clusters


def key_collision_clusters(
    value_counts: dict[str, int],
    keyer: str = "fingerprint",
    min_size: int = 2,
) -> list[ValueCluster]:
    """Cluster values whose key function collides.

    Raises:
        KeyError: for an unknown keyer name.
    """
    key_fn = KEYERS[keyer]
    groups: dict[str, list[str]] = defaultdict(list)
    for value in value_counts:
        groups[key_fn(value)].append(value)
    return _make_clusters(groups, value_counts, keyer, min_size)


def nearest_neighbour_clusters(
    value_counts: dict[str, int],
    distance: str = "levenshtein",
    radius: float = 2.0,
    min_size: int = 2,
    block_chars: int = 1,
) -> list[ValueCluster]:
    """Cluster values by connected components under a distance radius.

    ``distance`` is ``levenshtein`` (radius = max edit distance) or
    ``jaro-winkler`` (radius = max 1-similarity).  ``block_chars``
    reproduces Refine's blocking: only pairs sharing a prefix of that
    length are compared (keeps the pairwise cost practical).

    Raises:
        ValueError: for an unknown distance or non-positive radius.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if distance == "levenshtein":
        def near(a: str, b: str) -> bool:
            if abs(len(a) - len(b)) > radius:
                return False
            return damerau_levenshtein(a, b) <= radius
    elif distance == "jaro-winkler":
        def near(a: str, b: str) -> bool:
            return 1.0 - jaro_winkler(a, b) <= radius
    else:
        raise ValueError(f"unknown distance {distance!r}")

    values = sorted(value_counts)
    parent: dict[str, str] = {v: v for v in values}

    def find(v: str) -> str:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    blocks: dict[str, list[str]] = defaultdict(list)
    for value in values:
        blocks[value[:block_chars].lower()].append(value)
    for members in blocks.values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if near(a.lower(), b.lower()):
                    union(a, b)

    groups: dict[str, list[str]] = defaultdict(list)
    for value in values:
        groups[find(value)].append(value)
    return _make_clusters(
        groups, value_counts, f"nn-{distance}", min_size
    )


def clusters_to_mass_edits(
    clusters: list[ValueCluster],
    target_for: Callable[[ValueCluster], str | None] | None = None,
):
    """Convert clusters into one ``core/mass-edit`` operation per column
    pass, Refine-style.

    ``target_for`` picks the merge target per cluster (None skips the
    cluster); the default merges to the most common value.  Returns a
    list of :class:`~repro.refine.ops.MassEditEdit`.
    """
    from .ops import MassEditEdit

    edits = []
    for cluster in clusters:
        target = (
            target_for(cluster) if target_for is not None
            else cluster.suggested_value
        )
        if target is None:
            continue
        from_values = tuple(v for v in cluster.values if v != target)
        if not from_values:
            continue
        edits.append(MassEditEdit(from_values=from_values, to_value=target))
    return edits

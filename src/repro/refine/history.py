"""Operation-history JSON: export, import, replay.

"Export JSON rules" / "Run rules against metadata" — the poster's
round-trip.  A :class:`RuleSet` is an ordered list of operations that
serializes to the Refine operation-history format (a JSON array) and
replays against a table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .ops import Operation, OperationError, operation_from_json
from .table import RefineTable


@dataclass(slots=True)
class RuleSet:
    """An ordered, replayable list of Refine operations."""

    operations: list[Operation] = field(default_factory=list)

    def append(self, operation: Operation) -> None:
        """Add an operation at the end."""
        self.operations.append(operation)

    def extend(self, operations: list[Operation]) -> None:
        """Add several operations."""
        self.operations.extend(operations)

    def __len__(self) -> int:
        return len(self.operations)

    def apply(self, table: RefineTable) -> int:
        """Replay all operations in order; returns total changes."""
        return sum(op.apply(table) for op in self.operations)

    # -- JSON ------------------------------------------------------------------

    def to_json(self) -> list[dict[str, Any]]:
        """The operation-history array."""
        return [op.to_json() for op in self.operations]

    def dumps(self, indent: int = 2) -> str:
        """Serialized JSON text."""
        return json.dumps(self.to_json(), indent=indent)

    @classmethod
    def from_json(cls, history: list[dict[str, Any]]) -> "RuleSet":
        """Parse an operation-history array.

        Raises:
            OperationError: on unknown or malformed operations.
        """
        return cls(operations=[operation_from_json(op) for op in history])

    @classmethod
    def loads(cls, text: str) -> "RuleSet":
        """Parse JSON text (object or array; a single op dict is accepted).

        Raises:
            OperationError: when the JSON is not an operation history.
        """
        data = json.loads(text)
        if isinstance(data, dict):
            data = [data]
        if not isinstance(data, list):
            raise OperationError(
                f"operation history must be a list, got {type(data).__name__}"
            )
        return cls.from_json(data)

    def rename_mapping(self) -> dict[str, str]:
        """The combined old -> new value map across all mass-edits,
        composed in application order (a->b then b->c yields a->c)."""
        combined: dict[str, str] = {}
        for operation in self.operations:
            mapping = getattr(operation, "rename_mapping", None)
            if mapping is None:
                continue
            step = mapping()
            for old, new in list(combined.items()):
                combined[old] = step.get(new, new)
            for old, new in step.items():
                combined.setdefault(old, new)
        return {k: v for k, v in combined.items() if k != v}

"""Refine operations: the JSON rules the poster exports and replays.

The poster shows a verbatim ``core/mass-edit`` operation (renaming
``ATastn`` to ``sea surface temperature``); a metadata processing chain
exports such rules as JSON and runs them "against metadata".  Each
operation here serializes to (and parses from) the operation-history
format Google Refine produces, and applies itself to a
:class:`~repro.refine.table.RefineTable`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from .facets import EngineConfig
from .grel import GrelExpression
from .table import RefineTable


class OperationError(ValueError):
    """Raised when an operation dict is malformed or cannot apply."""


class Operation(ABC):
    """One replayable edit."""

    op: str  # the Refine op identifier, e.g. 'core/mass-edit'

    @abstractmethod
    def apply(self, table: RefineTable) -> int:
        """Apply to ``table``; returns the number of cells/rows changed."""

    @abstractmethod
    def to_json(self) -> dict[str, Any]:
        """The Refine operation-history dict."""


@dataclass(slots=True)
class MassEditEdit:
    """One edit group of a mass-edit: several 'from' values, one 'to'."""

    from_values: tuple[str, ...]
    to_value: str
    from_blank: bool = False
    from_error: bool = False


@dataclass(slots=True)
class MassEditOperation(Operation):
    """``core/mass-edit``: bulk value rewrites in one column."""

    column: str
    edits: list[MassEditEdit]
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    expression: str = "value"
    description: str = ""
    op = "core/mass-edit"

    def apply(self, table: RefineTable) -> int:
        table.require_column(self.column)
        expr = GrelExpression(self.expression)
        mapping: dict[str, str] = {}
        for edit in self.edits:
            for from_value in edit.from_values:
                mapping[from_value] = edit.to_value

        def rewrite(value: Any, row: dict[str, Any]) -> Any:
            keyed = expr.evaluate(value, cells=row)
            return mapping.get(keyed, value)

        return table.transform_column(
            self.column, rewrite, row_filter=self.engine_config.matches
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Mass edit cells in column {self.column}",
            "engineConfig": self.engine_config.to_json(),
            "columnName": self.column,
            "expression": self.expression,
            "edits": [
                {
                    "fromBlank": edit.from_blank,
                    "fromError": edit.from_error,
                    "from": list(edit.from_values),
                    "to": edit.to_value,
                }
                for edit in self.edits
            ],
        }

    def rename_mapping(self) -> dict[str, str]:
        """The flat from -> to map this operation encodes."""
        out: dict[str, str] = {}
        for edit in self.edits:
            for from_value in edit.from_values:
                out[from_value] = edit.to_value
        return out


@dataclass(slots=True)
class TextTransformOperation(Operation):
    """``core/text-transform``: apply a GREL expression to a column."""

    column: str
    expression: str
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    on_error: str = "keep-original"  # or 'set-to-blank'
    repeat: bool = False
    repeat_count: int = 10
    description: str = ""
    op = "core/text-transform"

    def apply(self, table: RefineTable) -> int:
        table.require_column(self.column)
        expr = GrelExpression(self.expression)

        def rewrite(value: Any, row: dict[str, Any]) -> Any:
            try:
                result = expr.evaluate(value, cells=row)
                if self.repeat:
                    for __ in range(self.repeat_count):
                        again = expr.evaluate(result, cells=row)
                        if again == result:
                            break
                        result = again
                return result
            except Exception:
                if self.on_error == "set-to-blank":
                    return None
                return value

        return table.transform_column(
            self.column, rewrite, row_filter=self.engine_config.matches
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Text transform on cells in column {self.column}",
            "engineConfig": self.engine_config.to_json(),
            "columnName": self.column,
            "expression": (
                self.expression
                if self.expression.startswith("grel:")
                else f"grel:{self.expression}"
            ),
            "onError": self.on_error,
            "repeat": self.repeat,
            "repeatCount": self.repeat_count,
        }


@dataclass(slots=True)
class ColumnRenameOperation(Operation):
    """``core/column-rename``."""

    old_name: str
    new_name: str
    description: str = ""
    op = "core/column-rename"

    def apply(self, table: RefineTable) -> int:
        table.rename_column(self.old_name, self.new_name)
        return len(table)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Rename column {self.old_name} to {self.new_name}",
            "oldColumnName": self.old_name,
            "newColumnName": self.new_name,
        }


@dataclass(slots=True)
class ColumnRemovalOperation(Operation):
    """``core/column-removal``."""

    column: str
    description: str = ""
    op = "core/column-removal"

    def apply(self, table: RefineTable) -> int:
        table.remove_column(self.column)
        return len(table)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Remove column {self.column}",
            "columnName": self.column,
        }


@dataclass(slots=True)
class RowRemovalOperation(Operation):
    """``core/row-removal``: drop the rows the engine config selects."""

    engine_config: EngineConfig = field(default_factory=EngineConfig)
    description: str = ""
    op = "core/row-removal"

    def apply(self, table: RefineTable) -> int:
        return table.remove_rows(self.engine_config.matches)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description or "Remove rows",
            "engineConfig": self.engine_config.to_json(),
        }


@dataclass(slots=True)
class ColumnAdditionOperation(Operation):
    """``core/column-addition``: a new column from a GREL expression over
    an existing one."""

    base_column: str
    new_column: str
    expression: str
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    on_error: str = "set-to-blank"
    description: str = ""
    op = "core/column-addition"

    def apply(self, table: RefineTable) -> int:
        table.require_column(self.base_column)
        expr = GrelExpression(self.expression)
        values = []
        for row in table.rows:
            if not self.engine_config.matches(row):
                values.append(None)
                continue
            try:
                values.append(
                    expr.evaluate(row[self.base_column], cells=row)
                )
            except Exception:
                values.append(None)
        table.add_column(self.new_column, values=values)
        return len(table)

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Create column {self.new_column} based on column "
            f"{self.base_column}",
            "engineConfig": self.engine_config.to_json(),
            "baseColumnName": self.base_column,
            "newColumnName": self.new_column,
            "expression": (
                self.expression
                if self.expression.startswith("grel:")
                else f"grel:{self.expression}"
            ),
            "onError": self.on_error,
        }


@dataclass(slots=True)
class FillDownOperation(Operation):
    """``core/fill-down``: copy the last non-blank value into blanks."""

    column: str
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    description: str = ""
    op = "core/fill-down"

    def apply(self, table: RefineTable) -> int:
        table.require_column(self.column)
        changed = 0
        last: Any = None
        for row in table.rows:
            if not self.engine_config.matches(row):
                continue
            value = row[self.column]
            if value is None or value == "":
                if last is not None:
                    row[self.column] = last
                    changed += 1
            else:
                last = value
        return changed

    def to_json(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "description": self.description
            or f"Fill down cells in column {self.column}",
            "engineConfig": self.engine_config.to_json(),
            "columnName": self.column,
        }


def operation_from_json(config: dict[str, Any]) -> Operation:
    """Parse one operation dict (including the poster's verbatim
    ``core/mass-edit`` example).

    Raises:
        OperationError: for unknown ops or missing fields.
    """
    op = config.get("op")
    if op == "core/mass-edit":
        column = config.get("columnName")
        if not column:
            raise OperationError(f"mass-edit without columnName: {config!r}")
        edits = [
            MassEditEdit(
                from_values=tuple(edit.get("from", ())),
                to_value=edit.get("to", ""),
                from_blank=bool(edit.get("fromBlank", False)),
                from_error=bool(edit.get("fromError", False)),
            )
            for edit in config.get("edits", [])
        ]
        return MassEditOperation(
            column=column,
            edits=edits,
            engine_config=EngineConfig.from_json(config.get("engineConfig")),
            expression=config.get("expression", "value"),
            description=config.get("description", ""),
        )
    if op == "core/text-transform":
        column = config.get("columnName")
        expression = config.get("expression")
        if not column or not expression:
            raise OperationError(
                f"text-transform needs columnName+expression: {config!r}"
            )
        return TextTransformOperation(
            column=column,
            expression=expression,
            engine_config=EngineConfig.from_json(config.get("engineConfig")),
            on_error=config.get("onError", "keep-original"),
            repeat=bool(config.get("repeat", False)),
            repeat_count=int(config.get("repeatCount", 10)),
            description=config.get("description", ""),
        )
    if op == "core/column-rename":
        return ColumnRenameOperation(
            old_name=config["oldColumnName"],
            new_name=config["newColumnName"],
            description=config.get("description", ""),
        )
    if op == "core/column-removal":
        return ColumnRemovalOperation(
            column=config["columnName"],
            description=config.get("description", ""),
        )
    if op == "core/column-addition":
        expression = config.get("expression")
        if not expression:
            raise OperationError(
                f"column-addition needs an expression: {config!r}"
            )
        return ColumnAdditionOperation(
            base_column=config["baseColumnName"],
            new_column=config["newColumnName"],
            expression=expression,
            engine_config=EngineConfig.from_json(config.get("engineConfig")),
            on_error=config.get("onError", "set-to-blank"),
            description=config.get("description", ""),
        )
    if op == "core/fill-down":
        return FillDownOperation(
            column=config["columnName"],
            engine_config=EngineConfig.from_json(config.get("engineConfig")),
            description=config.get("description", ""),
        )
    if op == "core/row-removal":
        return RowRemovalOperation(
            engine_config=EngineConfig.from_json(config.get("engineConfig")),
            description=config.get("description", ""),
        )
    raise OperationError(f"unknown operation {op!r}")

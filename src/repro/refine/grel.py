"""A small GREL-like expression language.

Google Refine's transformations carry expressions such as ``value``,
``value.trim().toLowercase()`` or ``value.replace('-', '_')``.  The
poster's exported rules embed them (``"expression": "value"``), so
replaying rule JSON requires an evaluator.  This implements the subset
that name-wrangling uses: the ``value``/``cells`` variables, string and
number literals, method chaining, a function library, and ``+``
concatenation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable


class GrelSyntaxError(ValueError):
    """Raised when an expression cannot be parsed."""


class GrelEvalError(ValueError):
    """Raised when a parsed expression fails to evaluate."""


# -- tokenizer ----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>[.,()+\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str


def _tokenize(expression: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(expression):
        match = _TOKEN_RE.match(expression, pos)
        if match is None:
            raise GrelSyntaxError(
                f"bad character {expression[pos]!r} at {pos} in "
                f"{expression!r}"
            )
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind=kind, text=match.group()))
    return tokens


# -- AST ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class _Literal:
    value: Any


@dataclass(frozen=True, slots=True)
class _Variable:
    name: str


@dataclass(frozen=True, slots=True)
class _Call:
    function: str
    args: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class _Method:
    target: Any
    name: str
    args: tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class _Concat:
    left: Any
    right: Any


@dataclass(frozen=True, slots=True)
class _Index:
    target: Any
    index: Any


class _Parser:
    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise GrelSyntaxError(f"unexpected end of {self._source!r}")
        self._pos += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._next()
        if token.text != text:
            raise GrelSyntaxError(
                f"expected {text!r}, got {token.text!r} in {self._source!r}"
            )

    def parse(self) -> Any:
        node = self._expression()
        if self._peek() is not None:
            raise GrelSyntaxError(
                f"trailing input from {self._peek().text!r} in "
                f"{self._source!r}"
            )
        return node

    def _expression(self) -> Any:
        node = self._postfix()
        while True:
            token = self._peek()
            if token is not None and token.text == "+":
                self._next()
                node = _Concat(left=node, right=self._postfix())
            else:
                return node

    def _postfix(self) -> Any:
        node = self._primary()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token.text == ".":
                self._next()
                name = self._next()
                if name.kind != "name":
                    raise GrelSyntaxError(
                        f"expected method name after '.', got "
                        f"{name.text!r}"
                    )
                self._expect("(")
                args = self._arguments()
                node = _Method(target=node, name=name.text, args=args)
            elif token.text == "[":
                self._next()
                index = self._expression()
                self._expect("]")
                node = _Index(target=node, index=index)
            else:
                return node

    def _arguments(self) -> tuple[Any, ...]:
        args: list[Any] = []
        token = self._peek()
        if token is not None and token.text == ")":
            self._next()
            return ()
        while True:
            args.append(self._expression())
            token = self._next()
            if token.text == ")":
                return tuple(args)
            if token.text != ",":
                raise GrelSyntaxError(
                    f"expected ',' or ')', got {token.text!r}"
                )

    def _primary(self) -> Any:
        token = self._next()
        if token.kind == "number":
            text = token.text
            return _Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            body = token.text[1:-1]
            return _Literal(
                body.replace("\\'", "'").replace('\\"', '"').replace(
                    "\\\\", "\\"
                )
            )
        if token.kind == "name":
            nxt = self._peek()
            if nxt is not None and nxt.text == "(":
                self._next()
                args = self._arguments()
                return _Call(function=token.text, args=args)
            return _Variable(name=token.text)
        if token.text == "(":
            node = self._expression()
            self._expect(")")
            return node
        raise GrelSyntaxError(f"unexpected token {token.text!r}")


# -- evaluation ------------------------------------------------------------------

def _need_str(value: Any, where: str) -> str:
    if not isinstance(value, str):
        raise GrelEvalError(f"{where} needs a string, got {type(value).__name__}")
    return value


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "trim": lambda v: _need_str(v, "trim").strip(),
    "strip": lambda v: _need_str(v, "strip").strip(),
    "toLowercase": lambda v: _need_str(v, "toLowercase").lower(),
    "toUppercase": lambda v: _need_str(v, "toUppercase").upper(),
    "length": lambda v: len(v),
    "toString": lambda v: str(v),
    "toNumber": lambda v: float(v),
    "replace": lambda v, a, b: _need_str(v, "replace").replace(a, b),
    "split": lambda v, sep: _need_str(v, "split").split(sep),
    "substring": lambda v, i, j=None: (
        _need_str(v, "substring")[int(i):] if j is None
        else _need_str(v, "substring")[int(i):int(j)]
    ),
    "startsWith": lambda v, p: _need_str(v, "startsWith").startswith(p),
    "endsWith": lambda v, p: _need_str(v, "endsWith").endswith(p),
    "contains": lambda v, p: p in _need_str(v, "contains"),
    "indexOf": lambda v, p: _need_str(v, "indexOf").find(p),
    "fingerprint": None,  # bound lazily to avoid an import cycle
    "join": lambda parts, sep: sep.join(str(p) for p in parts),
    "reverse": lambda v: v[::-1],
}


def _function(name: str) -> Callable[..., Any]:
    fn = _FUNCTIONS.get(name)
    if fn is None and name == "fingerprint":
        from ..text import fingerprint as fp

        _FUNCTIONS["fingerprint"] = fp
        return fp
    if fn is None:
        raise GrelEvalError(f"unknown function {name!r}")
    return fn


def _evaluate(node: Any, env: dict[str, Any]) -> Any:
    if isinstance(node, _Literal):
        return node.value
    if isinstance(node, _Variable):
        if node.name not in env:
            raise GrelEvalError(f"unknown variable {node.name!r}")
        return env[node.name]
    if isinstance(node, _Concat):
        left = _evaluate(node.left, env)
        right = _evaluate(node.right, env)
        if isinstance(left, str) or isinstance(right, str):
            return f"{left}{right}"
        return left + right
    if isinstance(node, _Call):
        args = [_evaluate(a, env) for a in node.args]
        return _function(node.function)(*args)
    if isinstance(node, _Method):
        target = _evaluate(node.target, env)
        args = [_evaluate(a, env) for a in node.args]
        return _function(node.name)(target, *args)
    if isinstance(node, _Index):
        target = _evaluate(node.target, env)
        index = _evaluate(node.index, env)
        try:
            return target[index if not isinstance(index, float) else int(index)]
        except (KeyError, IndexError, TypeError) as exc:
            raise GrelEvalError(f"bad index {index!r}: {exc}")
    raise GrelEvalError(f"unexpected node {node!r}")  # pragma: no cover


class GrelExpression:
    """A parsed, reusable GREL expression."""

    def __init__(self, source: str) -> None:
        """Parse ``source``.

        Raises:
            GrelSyntaxError: when the expression is malformed.
        """
        if source.startswith("grel:"):
            source = source[len("grel:"):]
        self.source = source
        self._ast = _Parser(_tokenize(source), source).parse()

    def evaluate(self, value: Any, cells: dict[str, Any] | None = None) -> Any:
        """Evaluate with ``value`` bound (and optionally ``cells``).

        Raises:
            GrelEvalError: on type errors or unknown names.
        """
        env: dict[str, Any] = {"value": value}
        if cells is not None:
            env["cells"] = cells
        return _evaluate(self._ast, env)

    def __repr__(self) -> str:
        return f"GrelExpression({self.source!r})"


def evaluate(expression: str, value: Any, **cells: Any) -> Any:
    """One-shot parse + evaluate (convenience wrapper)."""
    return GrelExpression(expression).evaluate(
        value, cells=cells or None
    )

"""The Refine project table: ordered columns, rows of cells.

Google Refine edits a rectangular grid.  Catalog entries are exported
into one of these ("Extract catalog entries to Google Refine"), rules
run against it, and the edited grid is diffed to produce the rename
mapping replayed on the working catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class ColumnError(KeyError):
    """Raised for operations naming a column the table lacks."""


@dataclass(slots=True)
class RefineTable:
    """A mutable grid with named, ordered columns."""

    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")

    # -- structure ------------------------------------------------------------

    def require_column(self, name: str) -> None:
        """Raise :class:`ColumnError` unless ``name`` is a column."""
        if name not in self.columns:
            raise ColumnError(name)

    def add_column(
        self, name: str, values: list[Any] | None = None, index: int | None = None
    ) -> None:
        """Append (or insert) a column; missing values become None.

        Raises:
            ValueError: on duplicate names or wrong value count.
        """
        if name in self.columns:
            raise ValueError(f"column {name!r} already exists")
        if values is not None and len(values) != len(self.rows):
            raise ValueError(
                f"{len(values)} values for {len(self.rows)} rows"
            )
        if index is None:
            self.columns.append(name)
        else:
            self.columns.insert(index, name)
        for i, row in enumerate(self.rows):
            row[name] = values[i] if values is not None else None

    def remove_column(self, name: str) -> None:
        """Drop a column and its cells.

        Raises:
            ColumnError: when absent.
        """
        self.require_column(name)
        self.columns.remove(name)
        for row in self.rows:
            row.pop(name, None)

    def rename_column(self, old: str, new: str) -> None:
        """Rename a column in place.

        Raises:
            ColumnError: when ``old`` is absent.
            ValueError: when ``new`` already exists.
        """
        self.require_column(old)
        if new in self.columns:
            raise ValueError(f"column {new!r} already exists")
        self.columns[self.columns.index(old)] = new
        for row in self.rows:
            row[new] = row.pop(old)

    # -- data -------------------------------------------------------------------

    def append_row(self, row: dict[str, Any]) -> None:
        """Add a row; extra keys rejected, missing keys filled with None.

        Raises:
            ValueError: when the row has keys outside the columns.
        """
        extra = set(row) - set(self.columns)
        if extra:
            raise ValueError(f"row has unknown columns {sorted(extra)}")
        self.rows.append({c: row.get(c) for c in self.columns})

    def column_values(self, name: str) -> list[Any]:
        """All cell values of a column, in row order.

        Raises:
            ColumnError: when absent.
        """
        self.require_column(name)
        return [row[name] for row in self.rows]

    def distinct_values(self, name: str) -> dict[Any, int]:
        """Value -> occurrence count for a column."""
        counts: dict[Any, int] = {}
        for value in self.column_values(name):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def transform_column(
        self,
        name: str,
        fn: Callable[[Any, dict[str, Any]], Any],
        row_filter: Callable[[dict[str, Any]], bool] | None = None,
    ) -> int:
        """Apply ``fn(value, row)`` to a column; returns changed count."""
        self.require_column(name)
        changed = 0
        for row in self.rows:
            if row_filter is not None and not row_filter(row):
                continue
            new_value = fn(row[name], row)
            if new_value != row[name]:
                row[name] = new_value
                changed += 1
        return changed

    def remove_rows(
        self, predicate: Callable[[dict[str, Any]], bool]
    ) -> int:
        """Drop rows where ``predicate`` holds; returns removed count."""
        before = len(self.rows)
        self.rows = [row for row in self.rows if not predicate(row)]
        return before - len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def copy(self) -> "RefineTable":
        """An independent deep-enough copy."""
        return RefineTable(
            columns=list(self.columns),
            rows=[dict(row) for row in self.rows],
        )

"""The catalog <-> Refine bridge: the poster's discovery round-trip.

Figure "Discovering Transformations with Google Refine":

1. *Extract catalog entries to Google Refine* — variable entries become
   rows of a :class:`~repro.refine.table.RefineTable` with a ``field``
   column (the poster's mass-edit example edits column ``field``).
2. The curator clusters the ``field`` column and confirms merges; here a
   :class:`DiscoverySession` automates that with pluggable cluster
   methods and a target chooser (default: most common value; the
   semantics-aware chooser maps clusters onto canonical vocabulary).
3. *Export JSON rules* — the confirmed merges become ``core/mass-edit``
   operations in a :class:`~repro.refine.history.RuleSet`.
4. *Run rules against metadata* — the rule set's rename mapping is
   replayed on the working catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..catalog.store import CatalogStore
from .clustering import (
    ValueCluster,
    clusters_to_mass_edits,
    key_collision_clusters,
    nearest_neighbour_clusters,
)
from .history import RuleSet
from .ops import MassEditOperation
from .table import RefineTable

FIELD_COLUMN = "field"  # the poster's column name for variable names


def catalog_to_table(catalog: CatalogStore) -> RefineTable:
    """Export variable entries: one row per (dataset, variable)."""
    table = RefineTable(
        columns=[
            "dataset_id",
            FIELD_COLUMN,
            "unit",
            "platform",
            "directory",
            "excluded",
        ]
    )
    for dataset_id, entry in catalog.iter_variables():
        feature_platform = dataset_id  # resolved below via catalog.get
        table.append_row(
            {
                "dataset_id": dataset_id,
                FIELD_COLUMN: entry.name,
                "unit": entry.unit,
                "platform": "",
                "directory": dataset_id.rsplit("/", 1)[0]
                if "/" in dataset_id
                else "",
                "excluded": entry.excluded,
            }
        )
    # Fill platforms in one pass over features (iter_variables does not
    # expose the feature).
    platforms = {f.dataset_id: f.platform for f in catalog}
    for row in table.rows:
        row["platform"] = platforms.get(row["dataset_id"], "")
    return table


def apply_rules_to_catalog(
    rules: RuleSet, catalog: CatalogStore, resolution: str = "refine"
) -> int:
    """Replay a rule set's combined rename mapping on the catalog.

    Returns the number of variable entries renamed.
    """
    mapping = rules.rename_mapping()
    if not mapping:
        return 0
    return catalog.rename_variables(mapping, resolution=resolution)


TargetChooser = Callable[[ValueCluster], str | None]


def most_common_chooser(cluster: ValueCluster) -> str | None:
    """Refine's default: merge to the most frequent value."""
    return cluster.suggested_value


def make_canonical_chooser(
    canonical_names: set[str],
    fallback_to_most_common: bool = True,
) -> TargetChooser:
    """A chooser that prefers a canonical vocabulary name in the cluster.

    Emulates the curator recognizing the right name among the variants;
    when no member is canonical, optionally falls back to Refine's
    default (else skips the cluster for manual review).  A cluster
    containing *two or more* canonical names is always skipped — short
    canonical names can land within edit distance of each other (``ph``
    vs ``par``), and no curator would merge two real variables.
    """

    def chooser(cluster: ValueCluster) -> str | None:
        canonical_members = [
            value for value in cluster.values if value in canonical_names
        ]
        if len(canonical_members) > 1:
            return None
        if canonical_members:
            return canonical_members[0]
        return cluster.suggested_value if fallback_to_most_common else None

    return chooser


@dataclass(slots=True)
class DiscoverySession:
    """Programmatic stand-in for the curator's Refine session."""

    method: str = "fingerprint"  # any KEYERS key, or 'nn-levenshtein',
    # 'nn-jaro-winkler'
    radius: float = 2.0
    min_cluster_size: int = 2
    chooser: TargetChooser = field(default=most_common_chooser)
    seed_values: dict[str, int] | None = None  # extra values (e.g. the
    # canonical vocabulary) to cluster alongside the harvested names

    def cluster(self, table: RefineTable) -> list[ValueCluster]:
        """Cluster the ``field`` column of an exported table."""
        counts = {
            str(value): count
            for value, count in table.distinct_values(FIELD_COLUMN).items()
            if value is not None
        }
        for value, count in (self.seed_values or {}).items():
            counts[value] = counts.get(value, 0) + count
        if self.method.startswith("nn-"):
            return nearest_neighbour_clusters(
                counts,
                distance=self.method[len("nn-"):],
                radius=self.radius,
                min_size=self.min_cluster_size,
            )
        return key_collision_clusters(
            counts, keyer=self.method, min_size=self.min_cluster_size
        )

    def discover(self, table: RefineTable) -> RuleSet:
        """Cluster and convert confirmed merges into a rule set."""
        clusters = self.cluster(table)
        edits = clusters_to_mass_edits(clusters, target_for=self.chooser)
        rules = RuleSet()
        if edits:
            rules.append(
                MassEditOperation(
                    column=FIELD_COLUMN,
                    edits=edits,
                    description=(
                        f"Mass edit cells in column {FIELD_COLUMN} "
                        f"({self.method} clustering)"
                    ),
                )
            )
        return rules

    def discover_from_catalog(self, catalog: CatalogStore) -> RuleSet:
        """The full export -> cluster -> rules pipeline."""
        return self.discover(catalog_to_table(catalog))

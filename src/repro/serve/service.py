"""The thread-safe front door for concurrent ranked search.

:class:`SearchService` is what a portal process puts between its request
handlers and the catalog.  The concurrency model:

* **Requests never touch the live catalog.**  The service holds a
  :class:`~repro.core.search.SearchEngine` built over an immutable
  :class:`~repro.catalog.store.CatalogSnapshot`; every request reads the
  engine reference once, so each request is served by exactly one
  catalog version even while :meth:`refresh` swaps a newer snapshot in
  underneath.  Writers (a concurrent re-wrangle) are never blocked by
  readers — they touch the live store, not the snapshot.
* **Admission is bounded.**  At most ``max_concurrency`` requests
  execute at once; up to ``queue_depth`` more wait their turn.  Beyond
  that, :meth:`search` fails fast with the typed
  :class:`~repro.core.errors.OverloadedError` — backpressure a client
  can retry on, instead of an unbounded queue that melts latency for
  everyone (the "heavy traffic" north star is explicit about this).
* **One cache, one registry.**  The version-keyed
  :class:`~repro.core.cache.QueryCache` and the
  :class:`~repro.obs.Telemetry` registry are shared across snapshot
  refreshes: cache entries die naturally when the version moves, and
  per-request spans/counters from every thread merge into one place.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..catalog.store import CatalogStore
from ..core.cache import QueryCache
from ..core.errors import OverloadedError
from ..core.query import Query
from ..core.scoring import ScoringConfig
from ..core.search import SearchEngine, SearchResults
from ..hierarchy import ConceptHierarchy
from ..obs import Telemetry, current_request, use_telemetry
from .procpool import ProcessPoolScorer


class ServiceClosedError(RuntimeError):
    """Raised when a request arrives after :meth:`SearchService.close`."""


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Concurrency knobs for :class:`SearchService`.

    ``max_concurrency`` requests run at once, ``queue_depth`` more may
    wait; anything beyond is rejected with ``OverloadedError``.
    ``shard_workers``/``shard_threshold`` pass through to the engine's
    sharded scoring (see :class:`~repro.core.search.SearchEngine`).
    """

    max_concurrency: int = 4
    queue_depth: int = 16
    shard_workers: int | None = None
    shard_threshold: int = 1024
    cache_size: int = 512
    #: Scoring worker *processes* (``None``/unset: in-process scoring).
    #: When >= 2 the service owns a
    #: :class:`~repro.serve.procpool.ProcessPoolScorer` and ships every
    #: snapshot version to it — see DESIGN note 16.
    score_workers: int | None = None
    #: Candidate-row floor below which a query skips the process pool
    #: (IPC would dominate) and scores on threads/serial instead.
    score_min_rows: int = 256
    #: How many of the hottest recent queries a refresh pre-executes
    #: against the new engine *before* the atomic swap (0 disables) —
    #: the first post-swap requests for those queries hit a warm cache
    #: instead of paying a cold scan under their own latency budget.
    warm_queries: int = 4
    #: Largest publish delta (touched datasets) for which a refresh
    #: attempts query-cache migration; beyond it, scoring every cached
    #: query against every touched state costs more than the re-misses.
    migrate_max_delta: int = 64

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be positive")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be non-negative")
        if self.shard_threshold < 1:
            raise ValueError("shard_threshold must be positive")
        if self.cache_size < 1:
            raise ValueError("cache_size must be positive")
        if self.score_workers is not None and self.score_workers < 2:
            raise ValueError("score_workers must be >= 2 (or None)")
        if self.score_min_rows < 1:
            raise ValueError("score_min_rows must be positive")
        if self.warm_queries < 0:
            raise ValueError("warm_queries must be non-negative")
        if self.migrate_max_delta < 0:
            raise ValueError("migrate_max_delta must be non-negative")

    @property
    def admission_capacity(self) -> int:
        """Executing plus queued requests admitted at any instant."""
        return self.max_concurrency + self.queue_depth


@dataclass(frozen=True, slots=True)
class ServeResponse:
    """One served request: the page plus how it was served."""

    #: The ranked page (with ``total_matches``/``truncated`` metadata).
    results: SearchResults
    #: The catalog version of the snapshot that served this request —
    #: exactly one version per request, by construction.
    snapshot_version: int
    #: Seconds spent waiting for an execution slot.
    queued_seconds: float
    #: Seconds from admission to completion (queue + execution).
    total_seconds: float


class SearchService:
    """Bounded-concurrency ranked search over catalog snapshots.

    ``catalog`` is the *live* store the wrangler publishes into; the
    service snapshots it at construction and again on every
    :meth:`refresh`.  :meth:`search` may be called from any number of
    threads concurrently.
    """

    def __init__(
        self,
        catalog: CatalogStore,
        hierarchy: ConceptHierarchy | None = None,
        scoring: ScoringConfig | None = None,
        config: ServeConfig | None = None,
        cache: QueryCache | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.source = catalog
        self.hierarchy = hierarchy
        self.scoring = scoring or ScoringConfig()
        self.config = config or ServeConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.cache = cache if cache is not None else QueryCache(
            maxsize=self.config.cache_size
        )
        # One shard executor for the service's lifetime: engines are
        # rebuilt per refresh, threads are not.
        self._shard_executor: ThreadPoolExecutor | None = None
        if self.config.shard_workers and self.config.shard_workers > 1:
            self._shard_executor = ThreadPoolExecutor(
                max_workers=self.config.shard_workers,
                thread_name_prefix="repro-shard",
            )
        # Likewise one process pool for the service's lifetime; every
        # snapshot version is shipped to it in _build_engine, *before*
        # the engine swap, so a request never races an unshipped version.
        self._procpool: ProcessPoolScorer | None = None
        if self.config.score_workers and self.config.score_workers > 1:
            self._procpool = ProcessPoolScorer(
                workers=self.config.score_workers,
                min_rows=self.config.score_min_rows,
            )
        # Admission control: ``_admission`` bounds executing + queued
        # (non-blocking — its failure IS the overload signal);
        # ``_slots`` serializes execution (blocking — waiting on it is
        # the queue).
        self._admission = threading.BoundedSemaphore(
            self.config.admission_capacity
        )
        self._slots = threading.BoundedSemaphore(self.config.max_concurrency)
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._in_flight = 0
        self._admitted = 0
        self._closed = False
        # The access pattern, for refresh warming: a bounded ring of
        # recent (query, limit) pairs.  Appends from request threads
        # are lock-free (deque appends are atomic); refresh counts the
        # hottest entries and pre-executes them on the new engine.
        self._recent_queries: deque = deque(maxlen=256)
        # The swap target: requests read this reference exactly once.
        self._engine = self._build_engine()

    # -- snapshot lifecycle --------------------------------------------------

    def _build_engine(
        self,
        previous: SearchEngine | None = None,
        delta=None,
    ) -> SearchEngine:
        """Build the next engine — cold, or O(changed) from a delta.

        With ``previous`` and a spanning ``delta``
        (:class:`~repro.wrangling.state.PublishDelta`), the whole
        handoff is proportional to the publish, not the catalog:

        * **snapshot** — ``snapshot_cow`` shares every unchanged
          feature object with the previous snapshot (the store
          re-verifies the version stamps under its lock; any failure
          falls back to a full copy),
        * **columnar** — the copy-on-write snapshot refreezes
          incrementally from the previous view (splicing unchanged
          rows; see ``ColumnarSnapshot.freeze_from``),
        * **indexes** — the previous engine's indexes are copied
          structurally and the delta is folded in with
          ``CatalogIndexes.apply`` (copy-then-apply, because apply
          mutates in place and in-flight requests still scan the old
          engine's indexes),
        * **process pool** — only the delta crosses the pickle
          boundary (full-payload fallback inside ``install``),
        * **cache** — still-valid query-cache entries are re-keyed to
          the new version (``SearchEngine.migrate_cache_from``), and
        * **warming** — the hottest recent queries are pre-executed on
          the new engine, so the swap exposes no cold-cache cliff.
        """
        with use_telemetry(self.telemetry):
            with self.telemetry.span(
                "refresh.build",
                delta=delta.changed if delta is not None else -1,
            ):
                snapshot = None
                delta_ok = (
                    previous is not None
                    and delta is not None
                    and delta.spans(
                        previous.catalog.version, self.source.version
                    )
                )
                if delta_ok:
                    snapshot = self.source.snapshot_cow(
                        previous.catalog,
                        delta.upserted,
                        delta.removed,
                        expect_version=delta.published_version,
                    )
                used_delta = snapshot is not None
                if snapshot is None:
                    snapshot = self.source.snapshot()
                indexes = None
                upserted_features = []
                if used_delta:
                    upserted_features = [
                        snapshot.get(dataset_id)
                        for dataset_id in delta.upserted
                        if snapshot.contains(dataset_id)
                    ]
                    if previous.indexes is not None:
                        indexes = previous.indexes.copy().apply(
                            updated=upserted_features,
                            removed=delta.removed,
                            catalog_version=snapshot.version,
                            rebuild_from=snapshot,
                        )
                engine = SearchEngine(
                    snapshot,
                    hierarchy=self.hierarchy,
                    indexes=indexes,
                    config=self.scoring,
                    cache=self.cache,
                    shard_workers=self.config.shard_workers,
                    shard_threshold=self.config.shard_threshold,
                    executor=self._shard_executor,
                    procpool=self._procpool,
                )
                if indexes is None:
                    engine.build_indexes()
                # Warm the columnar freeze off the request path: the
                # first admitted query scans flat columns instead of
                # paying the one-time freeze under its own latency
                # budget.
                view = engine.columnar_view()
                if self._procpool is not None and view is not None:
                    # Ship the new version to the scoring workers before
                    # the engine swap makes it visible to requests; the
                    # pool retains the previous version too, so requests
                    # already in flight keep pool-scoring their own
                    # snapshot (staleness <= 1 by construction).
                    pool_delta = None
                    if used_delta:
                        pool_delta = (
                            previous.catalog.version,
                            upserted_features,
                            list(delta.removed),
                        )
                    self._procpool.install(
                        view,
                        hierarchy=self.hierarchy,
                        config=self.scoring,
                        delta=pool_delta,
                    )
                carried = 0
                if (
                    used_delta
                    and delta.changed <= self.config.migrate_max_delta
                ):
                    carried = engine.migrate_cache_from(
                        previous, self._touched_states(previous, snapshot, delta)
                    )
                warmed = self._warm(engine) if previous is not None else 0
                if previous is not None:
                    telemetry = self.telemetry
                    if used_delta:
                        telemetry.count("refresh.delta_applied")
                        telemetry.count("refresh.delta_size", delta.changed)
                    else:
                        telemetry.count("refresh.full_rebuilds")
                    if carried:
                        telemetry.count(
                            "refresh.cache_entries_carried", carried
                        )
                    if warmed:
                        telemetry.count("refresh.warmed_queries", warmed)
        self.telemetry.gauge("serve.snapshot_version", snapshot.version)
        return engine

    @staticmethod
    def _touched_states(previous, snapshot, delta):
        """(old_state, new_state) per dataset the delta touched."""
        touched = []
        old_catalog = previous.catalog
        for dataset_id in delta.upserted:
            old = (
                old_catalog.get(dataset_id)
                if old_catalog.contains(dataset_id) else None
            )
            new = (
                snapshot.get(dataset_id)
                if snapshot.contains(dataset_id) else None
            )
            touched.append((old, new))
        for dataset_id in delta.removed:
            old = (
                old_catalog.get(dataset_id)
                if old_catalog.contains(dataset_id) else None
            )
            touched.append((old, None))
        return touched

    def _warm(self, engine: SearchEngine) -> int:
        """Pre-execute the hottest recent queries on the new engine.

        Runs *before* the atomic swap, so the first post-swap request
        for a hot query hits the version-keyed cache instead of paying
        the cold scan — the refresh latency cliff the churn benchmark
        measures.  Hotness is the frequency count over the bounded
        recent-query ring.
        """
        k = self.config.warm_queries
        if k <= 0:
            return 0
        recent = list(self._recent_queries)
        if not recent:
            return 0
        warmed = 0
        for (query, limit), __ in Counter(recent).most_common(k):
            try:
                engine.search(query, limit=limit)
            except Exception:
                break  # warming must never block a refresh
            warmed += 1
        return warmed

    @property
    def snapshot_version(self) -> int:
        """The catalog version currently being served."""
        return self._engine.catalog.version

    def refresh(
        self,
        hierarchy: ConceptHierarchy | None = None,
        delta=None,
    ) -> bool:
        """Swap in a fresh snapshot of the source catalog.

        Call after a publish (the wrangler's loop does).  A no-op when
        the source version is unchanged — the warm engine, its indexes
        and every cache entry stay live.  Returns True when a new
        snapshot was installed.  In-flight requests keep the snapshot
        they started with; only requests admitted after the swap see
        the new version.

        ``delta`` — the publish's
        :class:`~repro.wrangling.state.PublishDelta` — turns the
        rebuild into the O(changed) warm handoff described on
        :meth:`_build_engine`.  It is used only when its version stamps
        prove it spans exactly the previous snapshot's version to the
        live version (anything else — unstamped, full-copy, a racing
        foreign write — falls back to the full path, same results).

        A replacement ``hierarchy`` is compared by *content*
        (:meth:`~repro.hierarchy.tree.ConceptHierarchy.fingerprint`),
        not identity: an equal-but-distinct object neither forces a
        rebuild nor invalidates warm cache entries (the engine keeps
        the old object, whose ``id`` the cache keys carry).
        """
        previous = self._engine
        if hierarchy is not None and hierarchy is not self.hierarchy:
            if (
                self.hierarchy is not None
                and hierarchy.fingerprint() == self.hierarchy.fingerprint()
            ):
                pass  # content-equal: keep the old object, caches live
            else:
                self.hierarchy = hierarchy
        hierarchy_changed = self.hierarchy is not previous.hierarchy
        if (
            self.source.version == previous.catalog.version
            and not hierarchy_changed
        ):
            return False
        engine = self._build_engine(
            previous=previous,
            delta=None if hierarchy_changed else delta,
        )
        self._engine = engine  # atomic reference swap
        self.telemetry.count("serve.snapshot_refreshes")
        return True

    # -- the request path ----------------------------------------------------

    def search(self, query: Query, limit: int = 10) -> ServeResponse:
        """Serve one ranked query; safe from any thread.

        Raises:
            OverloadedError: when executing + queued requests already
                fill the admission capacity (nothing was executed).
            ServiceClosedError: after :meth:`close` has begun.
            ValueError: if ``limit`` is not positive.
        """
        if self._closed:
            raise ServiceClosedError("search service is closed")
        if not self._admission.acquire(blocking=False):
            self.telemetry.count("serve.rejected")
            raise OverloadedError(
                in_flight=self.config.admission_capacity,
                capacity=self.config.admission_capacity,
            )
        admitted_at = time.monotonic()
        try:
            self._slots.acquire()
            try:
                queued = time.monotonic() - admitted_at
                with self._state_lock:
                    if self._closed:
                        raise ServiceClosedError(
                            "search service is closed"
                        )
                    self._in_flight += 1
                    self._admitted += 1
                try:
                    response = self._execute(query, limit, queued)
                finally:
                    with self._idle:
                        self._in_flight -= 1
                        last = self._closed and self._in_flight == 0
                        if self._in_flight == 0:
                            self._idle.notify_all()
                    if last:
                        # A close() whose drain timed out left the
                        # executors alive for us; the last request out
                        # releases them.
                        self._release_executors()
                return response
            finally:
                self._slots.release()
        finally:
            self._admission.release()

    def _execute(
        self, query: Query, limit: int, queued: float
    ) -> ServeResponse:
        engine = self._engine  # one read: this request's snapshot
        started = time.monotonic()
        context = current_request()
        if context is not None:
            context.annotate(
                snapshot_version=engine.catalog.version,
                queued_seconds=round(queued, 6),
            )
        with use_telemetry(self.telemetry):
            with self.telemetry.span(
                "serve.request",
                limit=limit,
                snapshot_version=engine.catalog.version,
            ):
                results = engine.search(query, limit=limit)
        # Feed the refresh warmer's hotness ring (deque appends are
        # atomic; maxlen bounds it).
        self._recent_queries.append((query, limit))
        duration = time.monotonic() - started
        self.telemetry.count("serve.requests")
        self.telemetry.observe("serve.request_seconds", duration)
        self.telemetry.observe("serve.queued_seconds", queued)
        return ServeResponse(
            results=results,
            snapshot_version=engine.catalog.version,
            queued_seconds=queued,
            total_seconds=queued + duration,
        )

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no request is executing; True if idle was reached."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._in_flight == 0, timeout=timeout
            )

    def close(self, timeout: float | None = None) -> bool:
        """Stop admitting, drain in-flight requests, release resources.

        Graceful: requests already executing run to completion; new
        calls raise :class:`ServiceClosedError`.  Returns True when the
        drain finished inside ``timeout`` (None = wait forever).

        Executors are released only once the service is actually idle:
        if the drain times out, the still-executing requests keep their
        shard threads and scoring processes (shutting them down under a
        live request would turn a graceful 503 into a RuntimeError
        mid-query), and the last request out releases them instead.
        """
        with self._state_lock:
            self._closed = True
        drained = self.drain(timeout=timeout)
        if drained:
            self._release_executors()
        return drained

    def _release_executors(self) -> None:
        """Shut down the shard threads and the scoring process pool.

        Idempotent and race-safe: ownership of each executor is claimed
        under the state lock, so a timed-out ``close()`` and the last
        in-flight request cannot both shut the same executor down.
        """
        with self._state_lock:
            executor, self._shard_executor = self._shard_executor, None
            procpool, self._procpool = self._procpool, None
        if executor is not None:
            executor.shutdown(wait=True)
        if procpool is not None:
            procpool.close()

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Operational state for health surfaces and the CLI.

        ``staleness`` — how many catalog versions the served snapshot
        lags the live store — is computed here on demand; the request
        path never reads the live store.
        """
        with self._state_lock:
            in_flight = self._in_flight
            admitted = self._admitted
        snapshot_version = self._engine.catalog.version
        procpool = self._procpool
        return {
            "snapshot_version": snapshot_version,
            "source_version": self.source.version,
            "staleness": self.source.version - snapshot_version,
            "in_flight": in_flight,
            "requests_admitted": admitted,
            "max_concurrency": self.config.max_concurrency,
            "queue_depth": self.config.queue_depth,
            "shard_workers": self.config.shard_workers,
            "score_workers": self.config.score_workers,
            "procpool": procpool.stats() if procpool is not None else None,
            "closed": self._closed,
            "cache": self.cache.stats(),
        }

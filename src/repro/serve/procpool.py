"""Process-pool columnar scoring over shipped frozen snapshots.

The GIL caps what scoring-shard *threads* can do for a CPU-bound scan;
this module is the rung above them: a :class:`ProcessPoolScorer` fans
post-prefilter scoring out across worker *processes* that each hold the
same version-stamped :class:`~repro.core.columnar.ColumnarSnapshot`.

Snapshot shipping
    On every install (service construction and each atomic
    ``refresh()``) the parent pickles one payload — the columnar view,
    the concept hierarchy and the scoring config — to a spool file named
    by a monotonically increasing generation, then atomically publishes
    it with ``os.replace``.  Tasks carry only the spool *path* plus the
    row range; each worker memoizes the unpickled payload per path, so
    a snapshot crosses the process boundary once per worker, not once
    per query.  The current and the previous version are retained,
    which is exactly the staleness ≤ 1 window the serving layer
    guarantees: an in-flight request that read the old engine reference
    right before a refresh still pool-scores against *its* snapshot.

Exactness of the merge
    Workers run the very same :func:`~repro.core.search.score_rows_into`
    loop (same :class:`~repro.core.columnar.ColumnarScorer`, same
    bounded :class:`~repro.core.search._TopK` heap) the serial and
    thread-sharded paths run, over contiguous row ranges, and return
    their shard's top-k.  Pushing every shard survivor through the
    caller's global heap reproduces the serial page precisely — every
    global top-k result is by definition in its own shard's top-k
    (DESIGN notes 14/15/16).

Degradation ladder
    :meth:`score` answers ``None`` whenever it cannot serve — the
    version was never shipped, the pool failed to start, a worker died
    mid-query (``BrokenProcessPool``).  The engine then falls through to
    sharded threads and then serial, all bit-identical, and the episode
    is counted (``procpool.degraded`` / ``procpool.stale_miss``).  This
    mirrors the chunked-pool degradation contract of
    :mod:`repro.wrangling.scan`, including the traced-unit telemetry
    merged back via :meth:`~repro.obs.Telemetry.merge_worker`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..core.columnar import ColumnarScorer, ColumnarSnapshot
from ..core.query import Query
from ..core.scoring import QueryScorer, ScoringConfig
from ..core.search import SearchResult, _TopK, score_rows_into
from ..hierarchy import ConceptHierarchy
from ..obs import (
    RequestContext,
    Telemetry,
    current_request,
    get_telemetry,
    use_request,
    use_telemetry,
)

# -- worker side -------------------------------------------------------------

#: Per-process memo of unpickled spool payloads.  Keyed by path — paths
#: embed a generation counter, so a path's content never changes and the
#: memo cannot alias.  Bounded to the same current + previous window the
#: parent retains.
_PAYLOADS: dict[str, dict] = {}
_PAYLOAD_KEEP = 2

#: Longest delta chain a shipped payload may sit on.  Deltas reference
#: their base payload by spool path; past this depth the parent ships a
#: full payload again, bounding both a cold worker's recursive
#: reconstruction and the spool files the retention sweep must keep.
_MAX_DELTA_CHAIN = 8


def _load_payload(path: str) -> dict:
    """Load (and memoize) one shipped snapshot payload in this process.

    Payloads come in two shapes: *full* (carrying ``"view"``) and
    *delta* (carrying ``"delta"`` — the base payload's spool path plus
    upserted features and removed ids).  A delta payload reconstructs
    its view with :meth:`ColumnarSnapshot.freeze_from` over the
    recursively loaded base view — the sorted-merge row layout is the
    parent's, so the row indices tasks carry stay valid — and is then
    memoized exactly like a full one.  A cold worker whose base file
    was already retired raises; the parent treats that like any worker
    failure and degrades to thread scoring (still exact).
    """
    payload = _PAYLOADS.get(path)
    if payload is None:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        delta = payload.pop("delta", None)
        if delta is not None:
            base = _load_payload(delta["base"])
            payload["view"] = ColumnarSnapshot.freeze_from(
                base["view"],
                delta["upserted"],
                delta["removed"],
                version=delta["version"],
            )
        while len(_PAYLOADS) >= _PAYLOAD_KEEP:
            _PAYLOADS.pop(next(iter(_PAYLOADS)))
        _PAYLOADS[path] = payload
    return payload


def _warm_worker(path: str) -> int:
    """Pre-load a payload off the request path; returns the row count."""
    return len(_load_payload(path)["view"])


def _score_chunk(
    path: str,
    query: Query,
    limit: int,
    rows: Sequence[int],
    traced: bool,
    request_id: str | None = None,
) -> tuple[int, list[SearchResult], dict | None]:
    """Score one row shard in a worker process.

    Returns ``(known_matches, shard_top_k_results, telemetry_export)``.
    The shard's results carry ``feature=None`` exactly like the thread
    path — only page survivors are materialized, in the parent.
    ``request_id`` carries the serving request's identity across the
    pickle boundary: the worker re-activates it so every span in the
    export is stamped, and the parent-side merge re-parents the tree
    under the request's open spans — one request, one span tree.
    """
    payload = _load_payload(path)
    view: ColumnarSnapshot = payload["view"]
    scorer = QueryScorer(
        query, hierarchy=payload["hierarchy"], config=payload["config"]
    )
    cscorer = ColumnarScorer(scorer, view)
    top = _TopK(limit)
    if not traced:
        matches = score_rows_into(cscorer, query, rows, top)
        export = None
    else:
        # The traced unit (see wrangling/scan.py): a private registry
        # per chunk whose export merges into the parent's active
        # telemetry, so pooled counter totals equal serial ones.
        telemetry = Telemetry()
        context = (
            RequestContext(request_id) if request_id is not None else None
        )
        with use_telemetry(telemetry), use_request(context):
            with telemetry.span("procpool.chunk", rows=len(rows)):
                matches = score_rows_into(cscorer, query, rows, top)
            telemetry.count("procpool.rows_scored", len(rows))
        export = telemetry.export()
    return matches, [item.result for item in top._heap], export


# -- parent side -------------------------------------------------------------


class ProcessPoolScorer:
    """Scores columnar row ranges on a pool of worker processes.

    Thread-safe: the serving layer calls :meth:`score` from many request
    threads at once while :meth:`install` runs on a refresh.  Owns its
    :class:`~concurrent.futures.ProcessPoolExecutor` and its spool
    directory; release both with :meth:`close`.

    ``min_rows`` is the pool's own fan-out threshold — below it the IPC
    round trip costs more than the scan, so :meth:`wants` says no and
    the engine stays on threads/serial.
    """

    def __init__(
        self,
        workers: int,
        min_rows: int = 256,
        spool_dir: str | None = None,
    ) -> None:
        if workers < 2:
            raise ValueError("workers must be >= 2 (1 means no pool)")
        if min_rows < 1:
            raise ValueError("min_rows must be positive")
        self.workers = workers
        self.min_rows = min_rows
        self._own_spool = spool_dir is None
        self._spool = spool_dir or tempfile.mkdtemp(prefix="repro-procpool-")
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        #: version -> (spool path, delta-chain depth; 0 = full payload).
        self._entries: dict[int, tuple[str, int]] = {}
        #: Every spool file still on disk -> the base path its payload
        #: references (None for full payloads).  Retention chases these
        #: links so a retained delta's whole base chain stays readable.
        self._files: dict[str, str | None] = {}
        self._generation = 0
        self._failures = 0
        self._delta_installs = 0
        self._closed = False

    # -- snapshot shipping ---------------------------------------------------

    def install(
        self,
        view: ColumnarSnapshot,
        hierarchy: ConceptHierarchy | None = None,
        config: ScoringConfig | None = None,
        delta: tuple[int, Sequence, Sequence[str]] | None = None,
    ) -> None:
        """Ship ``view`` (plus scoring context) to the spool.

        Atomic from the workers' perspective: the payload is written to
        a temp name and published with ``os.replace``; tasks only ever
        name fully written files.  Retains the new version and the one
        before it (plus, transitively, any base files retained delta
        payloads still reference); anything else is deleted — in-flight
        requests can lag at most one refresh behind (the service swaps
        its engine reference only after this returns).

        ``delta`` — ``(base_version, upserted_features, removed_ids)``
        — ships only the publish delta instead of the full view when
        the base version's payload is still spooled and the resulting
        chain stays under ``_MAX_DELTA_CHAIN``: workers rebuild the new
        view from their memoized base via ``freeze_from`` (same
        sorted-row layout, so the parent's row indices stay valid).
        Falls back to a full payload otherwise.
        """
        payload: dict = {
            "hierarchy": hierarchy,
            "config": config or ScoringConfig(),
        }
        base_path: str | None = None
        depth = 0
        if delta is not None:
            base_version, upserted, removed = delta
            with self._lock:
                entry = self._entries.get(base_version)
                if entry is not None and entry[1] + 1 <= _MAX_DELTA_CHAIN:
                    base_path, depth = entry[0], entry[1] + 1
        if base_path is not None:
            payload["delta"] = {
                "base": base_path,
                "upserted": list(upserted),
                "removed": list(removed),
                "version": view.version,
            }
        else:
            payload["view"] = view
            depth = 0
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            if self._closed:
                raise RuntimeError("process-pool scorer is closed")
            self._generation += 1
            path = os.path.join(
                self._spool,
                f"snapshot-g{self._generation:06d}-v{view.version}.pkl",
            )
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        stale: list[str] = []
        with self._lock:
            self._entries[view.version] = (path, depth)
            self._files[path] = base_path
            if base_path is not None:
                self._delta_installs += 1
            for version in sorted(self._entries)[:-_PAYLOAD_KEEP]:
                del self._entries[version]
            # Keep every retained payload *and* its transitive base
            # chain — a delta file is useless without the files it
            # reconstructs from.  Everything unreachable goes.
            keep: set[str] = set()
            for kept_path, __ in self._entries.values():
                chase: str | None = kept_path
                while chase is not None and chase not in keep:
                    keep.add(chase)
                    chase = self._files.get(chase)
            stale = [old for old in self._files if old not in keep]
            for old in stale:
                del self._files[old]
            # A fresh snapshot is a fresh chance: past pool failures no
            # longer block this install from trying worker processes.
            self._failures = 0
        for old in stale:
            try:
                os.unlink(old)
            except OSError:
                pass
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("procpool.installs")
            if base_path is not None:
                telemetry.count("procpool.delta_installs")
            telemetry.observe("procpool.ship_bytes", float(len(data)))
        # Spin the workers (and pre-load the payload in each) off the
        # request path, so the first pooled query pays no cold start.
        pool = self._ensure_pool()
        if pool is not None:
            for _ in range(self.workers):
                try:
                    future = pool.submit(_warm_worker, path)
                except Exception:
                    break
                future.add_done_callback(lambda f: f.exception())

    # -- the scoring path ----------------------------------------------------

    def wants(self, version: int, n_rows: int) -> bool:
        """Whether the pool should serve this (version, row-count)."""
        if n_rows < self.min_rows:
            return False
        with self._lock:
            return (
                not self._closed
                and self._failures < 2
                and version in self._entries
            )

    def score(
        self,
        query: Query,
        limit: int,
        version: int,
        rows: Sequence[int],
    ) -> tuple[int, list[SearchResult]] | None:
        """Score ``rows`` of snapshot ``version`` across the pool.

        Returns ``(known_matches, merged_shard_survivors)`` — push the
        survivors through the caller's global top-k for the exact page —
        or ``None`` when the pool cannot serve (caller degrades to the
        thread/serial rungs).
        """
        telemetry = get_telemetry()
        with self._lock:
            path = None
            if not self._closed and self._failures < 2:
                entry = self._entries.get(version)
                path = entry[0] if entry is not None else None
        if path is None:
            if telemetry.enabled:
                telemetry.count("procpool.stale_miss")
            return None
        pool = self._ensure_pool()
        if pool is None:
            return None
        traced = telemetry.enabled
        context = current_request()
        request_id = context.request_id if context is not None else None
        shards_n = min(self.workers, max(1, len(rows)))
        chunk = (len(rows) + shards_n - 1) // shards_n
        shards = [rows[i : i + chunk] for i in range(0, len(rows), chunk)]
        try:
            futures = [
                pool.submit(
                    _score_chunk, path, query, limit, shard, traced,
                    request_id,
                )
                for shard in shards
            ]
            outputs = [future.result() for future in futures]
        except Exception:
            # BrokenProcessPool and friends: give the pool up, degrade.
            self._mark_broken()
            return None
        matches = 0
        hits: list[SearchResult] = []
        for shard_matches, shard_hits, export in outputs:
            matches += shard_matches
            hits.extend(shard_hits)
            if traced and export is not None:
                telemetry.merge_worker(export)
        if traced:
            telemetry.count("procpool.queries")
        return matches, hits

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        with self._lock:
            if self._closed or self._failures >= 2:
                return None
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
                except Exception:
                    self._failures += 1
                    return None
            return self._pool

    def _mark_broken(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._failures += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("procpool.degraded")

    def close(self) -> None:
        """Shut the workers down and delete the spool. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            paths = list(self._files)
            self._entries.clear()
            self._files.clear()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for path in paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        if self._own_spool:
            try:
                os.rmdir(self._spool)
            except OSError:
                pass

    def __enter__(self) -> "ProcessPoolScorer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "min_rows": self.min_rows,
                "versions_shipped": sorted(self._entries),
                "delta_installs": self._delta_installs,
                "spool_files": len(self._files),
                "pool_alive": self._pool is not None,
                "failures": self._failures,
                "closed": self._closed,
            }

"""Closed-loop load generation against a :class:`SearchService`.

Models the workload the motivating user studies describe: N interactive
clients, each issuing a query, reading the page (think time), then
issuing the next — a *closed loop*, so offered load adapts to service
latency instead of piling up an open-loop backlog.  Query selection is
Zipf-distributed over the workload's query pool (a few refinement
favourites dominate, a long tail of one-offs follows), which is what
exercises the version-keyed cache realistically.

Everything is deterministic under a fixed seed: per-client RNGs are
seeded from ``seed`` and the client index, so reports are reproducible
modulo scheduling noise in the latency numbers themselves.
"""

from __future__ import annotations

import http.client
import json
import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence
from urllib.parse import urlencode, urlsplit

from ..core.errors import OverloadedError
from ..core.query import Query
from .service import SearchService, ServiceClosedError


def percentile(values: Sequence[float], p: float) -> float:
    """The nearest-rank ``p``-th percentile (0 < p <= 100) of ``values``."""
    if not values:
        return 0.0
    if not 0.0 < p <= 100.0:
        raise ValueError("p must lie in (0, 100]")
    ordered = sorted(values)
    rank = math.ceil(p / 100.0 * len(ordered))
    return ordered[rank - 1]


def _status_latency_summary(
    per_status: dict[str, list[float]],
) -> dict[str, dict]:
    """Collapse per-status latency lists into count/mean/p95 summaries."""
    return {
        status: {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p95": percentile(values, 95.0),
        }
        for status, values in sorted(per_status.items())
        if values
    }


def zipf_weights(n: int, s: float) -> list[float]:
    """Zipf weights ``1/rank^s`` for ranks 1..n (unnormalized)."""
    if n < 1:
        raise ValueError("n must be positive")
    if s < 0.0:
        raise ValueError("s must be non-negative")
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


@dataclass(slots=True)
class LoadReport:
    """What one closed-loop run measured."""

    clients: int
    requests_per_client: int
    think_seconds: float
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    qps: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    queued_p95: float = 0.0
    #: Distinct snapshot versions observed across all responses.
    snapshot_versions: list[int] = field(default_factory=list)
    #: Worst (live version - served version) observed, when a live
    #: version probe was provided; 0 otherwise.
    max_staleness: int = 0
    #: How the workload reached the service: "inproc" (direct calls)
    #: or "http" (sockets via :func:`run_load_http`).
    transport: str = "inproc"
    #: HTTP status -> count, socket mode only (empty for in-process).
    status_counts: dict = field(default_factory=dict)
    #: Responses whose snapshot version was *older* than one the same
    #: client had already seen — must be 0 (snapshots swap forward only).
    version_regressions: int = 0
    #: Per-status latency summaries (count/mean/p95), errors included —
    #: a 500 that took four seconds is tail behavior the SLO windows
    #: will see, so the load report must see it too.  Retried 429s stay
    #: out (they are shed, not served).
    latency_by_status: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "think_seconds": self.think_seconds,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "queued_p95": self.queued_p95,
            "snapshot_versions": self.snapshot_versions,
            "max_staleness": self.max_staleness,
            "transport": self.transport,
            "status_counts": self.status_counts,
            "version_regressions": self.version_regressions,
            "latency_by_status": self.latency_by_status,
        }


def run_load(
    service: SearchService,
    queries: Sequence[Query],
    clients: int = 4,
    requests_per_client: int = 25,
    think_seconds: float = 0.0,
    zipf_s: float = 1.1,
    limit: int = 10,
    seed: int = 0,
    live_version: Callable[[], int] | None = None,
) -> LoadReport:
    """Drive ``clients`` closed-loop threads through the service.

    Each client issues ``requests_per_client`` Zipf-selected queries
    with ``think_seconds`` of think time between completions.  Rejected
    requests (:class:`OverloadedError`) are counted and retried after a
    short jittered backoff — they do not count as completions.  Pass
    ``live_version`` (e.g. ``lambda: store.version``) to track snapshot
    staleness under a concurrent wrangler.
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    if requests_per_client < 1:
        raise ValueError("requests_per_client must be positive")
    if think_seconds < 0.0:
        raise ValueError("think_seconds must be non-negative")
    if not queries:
        raise ValueError("queries must be non-empty")

    weights = zipf_weights(len(queries), zipf_s)
    lock = threading.Lock()
    latencies: list[float] = []
    per_status: dict[str, list[float]] = {}
    queued: list[float] = []
    versions: set[int] = set()
    counts = {"completed": 0, "rejected": 0, "errors": 0, "staleness": 0}
    start_barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        rng = random.Random(seed * 100_003 + index)
        start_barrier.wait()
        served = 0
        while served < requests_per_client:
            query = rng.choices(queries, weights=weights, k=1)[0]
            attempt_started = time.monotonic()
            try:
                response = service.search(query, limit=limit)
            except OverloadedError:
                with lock:
                    counts["rejected"] += 1
                # Jittered backoff before the retry, so rejected
                # clients do not re-stampede in lockstep.
                time.sleep(rng.uniform(0.001, 0.005))
                continue
            except ServiceClosedError:
                elapsed = time.monotonic() - attempt_started
                with lock:
                    counts["errors"] += 1
                    latencies.append(elapsed)
                    per_status.setdefault("503", []).append(elapsed)
                return
            except Exception:
                # Error responses took real time to fail; dropping them
                # from the percentile math would let the load report
                # and the SLO windows disagree on tail behavior.
                elapsed = time.monotonic() - attempt_started
                with lock:
                    counts["errors"] += 1
                    latencies.append(elapsed)
                    per_status.setdefault("error", []).append(elapsed)
                served += 1
                continue
            staleness = 0
            if live_version is not None:
                staleness = max(
                    0, live_version() - response.snapshot_version
                )
            with lock:
                counts["completed"] += 1
                counts["staleness"] = max(counts["staleness"], staleness)
                latencies.append(response.total_seconds)
                per_status.setdefault("200", []).append(
                    response.total_seconds
                )
                queued.append(response.queued_seconds)
                versions.add(response.snapshot_version)
            served += 1
            if think_seconds > 0.0:
                time.sleep(think_seconds)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - started

    report = LoadReport(
        clients=clients,
        requests_per_client=requests_per_client,
        think_seconds=think_seconds,
        completed=counts["completed"],
        rejected=counts["rejected"],
        errors=counts["errors"],
        duration_seconds=duration,
        snapshot_versions=sorted(versions),
        max_staleness=counts["staleness"],
        latency_by_status=_status_latency_summary(per_status),
    )
    if duration > 0.0:
        report.qps = report.completed / duration
    if latencies:
        report.latency_p50 = percentile(latencies, 50.0)
        report.latency_p95 = percentile(latencies, 95.0)
        report.latency_p99 = percentile(latencies, 99.0)
        report.latency_mean = sum(latencies) / len(latencies)
    if queued:
        report.queued_p95 = percentile(queued, 95.0)
    return report


def run_load_http(
    url: str,
    query_texts: Sequence[str],
    clients: int = 4,
    requests_per_client: int = 25,
    think_seconds: float = 0.0,
    zipf_s: float = 1.1,
    limit: int = 10,
    seed: int = 0,
    live_version: Callable[[], int] | None = None,
    timeout: float = 30.0,
) -> LoadReport:
    """Socket-mode twin of :func:`run_load`: drive a real HTTP server.

    Same closed-loop Zipf workload, but each client owns one kept-alive
    :class:`http.client.HTTPConnection` to ``url`` (a
    :class:`~repro.serve.http.SearchHTTPServer` address, e.g.
    ``"http://127.0.0.1:8080"``) and issues ``GET /search`` with the
    query *text* — so the path measured includes the qparser, JSON
    encoding and the socket round trip, i.e. what a remote portal
    client actually experiences.

    Status mapping mirrors the in-process driver: 429 counts as
    rejected and is retried after a jittered backoff, 503 ends the
    client (service closing), any other non-200 counts as an error.
    Staleness is measured against ``live_version`` sampled *before*
    each request — served version may never lag that sample by more
    than 1 when the publisher refreshes after every batch.  Each client
    also checks that versions never move backwards across its own
    responses (``version_regressions``).
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    if requests_per_client < 1:
        raise ValueError("requests_per_client must be positive")
    if think_seconds < 0.0:
        raise ValueError("think_seconds must be non-negative")
    if not query_texts:
        raise ValueError("query_texts must be non-empty")
    parts = urlsplit(url if "//" in url else f"http://{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80

    weights = zipf_weights(len(query_texts), zipf_s)
    lock = threading.Lock()
    latencies: list[float] = []
    per_status: dict[str, list[float]] = {}
    queued: list[float] = []
    versions: set[int] = set()
    status_counts: dict[int, int] = {}
    counts = {
        "completed": 0,
        "rejected": 0,
        "errors": 0,
        "staleness": 0,
        "regressions": 0,
    }
    start_barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        rng = random.Random(seed * 100_003 + index)
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        last_version: int | None = None
        start_barrier.wait()
        served = 0
        try:
            while served < requests_per_client:
                text = rng.choices(query_texts, weights=weights, k=1)[0]
                target = "/search?" + urlencode(
                    {"q": text, "limit": limit}
                )
                live_before = (
                    live_version() if live_version is not None else None
                )
                started = time.monotonic()
                try:
                    conn.request("GET", target)
                    response = conn.getresponse()
                    body = response.read()
                except (OSError, http.client.HTTPException):
                    # Connection-level failure: count it, reconnect.
                    elapsed = time.monotonic() - started
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    with lock:
                        counts["errors"] += 1
                        latencies.append(elapsed)
                        per_status.setdefault("conn-error", []).append(
                            elapsed
                        )
                    served += 1
                    continue
                elapsed = time.monotonic() - started
                status = response.status
                with lock:
                    status_counts[status] = (
                        status_counts.get(status, 0) + 1
                    )
                if status == 429:
                    with lock:
                        counts["rejected"] += 1
                    time.sleep(rng.uniform(0.001, 0.005))
                    continue
                if status == 503:
                    with lock:
                        counts["errors"] += 1
                        latencies.append(elapsed)
                        per_status.setdefault(str(status), []).append(
                            elapsed
                        )
                    return
                if status != 200:
                    # Non-200s are latency too (see the in-process
                    # driver): tail behavior must match what the SLO
                    # windows record.
                    with lock:
                        counts["errors"] += 1
                        latencies.append(elapsed)
                        per_status.setdefault(str(status), []).append(
                            elapsed
                        )
                    served += 1
                    continue
                payload = json.loads(body)
                version = payload["version"]
                staleness = (
                    max(0, live_before - version)
                    if live_before is not None
                    else 0
                )
                regression = (
                    last_version is not None and version < last_version
                )
                last_version = (
                    version
                    if last_version is None
                    else max(last_version, version)
                )
                with lock:
                    counts["completed"] += 1
                    counts["staleness"] = max(
                        counts["staleness"], staleness
                    )
                    if regression:
                        counts["regressions"] += 1
                    latencies.append(elapsed)
                    per_status.setdefault("200", []).append(elapsed)
                    queued.append(payload.get("queued_seconds", 0.0))
                    versions.add(version)
                served += 1
                if think_seconds > 0.0:
                    time.sleep(think_seconds)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.monotonic()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - started

    report = LoadReport(
        clients=clients,
        requests_per_client=requests_per_client,
        think_seconds=think_seconds,
        completed=counts["completed"],
        rejected=counts["rejected"],
        errors=counts["errors"],
        duration_seconds=duration,
        snapshot_versions=sorted(versions),
        max_staleness=counts["staleness"],
        transport="http",
        status_counts={
            str(status): count
            for status, count in sorted(status_counts.items())
        },
        version_regressions=counts["regressions"],
        latency_by_status=_status_latency_summary(per_status),
    )
    if duration > 0.0:
        report.qps = report.completed / duration
    if latencies:
        report.latency_p50 = percentile(latencies, 50.0)
        report.latency_p95 = percentile(latencies, 95.0)
        report.latency_p99 = percentile(latencies, 99.0)
        report.latency_mean = sum(latencies) / len(latencies)
    if queued:
        report.queued_p95 = percentile(queued, 95.0)
    return report

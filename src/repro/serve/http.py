"""Stdlib HTTP front end for :class:`~repro.serve.service.SearchService`.

The network face of the portal: a :class:`~http.server.ThreadingHTTPServer`
(one thread per connection, keep-alive on) translating the service's
typed contracts onto the wire::

    GET /search?q=<qparser text>&limit=N   ranked page as JSON
    GET /healthz                           service stats (503 once closed)
    GET /telemetry                         the shared telemetry snapshot

Error mapping — the bounded-admission contract over HTTP:

* :class:`~repro.core.errors.OverloadedError` -> **429** with
  ``Retry-After`` (the client backs off and retries, exactly like the
  in-process load generator does),
* :class:`~repro.serve.service.ServiceClosedError` -> **503** with
  ``Retry-After`` (drain in progress or service closed),
* :class:`~repro.core.qparser.QueryParseError`, a missing/empty ``q``,
  a malformed ``limit`` -> **400** with a JSON error body,
* unknown route -> **404**.

Nothing ever escapes as a traceback page: any unexpected handler
exception becomes a 500 JSON envelope (and is counted on the service
telemetry as ``http.internal_errors``).

Shutdown is graceful and ordered: :meth:`SearchHTTPServer.close` first
stops the accept loop, then closes the service — which stops admission
and drains, so requests already executing complete against the snapshot
they started with while late arrivals on kept-alive connections get
clean 503s — and finally releases the listening socket.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..core.errors import OverloadedError
from ..core.qparser import QueryParseError, parse_query
from .service import SearchService, ServiceClosedError

#: Seconds a 429/503 tells the client to wait before retrying.
RETRY_AFTER_SECONDS = 1


def search_payload(response) -> dict:
    """The JSON body of a 200 /search response (stable wire contract)."""
    results = response.results
    return {
        "version": response.snapshot_version,
        "total_matches": results.total_matches,
        "truncated": results.truncated,
        "queued_seconds": response.queued_seconds,
        "total_seconds": response.total_seconds,
        "results": [
            {
                "dataset_id": result.dataset_id,
                "score": result.score,
                "breakdown": {
                    "total": result.breakdown.total,
                    "location": result.breakdown.location,
                    "time": result.breakdown.time,
                    "variables": [
                        [name, sim]
                        for name, sim in result.breakdown.variables
                    ],
                },
            }
            for result in results
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server`` carries the service reference."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Socket timeout: an idle kept-alive connection releases its
    #: handler thread instead of pinning it forever.
    timeout = 30

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        pass  # telemetry counters replace stderr chatter

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        # Count before the body hits the wire: a client that has read
        # this response must already see its status in /telemetry.
        telemetry = self.server.service.telemetry
        if telemetry.enabled:
            telemetry.count(f"http.status.{status}")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._responded = True

    def do_GET(self) -> None:
        self._responded = False
        telemetry = self.server.service.telemetry
        if telemetry.enabled:
            telemetry.count("http.requests")
        try:
            self._route()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception:
            if telemetry.enabled:
                telemetry.count("http.internal_errors")
            if self._responded:
                # Headers already on the wire: the only safe move is to
                # drop the connection, never a half-written traceback.
                self.close_connection = True
            else:
                try:
                    self._send_json(
                        500,
                        {"error": "internal server error",
                         "code": "internal"},
                    )
                except OSError:
                    self.close_connection = True

    # -- routes --------------------------------------------------------------

    def _route(self) -> None:
        url = urlsplit(self.path)
        if url.path == "/search":
            self._search(url.query)
        elif url.path == "/healthz":
            self._healthz()
        elif url.path == "/telemetry":
            self._telemetry()
        else:
            self._send_json(
                404,
                {"error": f"no such route: {url.path}", "code": "not-found"},
            )

    def _search(self, query_string: str) -> None:
        service: SearchService = self.server.service
        params = parse_qs(query_string)
        text = (params.get("q") or [""])[0]
        raw_limit = (params.get("limit") or ["10"])[0]
        try:
            limit = int(raw_limit)
        except ValueError:
            self._send_json(
                400,
                {"error": f"limit must be an integer, got {raw_limit!r}",
                 "code": "bad-request"},
            )
            return
        if limit < 1:
            self._send_json(
                400,
                {"error": "limit must be >= 1", "code": "bad-request"},
            )
            return
        try:
            query = parse_query(text)
        except QueryParseError as exc:
            self._send_json(
                400, {"error": str(exc), "code": "bad-query"}
            )
            return
        try:
            response = service.search(query, limit=limit)
        except OverloadedError as exc:
            self._send_json(
                429,
                {"error": str(exc), "code": "overloaded"},
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        except ServiceClosedError:
            self._send_json(
                503,
                {"error": "service is draining or closed",
                 "code": "closed"},
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        self._send_json(200, search_payload(response))

    def _healthz(self) -> None:
        service: SearchService = self.server.service
        stats = service.stats()
        status = 503 if stats["closed"] else 200
        self._send_json(
            status,
            {"status": "closed" if stats["closed"] else "ok", **stats},
        )

    def _telemetry(self) -> None:
        service: SearchService = self.server.service
        self._send_json(200, service.telemetry.snapshot())


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Graceful shutdown is the *service* drain; handler threads on idle
    # kept-alive sockets must not block server_close.
    block_on_close = False

    def __init__(self, address, handler, service: SearchService) -> None:
        super().__init__(address, handler)
        self.service = service


class SearchHTTPServer:
    """Owns the listening socket, the accept thread and shutdown order.

    Usage::

        server = SearchHTTPServer(service, port=0).start()
        print(server.url)          # ephemeral port resolved
        ...
        server.close(timeout=5.0)  # stop accepting, drain, release

    ``close`` also closes the wrapped service (it is the one shutdown
    path); pass ``close_service=False`` to keep the service alive.
    """

    def __init__(
        self,
        service: SearchService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._httpd = _Server((host, port), _Handler, service)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SearchHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(
        self, timeout: float | None = None, close_service: bool = True
    ) -> bool:
        """Graceful shutdown; True when the service drained in time."""
        if self._thread is not None:
            self._httpd.shutdown()  # stop accepting new connections
            self._thread.join(timeout=5.0)
            self._thread = None
        drained = True
        if close_service:
            # Stops admission and drains: in-flight requests complete
            # against their snapshot; kept-alive stragglers get 503s.
            drained = self.service.close(timeout=timeout)
        self._httpd.server_close()
        return drained

    def __enter__(self) -> "SearchHTTPServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

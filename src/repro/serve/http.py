"""Stdlib HTTP front end for :class:`~repro.serve.service.SearchService`.

The network face of the portal: a :class:`~http.server.ThreadingHTTPServer`
(one thread per connection, keep-alive on) translating the service's
typed contracts onto the wire::

    GET /search?q=<qparser text>&limit=N   ranked page as JSON
    GET /healthz                           service stats + SLO verdict
    GET /telemetry                         the shared telemetry snapshot
    GET /metrics                           Prometheus text exposition
    GET /debug/slow                        the flight recorder's contents

Error mapping — the bounded-admission contract over HTTP:

* :class:`~repro.core.errors.OverloadedError` -> **429** with
  ``Retry-After`` (the client backs off and retries, exactly like the
  in-process load generator does),
* :class:`~repro.serve.service.ServiceClosedError` -> **503** with
  ``Retry-After`` (drain in progress or service closed),
* :class:`~repro.core.qparser.QueryParseError`, a missing/empty ``q``,
  a malformed ``limit`` -> **400** with a JSON error body,
* unknown route -> **404**.

Nothing ever escapes as a traceback page: any unexpected handler
exception becomes a 500 JSON envelope (and is counted on the service
telemetry as ``http.internal_errors``).

Observability (DESIGN note 17): every request gets a deterministic
:class:`~repro.obs.RequestContext` (``req-NNNNNN`` from a per-server
counter) and runs inside ``use_telemetry(service.telemetry)`` under an
``http.request`` span, so the HTTP span, the service span, the engine's
prefilter span, shard-thread spans and process-pool worker spans all
land in one tree stamped with one request id.  The **telemetry handle
is snapshotted once per request** (``self._telemetry``) and every
counter/histogram touch goes through it at the single response exit
points (:meth:`_send_json` / :meth:`_send_text`) — so a concurrent
``use_telemetry`` swap can never split one request's ``http.requests``
and ``http.status.*`` increments across registries, and histogram
``_count`` equals ``http.requests`` at quiescence because both are
bumped in the same critical step, after the response body (including a
scrape's own body) has been rendered.

Per-request outcomes additionally feed the
:class:`~repro.obs.SLOTracker` (``/search`` only — scrapes are not the
service's SLO), the :class:`~repro.obs.FlightRecorder` (slowest
searches plus every erroring request) and the optional JSONL access
log.

Shutdown is graceful and ordered: :meth:`SearchHTTPServer.close` first
stops the accept loop, then closes the service — which stops admission
and drains, so requests already executing complete against the snapshot
they started with while late arrivals on kept-alive connections get
clean 503s — and finally releases the listening socket.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..core.errors import OverloadedError
from ..core.qparser import QueryParseError, parse_query
from ..obs import (
    AccessLogWriter,
    FlightRecord,
    FlightRecorder,
    RequestContext,
    SLOTracker,
    render_prometheus,
    spans_for_request,
    use_request,
    use_telemetry,
)
from .service import SearchService, ServiceClosedError

#: Seconds a 429/503 tells the client to wait before retrying.
RETRY_AFTER_SECONDS = 1


def search_payload(response) -> dict:
    """The JSON body of a 200 /search response (stable wire contract)."""
    results = response.results
    return {
        "version": response.snapshot_version,
        "total_matches": results.total_matches,
        "truncated": results.truncated,
        "queued_seconds": response.queued_seconds,
        "total_seconds": response.total_seconds,
        "results": [
            {
                "dataset_id": result.dataset_id,
                "score": result.score,
                "breakdown": {
                    "total": result.breakdown.total,
                    "location": result.breakdown.location,
                    "time": result.breakdown.time,
                    "variables": [
                        [name, sim]
                        for name, sim in result.breakdown.variables
                    ],
                },
            }
            for result in results
        ],
    }


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server`` carries the service reference."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Socket timeout: an idle kept-alive connection releases its
    #: handler thread instead of pinning it forever.
    timeout = 30

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        pass  # telemetry counters replace stderr chatter

    def _count_response(self, status: int) -> None:
        """The one place request counters move.

        Uses the telemetry handle snapshotted at request start, so a
        concurrent registry swap cannot split this request's
        ``http.requests`` / ``http.status.*`` / latency observation
        across registries — and a scrape's own response was rendered
        *before* this runs, so at quiescence every scrape body lags
        itself by exactly one request on every metric equally:
        histogram ``_count`` always equals ``http.requests``.
        """
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count("http.requests")
            telemetry.count(f"http.status.{status}")
            telemetry.observe(
                "http.request_seconds", time.monotonic() - self._started
            )
        self._status = status

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict | None = None,
    ) -> None:
        self._count_response(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._responded = True

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        self._send_body(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers,
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def do_GET(self) -> None:
        self._responded = False
        self._status: int | None = None
        self._started = time.monotonic()
        self._query_text = ""
        # One telemetry handle and one request context per request.
        telemetry = self.server.service.telemetry
        self._telemetry = telemetry
        self._context = RequestContext(
            f"req-{next(self.server.request_ids):06d}"
        )
        route = urlsplit(self.path).path
        try:
            with use_telemetry(telemetry), use_request(self._context):
                with telemetry.span("http.request", route=route):
                    self._route()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception:
            if telemetry.enabled:
                telemetry.count("http.internal_errors")
            if self._responded:
                # Headers already on the wire: the only safe move is to
                # drop the connection, never a half-written traceback.
                self.close_connection = True
            else:
                try:
                    self._send_json(
                        500,
                        {"error": "internal server error",
                         "code": "internal"},
                    )
                except OSError:
                    self.close_connection = True
        finally:
            self._observe(route, time.monotonic() - self._started)

    def _observe(self, route: str, latency: float) -> None:
        """Post-response bookkeeping: SLO window, flight ring, access log."""
        status = self._status
        if status is None:
            return  # connection dropped before any response
        error = status >= 500
        rejected = status in (429, 503)
        server = self.server
        if server.slo is not None and route == "/search":
            # Scrapes and health checks are not the service's SLO.
            server.slo.record(latency, error=error, rejected=rejected)
        flight = server.flight
        if flight is not None and (error or route == "/search"):
            # Two-phase capture: the O(1) interest check first, the
            # O(spans) extraction only for keepers.
            if flight.interested(latency, error):
                context = self._context
                flight.record(
                    FlightRecord(
                        request_id=context.request_id,
                        query=self._query_text,
                        status=status,
                        latency_seconds=latency,
                        error=error,
                        attrs=dict(context.attrs),
                        spans=spans_for_request(
                            self._telemetry.spans(), context.request_id
                        ),
                    )
                )
        if server.access_log is not None:
            server.access_log.log(
                self._context.request_id,
                route,
                status,
                latency,
                **self._context.attrs,
            )

    # -- routes --------------------------------------------------------------

    def _route(self) -> None:
        url = urlsplit(self.path)
        if url.path == "/search":
            self._search(url.query)
        elif url.path == "/healthz":
            self._healthz()
        elif url.path == "/telemetry":
            self._telemetry_route()
        elif url.path == "/metrics":
            self._metrics()
        elif url.path == "/debug/slow":
            self._debug_slow()
        else:
            self._send_json(
                404,
                {"error": f"no such route: {url.path}", "code": "not-found"},
            )

    def _search(self, query_string: str) -> None:
        service: SearchService = self.server.service
        params = parse_qs(query_string)
        text = (params.get("q") or [""])[0]
        self._query_text = text
        raw_limit = (params.get("limit") or ["10"])[0]
        try:
            limit = int(raw_limit)
        except ValueError:
            self._send_json(
                400,
                {"error": f"limit must be an integer, got {raw_limit!r}",
                 "code": "bad-request"},
            )
            return
        if limit < 1:
            self._send_json(
                400,
                {"error": "limit must be >= 1", "code": "bad-request"},
            )
            return
        try:
            query = parse_query(text)
        except QueryParseError as exc:
            self._send_json(
                400, {"error": str(exc), "code": "bad-query"}
            )
            return
        try:
            response = service.search(query, limit=limit)
        except OverloadedError as exc:
            self._send_json(
                429,
                {"error": str(exc), "code": "overloaded"},
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        except ServiceClosedError:
            self._send_json(
                503,
                {"error": "service is draining or closed",
                 "code": "closed"},
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        self._send_json(200, search_payload(response))

    def _healthz(self) -> None:
        service: SearchService = self.server.service
        stats = service.stats()
        slo = self.server.slo
        slo_report = slo.report() if slo is not None else None
        if stats["closed"]:
            status_word, status = "closed", 503
        elif slo_report is not None and slo_report["status"] != "ok":
            # Degraded is still serving: 200 with the verdict in the
            # body — load balancers eject on 503, operators page on the
            # SLO field.
            status_word, status = "degraded", 200
        else:
            status_word, status = "ok", 200
        self._send_json(
            status,
            {"status": status_word, "slo": slo_report, **stats},
        )

    def _telemetry_route(self) -> None:
        service: SearchService = self.server.service
        self._send_json(200, service.telemetry.snapshot())

    def _metrics(self) -> None:
        snapshot = self.server.service.telemetry.snapshot()
        self._send_text(
            200,
            render_prometheus(snapshot),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _debug_slow(self) -> None:
        flight = self.server.flight
        if flight is None:
            self._send_json(
                404,
                {"error": "flight recorder disabled", "code": "not-found"},
            )
            return
        self._send_json(200, flight.snapshot())


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Graceful shutdown is the *service* drain; handler threads on idle
    # kept-alive sockets must not block server_close.
    block_on_close = False

    def __init__(
        self,
        address,
        handler,
        service: SearchService,
        slo: SLOTracker | None,
        flight: FlightRecorder | None,
        access_log: AccessLogWriter | None,
    ) -> None:
        super().__init__(address, handler)
        self.service = service
        self.slo = slo
        self.flight = flight
        self.access_log = access_log
        #: Deterministic request ids: ``req-000001`` onward, in
        #: admission order (itertools.count is atomic under the GIL).
        self.request_ids = itertools.count(1)


class SearchHTTPServer:
    """Owns the listening socket, the accept thread and shutdown order.

    Usage::

        server = SearchHTTPServer(service, port=0).start()
        print(server.url)          # ephemeral port resolved
        ...
        server.close(timeout=5.0)  # stop accepting, drain, release

    ``close`` also closes the wrapped service (it is the one shutdown
    path); pass ``close_service=False`` to keep the service alive.

    The SLO tracker and flight recorder default on (they are a few KB
    of ring buffer); pass ``slo=None`` is not possible — pass your own
    configured instances instead.  ``access_log`` is opt-in and stays
    owned by the caller (the CLI opens and closes it).
    """

    def __init__(
        self,
        service: SearchService,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: SLOTracker | None = None,
        flight: FlightRecorder | None = None,
        access_log: AccessLogWriter | None = None,
    ) -> None:
        self.service = service
        self.slo = slo if slo is not None else SLOTracker()
        self.flight = flight if flight is not None else FlightRecorder()
        self.access_log = access_log
        self._httpd = _Server(
            (host, port),
            _Handler,
            service,
            self.slo,
            self.flight,
            access_log,
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SearchHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(
        self, timeout: float | None = None, close_service: bool = True
    ) -> bool:
        """Graceful shutdown; True when the service drained in time."""
        if self._thread is not None:
            self._httpd.shutdown()  # stop accepting new connections
            self._thread.join(timeout=5.0)
            self._thread = None
        drained = True
        if close_service:
            # Stops admission and drains: in-flight requests complete
            # against their snapshot; kept-alive stragglers get 503s.
            drained = self.service.close(timeout=timeout)
        self._httpd.server_close()
        return drained

    def __enter__(self) -> "SearchHTTPServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

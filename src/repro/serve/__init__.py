"""Concurrent query serving over immutable catalog snapshots."""

from .http import SearchHTTPServer, search_payload
from .loadgen import LoadReport, percentile, run_load, run_load_http
from .procpool import ProcessPoolScorer
from .service import (
    SearchService,
    ServeConfig,
    ServeResponse,
    ServiceClosedError,
)

__all__ = [
    "LoadReport",
    "ProcessPoolScorer",
    "SearchHTTPServer",
    "SearchService",
    "ServeConfig",
    "ServeResponse",
    "ServiceClosedError",
    "percentile",
    "run_load",
    "run_load_http",
    "search_payload",
]

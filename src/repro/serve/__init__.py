"""Concurrent query serving over immutable catalog snapshots."""

from .loadgen import LoadReport, percentile, run_load
from .service import (
    SearchService,
    ServeConfig,
    ServeResponse,
    ServiceClosedError,
)

__all__ = [
    "LoadReport",
    "SearchService",
    "ServeConfig",
    "ServeResponse",
    "ServiceClosedError",
    "percentile",
    "run_load",
]

"""Facet counts for the search UI sidebar.

The "Data Near Here" interface lets scientists narrow by variable
(through the hierarchical menu), platform and year; this module computes
those counts from the published catalog, including roll-ups along the
concept hierarchy ("collapse or expose as needed" with counts attached).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.store import CatalogStore
from ..geo import from_epoch
from ..hierarchy import ConceptHierarchy


@dataclass(frozen=True, slots=True)
class FacetCounts:
    """Dataset counts per facet value."""

    variables: dict[str, int]  # searchable variable name -> datasets
    platforms: dict[str, int]
    years: dict[int, int]  # every year a dataset's interval touches
    units: dict[str, int]

    def top_variables(self, n: int = 10) -> list[tuple[str, int]]:
        """Most common variables, count-descending then name."""
        return sorted(
            self.variables.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]


def compute_facets(catalog: CatalogStore) -> FacetCounts:
    """One pass over the catalog: all sidebar counts."""
    variables: dict[str, int] = {}
    platforms: dict[str, int] = {}
    years: dict[int, int] = {}
    units: dict[str, int] = {}
    for feature in catalog:
        platforms[feature.platform] = platforms.get(feature.platform, 0) + 1
        start_year = from_epoch(feature.interval.start).year
        end_year = from_epoch(feature.interval.end).year
        for year in range(start_year, end_year + 1):
            years[year] = years.get(year, 0) + 1
        seen_names: set[str] = set()
        seen_units: set[str] = set()
        for entry in feature.searchable_variables():
            if entry.name not in seen_names:
                variables[entry.name] = variables.get(entry.name, 0) + 1
                seen_names.add(entry.name)
            if entry.unit not in seen_units:
                units[entry.unit] = units.get(entry.unit, 0) + 1
                seen_units.add(entry.unit)
    return FacetCounts(
        variables=variables, platforms=platforms, years=years, units=units
    )


def hierarchy_counts(
    catalog: CatalogStore, hierarchy: ConceptHierarchy
) -> dict[str, int]:
    """Dataset count per hierarchy node, rolled up to concepts.

    A dataset counts once per node even when it carries several
    descendant variables (a CTD with fluores375 *and* fluores400 is one
    dataset under 'fluorescence').
    """
    counts: dict[str, int] = {}
    for feature in catalog:
        names = {
            entry.name for entry in feature.searchable_variables()
        }
        hit_nodes: set[str] = set()
        for name in names:
            if name not in hierarchy:
                continue
            hit_nodes.add(name)
            hit_nodes.update(hierarchy.ancestors(name))
        for node in hit_nodes:
            counts[node] = counts.get(node, 0) + 1
    return counts


def render_menu_with_counts(
    catalog: CatalogStore, hierarchy: ConceptHierarchy
) -> str:
    """The hierarchical variable menu, annotated with dataset counts.

    Nodes with zero datasets are omitted (collapse); concept nodes keep
    the '*' marker.
    """
    counts = hierarchy_counts(catalog, hierarchy)
    lines = []
    for name, depth in hierarchy.walk():
        count = counts.get(name, 0)
        if count == 0:
            continue
        marker = "" if hierarchy.node(name).measurable else " *"
        lines.append("  " * depth + f"- {name}{marker} ({count})")
    return "\n".join(lines)


def render_facet_sidebar(catalog: CatalogStore) -> str:
    """The non-hierarchical facet blocks (platform / year / unit)."""
    facets = compute_facets(catalog)
    lines = ["platforms:"]
    for platform, count in sorted(facets.platforms.items()):
        lines.append(f"  {platform:10s} {count:4d}")
    lines.append("years:")
    for year, count in sorted(facets.years.items()):
        lines.append(f"  {year}       {count:4d}")
    lines.append("top variables:")
    for name, count in facets.top_variables(8):
        lines.append(f"  {name:28s} {count:4d}")
    return "\n".join(lines)

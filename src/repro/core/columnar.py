"""Columnar snapshot scoring: frozen facet columns, tight per-row loops.

The object scoring path walks :class:`~repro.catalog.records.DatasetFeature`
instances — per-query that means a dict lookup, a defensive copy and a
cascade of attribute reads per dataset.  At catalog scale the hot loop is
dominated by that object traffic, not by the scoring arithmetic.

:class:`ColumnarSnapshot` freezes the numeric facets ranking actually
reads — bbox extents, time-interval endpoints, per-variable stats and an
interned variable-name table — into flat :mod:`array` columns keyed by a
dense row index, version-stamped like
:class:`~repro.catalog.store.CatalogSnapshot`.  :class:`ColumnarScorer`
then reproduces :meth:`~repro.core.scoring.QueryScorer.score_bounded`
over those columns **bit-identically**:

* every scalar kernel is shared with the object path
  (:func:`~repro.geo.bbox.box_distance_km_to_point`,
  :func:`~repro.geo.timeinterval.interval_gap_seconds`,
  :func:`~repro.core.scoring.range_similarity_values`,
  :func:`~repro.core.scoring.name_similarity`) — one source of truth,
  so the floats cannot drift;
* term weights, accumulation order, the top-k floor prune check and the
  :class:`~repro.core.scoring.ScoreBreakdown` construction mirror
  ``score_bounded`` operation for operation;
* rows are laid out in sorted-dataset-id order — the order every
  store's ``dataset_ids()`` returns — so a serial scan visits datasets
  exactly as the object path does and the floor sequence matches.

``tests/test_search_columnar.py`` pins columnar == object on ids,
scores, ordering and full breakdowns under Hypothesis, the way
``test_search_sharded.py`` pins sharded == serial.
"""

from __future__ import annotations

from array import array
from typing import Iterable

from ..geo import SECONDS_PER_DAY
from ..geo.bbox import box_distance_km_to_box, box_distance_km_to_point
from ..geo.timeinterval import interval_gap_seconds
from ..obs import get_telemetry
from .scoring import (
    QueryScorer,
    ScoreBreakdown,
    decay,
    name_similarity,
    range_similarity_values,
)


def _append_variables(
    feature,
    name_ids: dict,
    names: list,
    var_name_ids,
    var_counts,
    var_mins,
    var_maxs,
) -> int:
    """Append one feature's searchable variables to the CSR columns.

    The single source of truth for the per-feature inner loop: the cold
    ``__init__`` freeze and the incremental :meth:`freeze_from` both run
    it, so a refrozen row's CSR segment cannot drift from a cold one's.
    Returns the number of entries appended.
    """
    added = 0
    for entry in feature.variables:
        if entry.excluded:
            continue
        name_id = name_ids.get(entry.name)
        if name_id is None:
            name_id = len(names)
            name_ids[entry.name] = name_id
            names.append(entry.name)
        var_name_ids.append(name_id)
        var_counts.append(entry.count)
        var_mins.append(entry.minimum)
        var_maxs.append(entry.maximum)
        added += 1
    return added


class ColumnarSnapshot:
    """Dataset facets frozen into flat columns keyed by dense row index.

    Immutable after construction (by convention — the arrays are never
    written again) and version-stamped with the source catalog's
    mutation counter, so engines can detect staleness in O(1) exactly as
    they do for :class:`~repro.catalog.store.CatalogSnapshot`.

    Variable stats use a CSR-style layout: row ``r``'s searchable
    variables (non-excluded, in position order — the order
    ``searchable_variables()`` yields) occupy the half-open slice
    ``var_offsets[r] : var_offsets[r + 1]`` of the flat per-variable
    columns, and ``var_name_ids`` indexes the interned ``names`` table.
    """

    __slots__ = (
        "version", "ids", "row_of",
        "min_lat", "min_lon", "max_lat", "max_lon",
        "t_start", "t_end",
        "var_offsets", "var_name_ids", "var_counts", "var_mins", "var_maxs",
        "names",
    )

    def __init__(self, features: Iterable, version: int) -> None:
        feats = sorted(features, key=lambda f: f.dataset_id)
        self.version = version
        self.ids: list[str] = [f.dataset_id for f in feats]
        self.row_of: dict[str, int] = {
            dataset_id: row for row, dataset_id in enumerate(self.ids)
        }
        n = len(feats)
        self.min_lat = array("d", bytes(8 * n))
        self.min_lon = array("d", bytes(8 * n))
        self.max_lat = array("d", bytes(8 * n))
        self.max_lon = array("d", bytes(8 * n))
        self.t_start = array("d", bytes(8 * n))
        self.t_end = array("d", bytes(8 * n))
        self.var_offsets = array("q", bytes(8 * (n + 1)))
        name_ids: dict[str, int] = {}
        names: list[str] = []
        var_name_ids = array("q")
        var_counts = array("q")
        var_mins = array("d")
        var_maxs = array("d")
        total = 0
        for row, feature in enumerate(feats):
            bbox = feature.bbox
            interval = feature.interval
            self.min_lat[row] = bbox.min_lat
            self.min_lon[row] = bbox.min_lon
            self.max_lat[row] = bbox.max_lat
            self.max_lon[row] = bbox.max_lon
            self.t_start[row] = interval.start
            self.t_end[row] = interval.end
            total += _append_variables(
                feature, name_ids, names,
                var_name_ids, var_counts, var_mins, var_maxs,
            )
            self.var_offsets[row + 1] = total
        self.var_name_ids = var_name_ids
        self.var_counts = var_counts
        self.var_mins = var_mins
        self.var_maxs = var_maxs
        self.names = names

    @classmethod
    def freeze(cls, features: Iterable, version: int) -> "ColumnarSnapshot":
        """Build a columnar view, recording the ``columnar.freeze`` span."""
        telemetry = get_telemetry()
        with telemetry.span("columnar.freeze"):
            view = cls(features, version=version)
        telemetry.count("columnar.freezes")
        return view

    @classmethod
    def freeze_from(
        cls,
        previous: "ColumnarSnapshot",
        upserted: Iterable,
        removed: Iterable[str],
        version: int,
    ) -> "ColumnarSnapshot":
        """Incremental refreeze: splice a delta into ``previous``.

        Rebuilds only the upserted rows; every unchanged row's scalars
        and CSR segment are copied straight out of ``previous`` by
        index, and the interned name table is *reused and extended*
        rather than re-derived.  The cost is O(rows) pointer work plus
        O(changed) feature traversal — no per-variable object walk for
        the unchanged majority.

        Exactness: rows stay in sorted-dataset-id order (a sorted merge
        of kept and fresh ids), so scan order matches a cold freeze.
        The name table may *permute* relative to a cold freeze of the
        same features (a name first seen by an earlier generation keeps
        its old id; cold freezing re-interns in first-encounter order),
        but scoring is invariant under that: similarities are computed
        per interned *name string* (``ColumnarScorer`` builds its
        term-sim table by name), never per id, so every row scores
        bit-identically.  ``tests/test_search_columnar.py`` pins this.

        Raises ``KeyError`` when ``previous`` does not contain a row the
        delta claims is unchanged — the caller treats that as an
        inconsistent base and falls back to a cold freeze.
        """
        telemetry = get_telemetry()
        changed = {}
        for feature in upserted:
            changed[feature.dataset_id] = feature
        drop = set(removed)
        drop.update(changed)
        with telemetry.span(
            "columnar.refreeze", upserted=len(changed), removed=len(drop) - len(changed)
        ):
            kept = [did for did in previous.ids if did not in drop]
            fresh = sorted(changed)
            # Sorted merge: kept ids are already sorted (a subsequence
            # of previous.ids), fresh ids are sorted above.
            ids: list[str] = []
            i = j = 0
            n_kept, n_fresh = len(kept), len(fresh)
            while i < n_kept and j < n_fresh:
                if kept[i] < fresh[j]:
                    ids.append(kept[i])
                    i += 1
                else:
                    ids.append(fresh[j])
                    j += 1
            ids.extend(kept[i:])
            ids.extend(fresh[j:])

            view = cls.__new__(cls)
            view.version = version
            view.ids = ids
            view.row_of = {
                dataset_id: row for row, dataset_id in enumerate(ids)
            }
            n = len(ids)
            view.min_lat = array("d", bytes(8 * n))
            view.min_lon = array("d", bytes(8 * n))
            view.max_lat = array("d", bytes(8 * n))
            view.max_lon = array("d", bytes(8 * n))
            view.t_start = array("d", bytes(8 * n))
            view.t_end = array("d", bytes(8 * n))
            view.var_offsets = array("q", bytes(8 * (n + 1)))
            names = list(previous.names)
            name_ids = {name: idx for idx, name in enumerate(names)}
            var_name_ids = array("q")
            var_counts = array("q")
            var_mins = array("d")
            var_maxs = array("d")

            prev_row_of = previous.row_of
            p_min_lat, p_min_lon = previous.min_lat, previous.min_lon
            p_max_lat, p_max_lon = previous.max_lat, previous.max_lon
            p_t_start, p_t_end = previous.t_start, previous.t_end
            p_offsets = previous.var_offsets
            p_name_ids = previous.var_name_ids
            p_counts = previous.var_counts
            p_mins = previous.var_mins
            p_maxs = previous.var_maxs

            total = 0
            reused = 0
            for row, dataset_id in enumerate(ids):
                feature = changed.get(dataset_id)
                if feature is None:
                    r = prev_row_of[dataset_id]  # KeyError: bad base
                    view.min_lat[row] = p_min_lat[r]
                    view.min_lon[row] = p_min_lon[r]
                    view.max_lat[row] = p_max_lat[r]
                    view.max_lon[row] = p_max_lon[r]
                    view.t_start[row] = p_t_start[r]
                    view.t_end[row] = p_t_end[r]
                    lo, hi = p_offsets[r], p_offsets[r + 1]
                    if hi > lo:
                        var_name_ids.extend(p_name_ids[lo:hi])
                        var_counts.extend(p_counts[lo:hi])
                        var_mins.extend(p_mins[lo:hi])
                        var_maxs.extend(p_maxs[lo:hi])
                        total += hi - lo
                    reused += 1
                else:
                    bbox = feature.bbox
                    interval = feature.interval
                    view.min_lat[row] = bbox.min_lat
                    view.min_lon[row] = bbox.min_lon
                    view.max_lat[row] = bbox.max_lat
                    view.max_lon[row] = bbox.max_lon
                    view.t_start[row] = interval.start
                    view.t_end[row] = interval.end
                    total += _append_variables(
                        feature, name_ids, names,
                        var_name_ids, var_counts, var_mins, var_maxs,
                    )
                view.var_offsets[row + 1] = total
            view.var_name_ids = var_name_ids
            view.var_counts = var_counts
            view.var_mins = var_mins
            view.var_maxs = var_maxs
            view.names = names
        if telemetry.enabled:
            telemetry.count("columnar.refreezes")
            telemetry.count("columnar.rows_refrozen", len(changed))
            telemetry.count("columnar.rows_reused", reused)
        return view

    def __len__(self) -> int:
        return len(self.ids)

    # -- pickling ------------------------------------------------------------
    #
    # Snapshots ship to scoring worker processes (serve/procpool.py), so
    # the wire format matters: every column is a flat ``array`` (which
    # pickles as one bytes blob) and ``row_of`` — a dict as large as the
    # catalog but fully derived from ``ids`` — is excluded and rebuilt
    # on unpickle instead of being serialized.

    def __getstate__(self) -> dict:
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        del state["row_of"]
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self.row_of = {
            dataset_id: row for row, dataset_id in enumerate(self.ids)
        }


class ColumnarScorer:
    """Scores :class:`ColumnarSnapshot` rows bit-identically to the
    wrapped :class:`~repro.core.scoring.QueryScorer`.

    Wraps the query's object scorer so the precomputed term weights,
    hierarchy expansions and use-flags are literally the same values the
    object path divides and prunes with.  The per-(term, interned-name)
    similarity table is filled eagerly at construction — the interned
    name table is small (unique variable names across the catalog) and a
    read-only table makes the scorer safe to share across scoring-shard
    threads, unlike the object scorer's lazily-mutated memo dict.
    """

    __slots__ = ("scorer", "view", "_term_sims")

    def __init__(self, scorer: QueryScorer, view: ColumnarSnapshot) -> None:
        self.scorer = scorer
        self.view = view
        config = scorer.config
        if scorer._use_variables:
            self._term_sims = [
                [
                    name_similarity(
                        term.name, name, scorer._expansions[index], config
                    )
                    for name in view.names
                ]
                for index, term in enumerate(scorer.query.variables)
            ]
        else:
            self._term_sims = []

    def score_row_bounded(
        self, row: int, floor: tuple[float, str] | None
    ) -> tuple[ScoreBreakdown | None, bool]:
        """Columnar twin of :meth:`QueryScorer.score_bounded`.

        Same contract: ``(breakdown, known_positive)``, with ``None``
        instead of a breakdown when the top-k floor proves the row
        cannot make the page.
        """
        scorer = self.scorer
        config = scorer.config
        query = scorer.query
        view = self.view
        shape = config.decay_shape
        weighted_sum = 0.0
        loc_sim: float | None = None
        time_sim: float | None = None
        var_sims: list[tuple[str, float]] = []

        if scorer._use_location:
            if query.location is not None:
                distance_km = box_distance_km_to_point(
                    view.min_lat[row], view.min_lon[row],
                    view.max_lat[row], view.max_lon[row],
                    query.location.lat, query.location.lon,
                )
            else:
                region = query.region
                distance_km = box_distance_km_to_box(
                    view.min_lat[row], view.min_lon[row],
                    view.max_lat[row], view.max_lon[row],
                    region.min_lat, region.min_lon,
                    region.max_lat, region.max_lon,
                )
            loc_sim = decay(
                distance_km / config.location_decay_km, shape
            )
            weighted_sum += config.location_weight * loc_sim
        if scorer._use_time:
            interval = query.interval
            gap_days = interval_gap_seconds(
                view.t_start[row], view.t_end[row],
                interval.start, interval.end,
            ) / SECONDS_PER_DAY
            time_sim = decay(gap_days / config.time_decay_days, shape)
            weighted_sum += config.time_weight * time_sim
        if scorer._use_variables:
            if floor is not None and scorer._total_weight > 0:
                # Best possible total: every variable term scores 1.0.
                best_total = (
                    weighted_sum + scorer._variables_weight
                ) / scorer._total_weight
                floor_score, floor_id = floor
                if best_total < floor_score or (
                    best_total == floor_score
                    and view.ids[row] > floor_id
                ):
                    return None, weighted_sum > 0.0
            lo = view.var_offsets[row]
            hi = view.var_offsets[row + 1]
            name_ids = view.var_name_ids
            counts = view.var_counts
            mins = view.var_mins
            maxs = view.var_maxs
            for index, term in enumerate(query.variables):
                sims = self._term_sims[index]
                best = 0.0
                for k in range(lo, hi):
                    n_sim = sims[name_ids[k]]
                    if n_sim == 0.0:
                        continue
                    sim = n_sim * range_similarity_values(
                        term, counts[k], mins[k], maxs[k], config
                    )
                    if sim > best:
                        best = sim
                        if best >= 1.0:
                            break
                var_sims.append((term.name, best))
                w = config.variable_weight * term.weight
                weighted_sum += w * best

        total = (
            weighted_sum / scorer._total_weight
            if scorer._total_weight > 0 else 1.0
        )
        breakdown = ScoreBreakdown(
            total=total,
            location=loc_sim,
            time=time_sim,
            variables=tuple(var_sims),
        )
        return breakdown, total > 0.0

    def score_row(self, row: int) -> ScoreBreakdown:
        """Unbounded scoring of one row (always returns a breakdown)."""
        breakdown, __ = self.score_row_bounded(row, None)
        return breakdown

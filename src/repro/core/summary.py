"""Dataset summary: the content behind the poster's summary-page figure.

"Search result leads to 'dataset summary'; displays dataset & variable
information from metadata catalog."  :func:`summarize` assembles that
content as a plain data structure; ``repro.ui`` renders it as text/HTML.
Excluded (auxiliary) variables appear here — the Table's desired result
for excessive variables is "exclude from search, show in detailed
dataset views".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.records import DatasetFeature
from ..hierarchy import TaxonomyLinks


@dataclass(frozen=True, slots=True)
class VariableSummary:
    """Variable-level lines of the summary page."""

    name: str
    written_name: str
    unit: str
    count: int
    minimum: float
    maximum: float
    mean: float
    excluded: bool
    ambiguous: bool
    context: str
    taxonomy_links: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class DatasetSummary:
    """Dataset-level header plus per-variable detail."""

    dataset_id: str
    title: str
    platform: str
    file_format: str
    location_text: str
    time_text: str
    row_count: int
    source_directory: str
    attributes: tuple[tuple[str, str], ...]
    searchable: tuple[VariableSummary, ...]
    detail_only: tuple[VariableSummary, ...]

    @property
    def variable_count(self) -> int:
        """All variables, searchable and detail-only."""
        return len(self.searchable) + len(self.detail_only)


def summarize(
    feature: DatasetFeature,
    taxonomy_links: TaxonomyLinks | None = None,
) -> DatasetSummary:
    """Build the summary-page content for one dataset feature."""
    searchable: list[VariableSummary] = []
    detail_only: list[VariableSummary] = []
    for entry in feature.variables:
        links: tuple[str, ...] = ()
        if taxonomy_links is not None:
            links = tuple(
                str(link) for link in taxonomy_links.links_for(entry.name)
            )
        summary = VariableSummary(
            name=entry.name,
            written_name=entry.written_name,
            unit=entry.unit,
            count=entry.count,
            minimum=entry.minimum,
            maximum=entry.maximum,
            mean=entry.mean,
            excluded=entry.excluded,
            ambiguous=entry.ambiguous,
            context=entry.context,
            taxonomy_links=links,
        )
        (detail_only if entry.excluded else searchable).append(summary)
    bbox = feature.bbox
    if bbox.is_point:
        location_text = str(bbox.center)
    else:
        location_text = (
            f"{bbox.min_lat:.4f}..{bbox.max_lat:.4f} N, "
            f"{bbox.min_lon:.4f}..{bbox.max_lon:.4f} E"
        )
    return DatasetSummary(
        dataset_id=feature.dataset_id,
        title=feature.title,
        platform=feature.platform,
        file_format=feature.file_format,
        location_text=location_text,
        time_text=str(feature.interval),
        row_count=feature.row_count,
        source_directory=feature.source_directory,
        attributes=tuple(sorted(feature.attributes.items())),
        searchable=tuple(searchable),
        detail_only=tuple(detail_only),
    )

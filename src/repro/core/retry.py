"""Bounded retry with exponential backoff and deterministic jitter.

Transient faults — flaky archive reads, SQLite busy/locked — are
absorbed by retrying a bounded number of times with exponentially
growing pauses.  Two properties matter for this codebase:

* **Bounded**: the budget is small and explicit (:class:`RetryPolicy`);
  a fault that outlives it surfaces to the caller, which degrades
  gracefully (quarantine the file, defer the write) instead of crashing.
* **Deterministic**: the jitter that decorrelates concurrent retriers is
  derived from a hash of ``(key, attempt)``, not from a random source,
  so the same seeded fault schedule always produces byte-identical
  pipeline output — the property the fault suite asserts.

The pause schedule is pure (:meth:`RetryPolicy.delay`), the sleep is
injectable, and with ``base_delay=0`` the layer adds nothing but a
``try`` per call — which is what keeps its no-fault overhead invisible
in the ingest benchmark.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..obs import get_telemetry
from .errors import is_transient

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to try and how long to pause between tries."""

    #: Total tries, including the first (``1`` disables retrying).
    attempts: int = 3
    #: Pause after the first failure, in seconds.
    base_delay: float = 0.005
    #: Growth factor between consecutive pauses.
    multiplier: float = 4.0
    #: Upper bound on any single pause.
    max_delay: float = 0.05
    #: Fractional spread added on top of the exponential pause
    #: (``0.5`` means up to +50%), derived deterministically from the
    #: retry key so identical runs stay identical.
    jitter: float = 0.5

    def delay(self, attempt: int, key: str = "") -> float:
        """Pause before try ``attempt + 1`` (``attempt`` counts from 1)."""
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self.jitter <= 0 or raw <= 0:
            return raw
        digest = hashlib.blake2b(
            f"{key}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        return raw * (1.0 + self.jitter * fraction)


#: The pipeline-wide default: three tries, tiny pauses.  Callers on a
#: hot path pass their own policy (often with ``base_delay=0`` in tests).
DEFAULT_RETRY = RetryPolicy()


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY,
    *,
    key: str = "",
    classify: Callable[[BaseException], bool] = is_transient,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn`` under ``policy``, retrying faults ``classify`` accepts.

    Non-transient exceptions propagate immediately; a transient fault
    that survives the whole budget propagates too (the *last* one).
    ``on_retry`` observes each absorbed fault — components use it to
    count recovered retries in their reports.
    """
    attempt = 1
    budget = max(1, policy.attempts)
    while True:
        try:
            return fn()
        except Exception as exc:
            if attempt >= budget or not classify(exc):
                raise
            pause = policy.delay(attempt, key)
            # One shared ledger of absorbed transients: compared against
            # `fault.injected` (see repro.core.faults) it splits retries
            # into injected vs organic on the stats surfaces.
            get_telemetry().count("retry.absorbed")
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)
            attempt += 1

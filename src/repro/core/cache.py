"""A version-keyed LRU cache for ranked-search results.

Refinement sessions "run & rerun": a scientist tweaks one term, re-issues
the query, compares, and backtracks — producing streams of identical and
near-identical queries.  This cache makes the repeats effectively free.

Entries are keyed by the caller on a tuple that includes the catalog's
monotonic :attr:`~repro.catalog.store.CatalogStore.version`, so *any*
catalog mutation makes every older entry unreachable without an explicit
invalidation sweep; unreachable entries simply age out of the LRU order.
Values are returned as-is — callers must treat cached results as
immutable.

The cache is thread-safe: the serving layer shares one instance across
every request worker (and across engine rebuilds, since entries are
keyed on the catalog version, not the engine), so ``get``/``put``/
``clear`` and the counters all mutate under one lock.  ``OrderedDict``
reordering is not atomic bytecode — without the lock a concurrent
``move_to_end`` against ``popitem`` can corrupt the LRU order or tear
the hit/miss accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class QueryCache:
    """A bounded, thread-safe LRU mapping with hit/miss/eviction
    accounting."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value, freshened to most-recently-used; None on miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the least-recently-used on overflow."""
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
            if len(entries) > self.maxsize:
                entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def items(self) -> list[tuple[Hashable, Any]]:
        """A point-in-time copy of ``(key, value)`` pairs, LRU-first.

        The cache-migration primitive: on a snapshot refresh the engine
        scans entries *outside* the lock (scoring each entry's query
        against the publish delta is too slow to hold it) and re-inserts
        provably-unaffected entries under new version keys via
        :meth:`put`.  The copy means a concurrent eviction or insert is
        never observed half-way; at worst a migrated entry was just
        evicted, which only costs a future miss.
        """
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, float | int]:
        """Operational counters for monitoring and the CLI.

        Taken under the lock, so concurrent readers always see a
        consistent view (``hits + misses`` equals the lookups served so
        far, never a torn intermediate).
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

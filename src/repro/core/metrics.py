"""Retrieval-quality metrics for evaluating ranked search.

The poster has no numeric evaluation; the reproduction measures ranked
search against ground-truth relevance derived from the *clean* archive
(which only the experiment harness sees).  Standard IR metrics:
precision@k, recall@k, average precision and nDCG@k with graded
relevance.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def precision_at_k(
    ranked_ids: Sequence[str], relevant: set[str], k: int
) -> float:
    """Fraction of the top-k that is relevant (0.0 for empty rankings).

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    top = list(ranked_ids[:k])
    if not top:
        return 0.0
    hits = sum(1 for dataset_id in top if dataset_id in relevant)
    return hits / len(top)


def recall_at_k(
    ranked_ids: Sequence[str], relevant: set[str], k: int
) -> float:
    """Fraction of relevant items found in the top-k (1.0 when nothing is
    relevant — there was nothing to miss).

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 1.0
    top = set(ranked_ids[:k])
    return len(top & relevant) / len(relevant)


def average_precision(
    ranked_ids: Sequence[str], relevant: set[str]
) -> float:
    """Mean of precision at each relevant hit (1.0 when nothing relevant)."""
    if not relevant:
        return 1.0
    hits = 0
    total = 0.0
    for rank, dataset_id in enumerate(ranked_ids, start=1):
        if dataset_id in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def dcg_at_k(
    ranked_ids: Sequence[str], relevance: Mapping[str, float], k: int
) -> float:
    """Discounted cumulative gain with graded relevance.

    Uses the standard ``(2^rel - 1) / log2(rank + 1)`` gain.

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    total = 0.0
    for rank, dataset_id in enumerate(ranked_ids[:k], start=1):
        rel = relevance.get(dataset_id, 0.0)
        if rel > 0:
            total += (2.0 ** rel - 1.0) / math.log2(rank + 1)
    return total


def ndcg_at_k(
    ranked_ids: Sequence[str], relevance: Mapping[str, float], k: int
) -> float:
    """Normalized DCG in [0, 1] (1.0 when nothing is relevant)."""
    ideal_order = sorted(relevance, key=lambda d: -relevance[d])
    ideal = dcg_at_k(ideal_order, relevance, k)
    if ideal == 0.0:
        return 1.0
    return dcg_at_k(ranked_ids, relevance, k) / ideal

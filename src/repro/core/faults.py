"""Deterministic fault schedules for the injectable fault wrappers.

The corruption injectors in :mod:`repro.archive.corruption` break file
*content*; the flaky wrappers (:class:`repro.archive.flaky.FlakyArchive`
and :class:`repro.catalog.flaky.FlakyCatalogStore`) break *operations* —
a read that fails this time but would succeed next time, a store that
reports busy.  Both wrappers consult a :class:`FaultSchedule`: a seeded,
fully deterministic decision stream, so a test that replays the same
seed against the same call sequence gets the same faults — and can
assert the pipeline's reaction byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..obs import get_telemetry


@dataclass(slots=True)
class FaultSchedule:
    """A seeded stream of should-this-call-fail decisions.

    ``rate`` is the per-call fault probability (``0`` disables the
    schedule, ``1`` faults every eligible call).  ``max_consecutive``
    caps the failures injected in a row *per key* — keeping it below a
    caller's retry budget guarantees every fault is eventually absorbed,
    which is what the fault-free-equivalence property test relies on.
    ``limit`` bounds total injected faults; ``ops`` restricts injection
    to the named operations (e.g. ``frozenset({"read"})``).

    Every injected fault is appended to :attr:`injected` as
    ``(op, key, call_number)`` so tests can assert exactly what fired.
    """

    seed: int = 0
    rate: float = 0.0
    max_consecutive: int = 2
    limit: int | None = None
    ops: frozenset[str] | None = None
    calls: int = 0
    injected: list[tuple[str, str, int]] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)
    _streak: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    @property
    def total_injected(self) -> int:
        """How many faults have fired so far."""
        return len(self.injected)

    def should_fail(self, op: str, key: str = "") -> bool:
        """Decide (and record) whether this call faults.

        Deterministic: the decision depends only on the seed and the
        sequence of calls made so far.
        """
        self.calls += 1
        if self.rate <= 0.0:
            return False
        if self.ops is not None and op not in self.ops:
            return False
        if self.limit is not None and len(self.injected) >= self.limit:
            return False
        streak_key = f"{op}:{key}"
        if self._streak.get(streak_key, 0) >= self.max_consecutive:
            # Budget for this key exhausted: let the retry succeed.
            self._streak[streak_key] = 0
            return False
        if self._rng.random() < self.rate:
            self._streak[streak_key] = self._streak.get(streak_key, 0) + 1
            self.injected.append((op, key, self.calls))
            # Telemetry marks the fault as *injected*, so stats surfaces
            # can separate test-harness faults from organic transients
            # (organic = retry.absorbed - fault.injected).
            telemetry = get_telemetry()
            telemetry.count("fault.injected")
            telemetry.count(f"fault.injected.{op}")
            return True
        self._streak[streak_key] = 0
        return False

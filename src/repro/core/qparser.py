"""A textual query language for the search box.

The interface figure shows scientists typing information needs; this
parser turns the poster's example — ``near 45.5, -124.4 in mid-2010 with
temperature between 5 and 10`` — into a :class:`~repro.core.query.Query`.

Grammar (clauses in any order, case-insensitive):

* ``near LAT, LON``                      — location point
* ``within N km``                        — pruning radius
* ``in region LAT1, LON1 to LAT2, LON2`` — region box
* ``from DATE to DATE``                  — explicit window (YYYY[-MM[-DD]])
* ``during YYYY[-MM]``                   — a whole year or month
* ``in early-YYYY | mid-YYYY | late-YYYY`` — thirds of a year
* ``with VAR [between A and B | above A | below B | = A] [, VAR ...]``
"""

from __future__ import annotations

import calendar
import math
import re
from datetime import datetime, timezone

from ..geo import BoundingBox, GeoPoint, TimeInterval
from .query import Query, VariableTerm


class QueryParseError(ValueError):
    """Raised when query text cannot be understood."""


# Matches inf/nan tokens too, so they hit the finiteness checks below
# and produce a clear error instead of a silently ignored clause.
_NUM = r"[-+]?(?:\d+(?:\.\d+)?|inf(?:inity)?|nan)"
_NEAR_RE = re.compile(
    rf"\bnear\s+(?:lat\s*=?\s*)?({_NUM})\s*,\s*(?:lon\s*=?\s*)?({_NUM})",
    re.IGNORECASE,
)
_WITHIN_RE = re.compile(
    rf"\bwithin\s+({_NUM})\s*km\b", re.IGNORECASE
)
_REGION_RE = re.compile(
    rf"\bin\s+region\s+({_NUM})\s*,\s*({_NUM})\s+to\s+({_NUM})\s*,\s*({_NUM})",
    re.IGNORECASE,
)
_FROM_TO_RE = re.compile(
    r"\bfrom\s+(\d{4}(?:-\d{2}(?:-\d{2})?)?)\s+to\s+"
    r"(\d{4}(?:-\d{2}(?:-\d{2})?)?)",
    re.IGNORECASE,
)
_DURING_RE = re.compile(
    r"\bduring\s+(\d{4})(?:-(\d{2}))?", re.IGNORECASE
)
_SEASON_RE = re.compile(
    r"\bin\s+(early|mid|late)-?(\d{4})\b", re.IGNORECASE
)
_WITH_RE = re.compile(r"\bwith\s+(.+)$", re.IGNORECASE | re.DOTALL)
_BETWEEN_RE = re.compile(
    rf"^(?P<name>.+?)\s+between\s+(?P<low>{_NUM})\s+and\s+(?P<high>{_NUM})$",
    re.IGNORECASE,
)
_ABOVE_RE = re.compile(
    rf"^(?P<name>.+?)\s+(?:above|over|>=?)\s*(?P<low>{_NUM})$",
    re.IGNORECASE,
)
_BELOW_RE = re.compile(
    rf"^(?P<name>.+?)\s+(?:below|under|<=?)\s*(?P<high>{_NUM})$",
    re.IGNORECASE,
)
_EQUALS_RE = re.compile(
    rf"^(?P<name>.+?)\s*=\s*(?P<value>{_NUM})$", re.IGNORECASE
)


def _epoch(year: int, month: int, day: int, end_of_day: bool = False) -> float:
    dt = datetime(
        year, month, day,
        23 if end_of_day else 0,
        59 if end_of_day else 0,
        59 if end_of_day else 0,
        tzinfo=timezone.utc,
    )
    return dt.timestamp()


def _parse_date(text: str, end: bool) -> float:
    parts = [int(p) for p in text.split("-")]
    try:
        if len(parts) == 1:
            year = parts[0]
            return _epoch(year, 12 if end else 1, 31 if end else 1, end)
        if len(parts) == 2:
            year, month = parts
            last = calendar.monthrange(year, month)[1]
            return _epoch(year, month, last if end else 1, end)
        year, month, day = parts
        return _epoch(year, month, day, end)
    except ValueError as exc:
        raise QueryParseError(f"bad date {text!r}: {exc}")


def _season_interval(season: str, year: int) -> TimeInterval:
    thirds = {
        "early": (1, 4),  # Jan-Apr
        "mid": (5, 8),  # May-Aug
        "late": (9, 12),  # Sep-Dec
    }
    start_month, end_month = thirds[season.lower()]
    last = calendar.monthrange(year, end_month)[1]
    return TimeInterval(
        _epoch(year, start_month, 1),
        _epoch(year, end_month, last, end_of_day=True),
    )


def _bound(token: str) -> float:
    value = float(token)
    if not math.isfinite(value):
        raise ValueError("bounds must be finite numbers")
    return value


def _parse_variable_clause(clause: str) -> VariableTerm:
    clause = clause.strip()
    if not clause:
        raise QueryParseError("empty variable clause")
    for pattern, maker in (
        (_BETWEEN_RE, lambda m: VariableTerm(
            _norm_var(m.group("name")),
            low=_bound(m.group("low")),
            high=_bound(m.group("high")),
        )),
        (_ABOVE_RE, lambda m: VariableTerm(
            _norm_var(m.group("name")), low=_bound(m.group("low"))
        )),
        (_BELOW_RE, lambda m: VariableTerm(
            _norm_var(m.group("name")), high=_bound(m.group("high"))
        )),
        (_EQUALS_RE, lambda m: VariableTerm(
            _norm_var(m.group("name")),
            low=_bound(m.group("value")),
            high=_bound(m.group("value")),
        )),
    ):
        match = pattern.match(clause)
        if match is not None:
            try:
                return maker(match)
            except ValueError as exc:
                raise QueryParseError(f"bad range in {clause!r}: {exc}")
    return VariableTerm(_norm_var(clause))


def _norm_var(name: str) -> str:
    from ..text import normalize_name

    normalized = normalize_name(name)
    if not normalized:
        raise QueryParseError(f"bad variable name {name!r}")
    return normalized


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`Query`.

    Raises:
        QueryParseError: when no clause matches or a clause is malformed.
    """
    if not text or not text.strip():
        raise QueryParseError("empty query text")
    remaining = text.strip()
    location: GeoPoint | None = None
    region: BoundingBox | None = None
    interval: TimeInterval | None = None
    radius_km = 50.0
    variables: list[VariableTerm] = []
    matched_any = False

    region_match = _REGION_RE.search(remaining)
    if region_match is not None:
        matched_any = True
        lat1, lon1, lat2, lon2 = (
            float(region_match.group(i)) for i in range(1, 5)
        )
        if not all(
            math.isfinite(value) for value in (lat1, lon1, lat2, lon2)
        ):
            raise QueryParseError(
                "region corners must be finite latitude, longitude pairs"
            )
        try:
            region = BoundingBox(
                min(lat1, lat2), min(lon1, lon2),
                max(lat1, lat2), max(lon1, lon2),
            )
        except ValueError as exc:
            raise QueryParseError(f"bad region: {exc}")
        remaining = remaining.replace(region_match.group(0), " ")

    near_match = _NEAR_RE.search(remaining)
    if near_match is not None:
        matched_any = True
        lat = float(near_match.group(1))
        lon = float(near_match.group(2))
        if not (math.isfinite(lat) and math.isfinite(lon)):
            raise QueryParseError(
                "latitude and longitude must be finite numbers"
            )
        try:
            location = GeoPoint(lat, lon)
        except ValueError as exc:
            raise QueryParseError(f"bad location: {exc}")
        remaining = remaining.replace(near_match.group(0), " ")

    within_match = _WITHIN_RE.search(remaining)
    if within_match is not None:
        matched_any = True
        radius_km = float(within_match.group(1))
        # A long-enough digit string parses to inf — reject it rather
        # than silently disabling spatial pruning.
        if not math.isfinite(radius_km) or radius_km <= 0:
            raise QueryParseError("radius must be positive and finite")
        remaining = remaining.replace(within_match.group(0), " ")

    from_to = _FROM_TO_RE.search(remaining)
    season = _SEASON_RE.search(remaining)
    during = _DURING_RE.search(remaining)
    if from_to is not None:
        matched_any = True
        start = _parse_date(from_to.group(1), end=False)
        end = _parse_date(from_to.group(2), end=True)
        if start > end:
            raise QueryParseError("time window ends before it starts")
        interval = TimeInterval(start, end)
        remaining = remaining.replace(from_to.group(0), " ")
    elif season is not None:
        matched_any = True
        interval = _season_interval(
            season.group(1), int(season.group(2))
        )
        remaining = remaining.replace(season.group(0), " ")
    elif during is not None:
        matched_any = True
        year = int(during.group(1))
        month = during.group(2)
        if month is None:
            interval = TimeInterval(
                _parse_date(str(year), end=False),
                _parse_date(str(year), end=True),
            )
        else:
            token = f"{year}-{month}"
            interval = TimeInterval(
                _parse_date(token, end=False), _parse_date(token, end=True)
            )
        remaining = remaining.replace(during.group(0), " ")

    # Variables last, after every other clause has been stripped, so a
    # 'with ...' in clause-first order does not swallow them.
    with_match = _WITH_RE.search(remaining)
    if with_match is not None:
        matched_any = True
        for clause in with_match.group(1).split(","):
            variables.append(_parse_variable_clause(clause))

    if not matched_any:
        raise QueryParseError(f"no recognizable clause in {text!r}")
    if location is not None and region is not None:
        raise QueryParseError("give either 'near' or 'in region', not both")
    return Query(
        location=location,
        region=region,
        interval=interval,
        variables=tuple(variables),
        radius_km=radius_km,
    )

"""The ranked search engine and the boolean-filter baseline.

:class:`SearchEngine` is the paper's similarity search over the catalog:
score every candidate feature, return the top-k with per-term breakdowns.
Optional :class:`~repro.catalog.index.CatalogIndexes` prune candidates
for spatial/temporal queries; pruning is conservative at the configured
``epsilon`` (candidates whose indexed term would score below it may be
skipped).

:class:`BooleanSearchEngine` is the comparison baseline a conventional
data portal provides: hard filters, no ranking.  A dataset either matches
*all* terms or is not returned — exactly the behaviour whose failure on
partial matches motivates ranked search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..catalog.index import CatalogIndexes
from ..catalog.records import DatasetFeature
from ..catalog.store import CatalogStore
from ..geo import SECONDS_PER_DAY
from ..hierarchy import ConceptHierarchy
from .query import Query
from .scoring import (
    ScoreBreakdown,
    ScoringConfig,
    decay_horizon,
    score_feature,
)


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked hit."""

    dataset_id: str
    score: float
    breakdown: ScoreBreakdown
    feature: DatasetFeature

    def __str__(self) -> str:
        return f"{self.score:.3f}  {self.dataset_id}"


class SearchEngine:
    """Ranked similarity search over a catalog store."""

    def __init__(
        self,
        catalog: CatalogStore,
        hierarchy: ConceptHierarchy | None = None,
        indexes: CatalogIndexes | None = None,
        config: ScoringConfig | None = None,
        epsilon: float = 1e-3,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must lie in (0, 1)")
        self.catalog = catalog
        self.hierarchy = hierarchy
        self.indexes = indexes
        self.config = config or ScoringConfig()
        self.epsilon = epsilon

    def build_indexes(self, cell_degrees: float = 0.5) -> CatalogIndexes:
        """Build (and attach) fresh indexes over the current catalog."""
        self.indexes = CatalogIndexes.build(
            list(self.catalog), cell_degrees=cell_degrees
        )
        return self.indexes

    def _term_weights(self, query: Query) -> tuple[float, float, float]:
        """(location, time, variables) total weights present in the query
        under the current config (0 when the term is absent/disabled)."""
        w_loc = (
            self.config.location_weight
            if query.has_spatial and self.config.use_location
            else 0.0
        )
        w_time = (
            self.config.time_weight
            if query.has_temporal and self.config.use_time
            else 0.0
        )
        w_vars = (
            sum(
                self.config.variable_weight * term.weight
                for term in query.variables
            )
            if query.variables and self.config.use_variables
            else 0.0
        )
        return w_loc, w_time, w_vars

    def _candidate_ids(self, query: Query) -> tuple[list[str], float | None]:
        """Candidate dataset ids plus an upper bound on the total score
        any *excluded* dataset could reach (None when nothing was pruned).

        Pruning drops datasets whose indexed term (location or time) has
        decayed below ``epsilon``; because the total is a weighted mean,
        such a dataset can still score up to ``(W - w_term (1 - eps))/W``
        through its other terms.  :meth:`search` uses the bound to decide
        whether the pruned remainder must be scanned after all.
        """
        if self.indexes is None or len(self.indexes) != len(self.catalog):
            return self.catalog.dataset_ids(), None
        w_loc, w_time, w_vars = self._term_weights(query)
        total_weight = w_loc + w_time + w_vars
        candidates: set[str] | None = None
        excluded_bound = 0.0
        if query.location is not None and self.config.use_location:
            # Distance beyond which the location term alone is below
            # epsilon: the query radius plus the decay horizon.
            horizon_km = self.config.location_decay_km * decay_horizon(
                self.epsilon, self.config.decay_shape
            )
            candidates = self.indexes.spatial.candidates_near(
                query.location, query.radius_km + horizon_km
            )
            excluded_bound = max(
                excluded_bound,
                (total_weight - w_loc * (1.0 - self.epsilon)) / total_weight,
            )
        if query.interval is not None and self.config.use_time:
            margin = (
                self.config.time_decay_days
                * SECONDS_PER_DAY
                * decay_horizon(self.epsilon, self.config.decay_shape)
            )
            temporal = self.indexes.temporal.candidates_overlapping(
                query.interval, margin_seconds=margin
            )
            candidates = (
                temporal if candidates is None else candidates & temporal
            )
            excluded_bound = max(
                excluded_bound,
                (total_weight - w_time * (1.0 - self.epsilon))
                / total_weight,
            )
        if candidates is None:
            return self.catalog.dataset_ids(), None
        all_ids = self.catalog.dataset_ids()
        if len(candidates) >= len(all_ids):
            return all_ids, None
        return sorted(candidates), excluded_bound

    def _score_ids(self, query: Query, ids) -> list[SearchResult]:
        results = []
        for dataset_id in ids:
            feature = self.catalog.get(dataset_id)
            breakdown = score_feature(
                query, feature, hierarchy=self.hierarchy, config=self.config
            )
            if breakdown.total <= 0.0 and not query.is_empty:
                continue
            results.append(
                SearchResult(
                    dataset_id=dataset_id,
                    score=breakdown.total,
                    breakdown=breakdown,
                    feature=feature,
                )
            )
        return results

    def search(self, query: Query, limit: int = 10) -> list[SearchResult]:
        """Top-``limit`` datasets by similarity to ``query``.

        Exact: index pruning is verified against the excluded-score upper
        bound, and the pruned remainder is scanned whenever an excluded
        dataset could still reach the top-``limit``.  Results are sorted
        by descending score, ties broken by dataset id for determinism.

        Raises:
            ValueError: if ``limit`` is not positive.
        """
        if limit <= 0:
            raise ValueError("limit must be positive")
        candidate_ids, excluded_bound = self._candidate_ids(query)
        results = self._score_ids(query, candidate_ids)
        results.sort(key=lambda r: (-r.score, r.dataset_id))
        if excluded_bound is not None:
            kth_score = (
                results[limit - 1].score if len(results) >= limit else 0.0
            )
            if kth_score < excluded_bound:
                remainder = sorted(
                    set(self.catalog.dataset_ids()) - set(candidate_ids)
                )
                results.extend(self._score_ids(query, remainder))
                results.sort(key=lambda r: (-r.score, r.dataset_id))
        return results[:limit]

    def score_all(self, query: Query) -> dict[str, float]:
        """Score of every dataset (no pruning) — used by quality metrics."""
        return {
            feature.dataset_id: score_feature(
                query, feature, hierarchy=self.hierarchy, config=self.config
            ).total
            for feature in self.catalog
        }


class BooleanSearchEngine:
    """The unranked hard-filter baseline.

    Matching rules (all present terms must hold):

    * location: the query point within ``radius_km`` of the dataset box
      (or query region intersecting it),
    * time: intervals overlap,
    * each variable term: some searchable variable has *exactly* the
      requested name (hierarchy expansion applied when provided, since
      portals do support category menus) and its observed range
      intersects the requested one.
    """

    def __init__(
        self,
        catalog: CatalogStore,
        hierarchy: ConceptHierarchy | None = None,
    ) -> None:
        self.catalog = catalog
        self.hierarchy = hierarchy

    def _matches(self, query: Query, feature: DatasetFeature) -> bool:
        if query.location is not None:
            if (
                feature.bbox.distance_km_to_point(query.location)
                > query.radius_km
            ):
                return False
        if query.region is not None:
            if not feature.bbox.intersects(query.region):
                return False
        if query.interval is not None:
            if not feature.interval.overlaps(query.interval):
                return False
        for term in query.variables:
            expansion = (
                self.hierarchy.expand(term.name)
                if self.hierarchy is not None
                else {term.name}
            )
            expansion = expansion | {term.name}
            hit = False
            for entry in feature.searchable_variables():
                if entry.name not in expansion:
                    continue
                if term.has_range:
                    lo = term.low if term.low is not None else entry.minimum
                    hi = term.high if term.high is not None else entry.maximum
                    if math.isnan(entry.minimum) or not (
                        entry.minimum <= hi and lo <= entry.maximum
                    ):
                        continue
                hit = True
                break
            if not hit:
                return False
        return True

    def search(self, query: Query, limit: int = 10) -> list[SearchResult]:
        """Datasets matching *all* terms, in dataset-id order (no ranking)."""
        if limit <= 0:
            raise ValueError("limit must be positive")
        out = []
        for dataset_id in self.catalog.dataset_ids():
            feature = self.catalog.get(dataset_id)
            if self._matches(query, feature):
                out.append(
                    SearchResult(
                        dataset_id=dataset_id,
                        score=1.0,
                        breakdown=ScoreBreakdown(total=1.0),
                        feature=feature,
                    )
                )
            if len(out) >= limit:
                break
        return out
